"""Cross-shard request tracing: trace ids, timed spans, ring + JSONL log.

One trace per request, identified by a 16-hex-char id that travels
router -> shard in the ``X-Repro-Trace`` HTTP header (every
``ServiceClient`` request auto-injects the active id, so router
forwards inherit it for free) and into engine workers via a
task-payload field (``ParallelEngine._run_batch``).  Each process
records its own piece of the trace -- the offline checker
(``scripts/check_trace_invariants.py``) joins the pieces by id.

Spans are recorded through :meth:`Tracer.span`, a context manager that
is a shared no-op object when no trace is active (or tracing is
disabled), so un-traced hot paths pay one ``contextvars`` lookup.
Finished traces land on a bounded in-memory ring (always) and, when a
log directory is configured (``hypdb serve --trace-log DIR``), as one
JSON line per trace in ``DIR/trace-<scope>-<pid>.jsonl``.  Requests
slower than :data:`SLOW_REQUEST_SECONDS` are additionally logged with a
per-phase breakdown via ``logging`` (``repro.obs.trace`` logger).

The active trace lives in a ``contextvars.ContextVar``:
``ThreadingHTTPServer`` runs one thread per connection, so the per-
thread context is exactly per-request.  Span payloads never enter
response bodies -- byte identity with tracing on/off is pinned by
``tests/obs/test_trace_byte_identity.py``.
"""

from __future__ import annotations

import contextvars
import json
import logging
import os
import threading
import time
import uuid
from collections import deque
from typing import Any

logger = logging.getLogger("repro.obs.trace")

#: Requests slower than this log a per-phase breakdown at WARNING
#: (override with env ``REPRO_SLOW_REQUEST_SECONDS``).
SLOW_REQUEST_SECONDS = float(os.environ.get("REPRO_SLOW_REQUEST_SECONDS", "1.0"))

#: Spans kept per trace; past the bound spans are dropped and counted
#: (``spans_dropped``) so a 10k-replicate analyze cannot balloon a trace.
MAX_SPANS_PER_TRACE = 512

#: Finished traces kept on the in-memory ring.
RING_SIZE = 256

#: Header propagating the trace id router -> shard (and echoed back).
TRACE_HEADER = "X-Repro-Trace"


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed phase of a trace (name, offsets, free-form attrs)."""

    __slots__ = ("name", "offset_seconds", "duration_seconds", "attrs")

    def __init__(
        self,
        name: str,
        offset_seconds: float,
        duration_seconds: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.offset_seconds = offset_seconds
        self.duration_seconds = duration_seconds
        self.attrs = attrs

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the trace-log line's ``spans`` entries)."""
        return {
            "name": self.name,
            "offset_seconds": round(self.offset_seconds, 6),
            "duration_seconds": round(self.duration_seconds, 6),
            "attrs": self.attrs,
        }


class Trace:
    """One request's recorded spans in this process."""

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started_at = time.time()
        self._start_perf = time.perf_counter()
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self._lock = threading.Lock()

    def elapsed(self) -> float:
        """Seconds since the trace began in this process."""
        return time.perf_counter() - self._start_perf

    def add_span(
        self,
        name: str,
        offset_seconds: float,
        duration_seconds: float,
        attrs: dict[str, Any],
    ) -> None:
        """Append one finished span (bounded; overflow is counted)."""
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.spans_dropped += 1
                return
            self.spans.append(Span(name, offset_seconds, duration_seconds, attrs))

    def as_dict(self, scope: str) -> dict[str, Any]:
        """The JSONL trace-log line for this process's piece of the trace."""
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
            dropped = self.spans_dropped
        record = {
            "trace_id": self.trace_id,
            "scope": scope,
            "pid": os.getpid(),
            "started_at": round(self.started_at, 6),
            "duration_seconds": round(self.elapsed(), 6),
            "spans": spans,
        }
        if dropped:
            record["spans_dropped"] = dropped
        return record


class _ActiveSpan:
    """Context manager timing one span of the active trace."""

    __slots__ = ("_trace", "_name", "_attrs", "_start")

    def __init__(self, trace: Trace, name: str, attrs: dict[str, Any]) -> None:
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._trace.elapsed()
        return self

    def __exit__(self, *exc_info) -> None:
        self._trace.add_span(
            self._name,
            self._start,
            self._trace.elapsed() - self._start,
            self._attrs,
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)


class _NullSpan:
    """Shared no-op span: the cost of tracing when nothing is traced."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """Ignore attributes (no active trace)."""
        return None


NULL_SPAN = _NullSpan()

_ACTIVE: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


class Tracer:
    """Mints traces, records spans, and keeps the ring + JSONL log.

    One instance per process (:data:`TRACER`); per-process identity is a
    ``scope`` string (shard name, ``router``, ``serve``), set the same
    way fault injection names its processes (``faults.set_scope``).
    """

    def __init__(self, ring_size: int = RING_SIZE) -> None:
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring_size)
        self._log_dir: str | None = None
        self._log_handle = None
        self._scope = "main"
        self.enabled = True
        self.slow_threshold_seconds = SLOW_REQUEST_SECONDS

    # -- configuration -------------------------------------------------

    def configure(
        self,
        log_dir: str | None = None,
        scope: str | None = None,
        enabled: bool | None = None,
    ) -> None:
        """Set the JSONL log directory / process scope / enabled flag."""
        with self._lock:
            if scope is not None:
                self._scope = scope
            if enabled is not None:
                self.enabled = enabled
            if log_dir is not None and log_dir != self._log_dir:
                if self._log_handle is not None:
                    self._log_handle.close()
                    self._log_handle = None
                os.makedirs(log_dir, exist_ok=True)
                self._log_dir = log_dir

    @property
    def scope(self) -> str:
        """This process's trace scope label."""
        return self._scope

    @property
    def log_dir(self) -> str | None:
        """The configured JSONL directory (``None`` = ring only)."""
        return self._log_dir

    # -- trace lifecycle -----------------------------------------------

    def begin(self, trace_id: str | None = None):
        """Start (or continue) a trace; returns a reset token for :meth:`finish`.

        ``trace_id`` is the inbound ``X-Repro-Trace`` header value when
        present -- the local trace record then joins the distributed
        trace under the caller's id.  Returns ``None`` when tracing is
        disabled (finish treats it as a no-op), so the disabled path
        costs one attribute read.
        """
        if not self.enabled:
            return None
        trace = Trace(trace_id or new_trace_id())
        token = _ACTIVE.set(trace)
        return (trace, token)

    def finish(self, handle) -> None:
        """Close a trace begun by :meth:`begin`: ring, JSONL, slow log."""
        if handle is None:
            return
        trace, token = handle
        _ACTIVE.reset(token)
        record = trace.as_dict(self._scope)
        with self._lock:
            self._ring.append(record)
            log_dir = self._log_dir
        if log_dir is not None:
            self._write_log_line(record)
        duration = record["duration_seconds"]
        if duration >= self.slow_threshold_seconds:
            phases = ", ".join(
                f"{span['name']}={span['duration_seconds'] * 1000:.1f}ms"
                for span in record["spans"]
            )
            logger.warning(
                "slow request trace=%s scope=%s total=%.3fs phases: %s",
                record["trace_id"],
                record["scope"],
                duration,
                phases or "(no spans)",
            )

    def span(self, name: str, **attrs: Any):
        """A timed span on the active trace (shared no-op when none)."""
        trace = _ACTIVE.get()
        if trace is None or not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(trace, name, dict(attrs))

    def record_span(
        self,
        name: str,
        duration_seconds: float,
        offset_seconds: float | None = None,
        **attrs: Any,
    ) -> None:
        """Record an externally-timed span (worker chunks report this way).

        Worker processes cannot reach the parent's ring, so the parent
        re-records each worker chunk's measured duration into the active
        trace when the chunk's future resolves.
        """
        trace = _ACTIVE.get()
        if trace is None or not self.enabled:
            return
        if offset_seconds is None:
            offset_seconds = max(0.0, trace.elapsed() - duration_seconds)
        trace.add_span(name, offset_seconds, duration_seconds, dict(attrs))

    def current_id(self) -> str | None:
        """The active trace id (the ``X-Repro-Trace`` value to propagate)."""
        trace = _ACTIVE.get()
        return trace.trace_id if trace is not None else None

    # -- introspection --------------------------------------------------

    def recent(self) -> list[dict[str, Any]]:
        """Finished traces on the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop the ring (tests isolate themselves with this)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Close the JSONL log handle (the ring stays)."""
        with self._lock:
            if self._log_handle is not None:
                self._log_handle.close()
                self._log_handle = None
            self._log_dir = None

    # ------------------------------------------------------------------

    def _write_log_line(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._log_dir is None:
                return
            if self._log_handle is None:
                path = os.path.join(
                    self._log_dir, f"trace-{self._scope}-{os.getpid()}.jsonl"
                )
                self._log_handle = open(path, "a", encoding="utf-8")
            try:
                self._log_handle.write(line + "\n")
                self._log_handle.flush()
            except OSError:
                # Telemetry must never fail a request: drop the line.
                pass


#: The per-process tracer (the KERNEL_COUNTERS of tracing).
TRACER = Tracer()
