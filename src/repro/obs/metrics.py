"""A thread-safe metrics registry with Prometheus text exposition.

The registry is the single source of truth for every counter the
service tier used to keep as scattered plain ints:
``Table.KERNEL_COUNTERS`` and ``dataplane.PLANE_STATS`` are views over
:data:`GLOBAL_REGISTRY`, ``ResultCache.stats`` is a view over its
owner's instance registry, and the per-service / per-router ``/stats``
dicts read the same samples -- their JSON shapes are pinned
byte-compatibly by ``tests/obs/test_stats_shapes.py``.

Three metric types, all label-aware:

* **counter** -- monotonically increasing float (``.inc()``); ``.set()``
  exists only so legacy ``reset()`` view semantics keep working.
* **gauge** -- settable float, optionally **callback-backed**: the
  sample is read from a zero-argument callable at render time, which is
  how registry sizes and router counters guarded by their own locks are
  exposed without double bookkeeping.
* **histogram** -- fixed cumulative buckets plus ``_sum``/``_count``.

Exposition follows the Prometheus text format (version 0.0.4): one
``# HELP`` / ``# TYPE`` pair per family, label values escaped
(``\\`` -> ``\\\\``, ``"`` -> ``\\"``, newline -> ``\\n``), histogram
buckets cumulative with a ``+Inf`` bound.  :func:`merge_expositions`
re-labels several scraped exposition texts under one extra label
(``shard="alpha"``) -- the router's aggregated ``GET /metrics``.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Sequence

#: Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds): micro-service to slow-analyze range.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string per the text exposition format."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (integral floats print without the ``.0``)."""
    if value == float("inf"):
        return "+Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    return ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(names, values)
    )


class _Sample:
    """One labeled counter/gauge sample (a "child" in Prometheus terms)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (counters must only ever receive >= 0)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (gauges only)."""
        self.inc(-amount)

    def set(self, value: float) -> None:
        """Overwrite the sample (gauge sets and legacy view resets)."""
        with self._lock:
            self._value = float(value)

    def value(self) -> float:
        """The current sample value."""
        with self._lock:
            return self._value


class _HistogramSample:
    """One labeled histogram: cumulative bucket counts plus sum/count."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into every bucket it falls under."""
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for count in self._counts:
                running += count
                cumulative.append(running)
            return cumulative, self._sum, self._count


class MetricFamily:
    """One named metric family: a type, label names, and its samples.

    Obtained from a :class:`MetricsRegistry` factory method, never
    constructed directly.  Label-less families expose ``inc``/``set``/
    ``observe`` directly; labeled families go through :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.callback = callback
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], _Sample | _HistogramSample] = {}

    def labels(self, **labels: str) -> _Sample | _HistogramSample:
        """The sample for one label-value assignment (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                if self.kind == "histogram":
                    sample = _HistogramSample(self._lock, self.buckets)
                else:
                    sample = _Sample(self._lock)
                self._samples[key] = sample
            return sample

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Increment the (possibly labeled) sample."""
        self.labels(**labels).inc(amount)

    def set(self, value: float, **labels: str) -> None:
        """Set the (possibly labeled) sample."""
        self.labels(**labels).set(value)

    def observe(self, value: float, **labels: str) -> None:
        """Record one histogram observation."""
        self.labels(**labels).observe(value)

    def value(self, **labels: str) -> float:
        """Read the (possibly labeled) sample back (callback wins if set)."""
        if self.callback is not None:
            return float(self.callback())
        return self.labels(**labels).value()

    # ------------------------------------------------------------------

    def render_lines(self) -> list[str]:
        """This family's exposition block (HELP, TYPE, one line per sample)."""
        lines = [
            f"# HELP {self.name} {escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        if self.callback is not None:
            lines.append(f"{self.name} {format_value(float(self.callback()))}")
            return lines
        with self._lock:
            items = sorted(self._samples.items())
        if not items and not self.label_names:
            # A registered label-less family always exposes its zero.
            if self.kind != "histogram":
                lines.append(f"{self.name} 0")
                return lines
            items = [((), self.labels())]
        for key, sample in items:
            pairs = _label_pairs(self.label_names, key)
            if self.kind == "histogram":
                cumulative, total, count = sample.snapshot()
                bounds = [*self.buckets, float("inf")]
                for bound, running in zip(bounds, cumulative):
                    bucket_pairs = pairs + ("," if pairs else "")
                    lines.append(
                        f'{self.name}_bucket{{{bucket_pairs}le="{format_value(bound)}"}} '
                        f"{running}"
                    )
                suffix = f"{{{pairs}}}" if pairs else ""
                lines.append(f"{self.name}_sum{suffix} {format_value(total)}")
                lines.append(f"{self.name}_count{suffix} {count}")
            else:
                suffix = f"{{{pairs}}}" if pairs else ""
                lines.append(
                    f"{self.name}{suffix} {format_value(sample.value())}"
                )
        return lines


class MetricsRegistry:
    """A named, ordered collection of metric families (thread-safe).

    Factory methods are idempotent: asking for an existing name returns
    the existing family (so module-level views and late-bound services
    can share one family), but a name re-registered with a different
    type or label set raises -- silent aliasing would corrupt samples.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: tuple[float, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}, cannot "
                        f"re-register as {kind}{label_names}"
                    )
                if callback is not None:
                    # Latest callback wins: a replaced owner (e.g. a job
                    # manager rebuilt against the same service) re-binds
                    # the family to its live state instead of a corpse.
                    existing.callback = callback
                return existing
            family = MetricFamily(
                name, kind, help_text, label_names, buckets, callback
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> MetricFamily:
        """Register (or fetch) a counter family.

        ``callback`` exposes an externally-locked total (e.g. a router
        counter guarded by the router lock) without double bookkeeping.
        """
        return self._family(name, "counter", help_text, labels, callback=callback)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> MetricFamily:
        """Register (or fetch) a gauge family (optionally callback-backed)."""
        return self._family(name, "gauge", help_text, labels, callback=callback)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        return self._family(name, "histogram", help_text, labels, buckets=bounds)

    def families(self) -> list[MetricFamily]:
        """The registered families, in registration order."""
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        """The full text exposition of this registry."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render_lines())
        return "\n".join(lines) + "\n"


def render_many(registries: Iterable[MetricsRegistry]) -> str:
    """Concatenate several registries' expositions (service + global)."""
    parts = [registry.render() for registry in registries]
    return "".join(parts)


def merge_expositions(
    parts: Sequence[tuple[str | None, str]], label: str = "shard"
) -> str:
    """Merge scraped exposition texts, tagging samples with ``label``.

    ``parts`` is ``[(label_value, exposition_text), ...]``; a ``None``
    label value passes that part's samples through untagged (the
    router's own registry).  Families are grouped by name with one
    HELP/TYPE pair each (first appearance wins), so the merged text is
    itself valid exposition format -- the router's aggregated
    ``GET /metrics``.
    """
    order: list[str] = []
    meta: dict[str, list[str]] = {}
    samples: dict[str, list[str]] = {}
    for value, text in parts:
        current: str | None = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                if name not in meta:
                    meta[name] = []
                    samples[name] = []
                    order.append(name)
                directive = line.split(" ", 2)[1]
                if not any(
                    existing.startswith(f"# {directive} ")
                    for existing in meta[name]
                ):
                    meta[name].append(line)
                current = name
            else:
                if current is None:
                    # A bare sample with no preceding metadata: keep it
                    # under its own name so nothing is silently dropped.
                    current = line.split("{", 1)[0].split(" ", 1)[0]
                    if current not in meta:
                        meta[current] = []
                        samples[current] = []
                        order.append(current)
                samples[current].append(
                    line if value is None else _tag_sample(line, label, value)
                )
    lines: list[str] = []
    for name in order:
        lines.extend(meta[name])
        lines.extend(samples[name])
    return "\n".join(lines) + "\n"


def _tag_sample(line: str, label: str, value: str) -> str:
    """Inject ``label="value"`` into one exposition sample line."""
    escaped = escape_label_value(value)
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        head, tail = line.split("{", 1)
        return f'{head}{{{label}="{escaped}",{tail}'
    name, rest = line.split(" ", 1)
    return f'{name}{{{label}="{escaped}"}} {rest}'


#: Process-wide registry: kernel counting passes, dataset-plane traffic.
#: Per-service state lives in instance registries (see AnalysisService).
GLOBAL_REGISTRY = MetricsRegistry()
