"""Observability tier: unified metrics registry + cross-shard tracing.

Two process-global singletons anchor the tier (mirroring the
``KERNEL_COUNTERS`` / ``PLANE_STATS`` module-singleton discipline, so
they are import-safe under every multiprocessing start method):

* :data:`~repro.obs.metrics.GLOBAL_REGISTRY` -- the
  :class:`~repro.obs.metrics.MetricsRegistry` holding process-wide
  metric families (kernel counting passes, dataset-plane publications).
  Per-service and per-router state lives in *instance* registries so
  multiple services in one test process do not cross-count; a service's
  ``GET /metrics`` renders its own registry plus the global one.
* :data:`~repro.obs.trace.TRACER` -- the :class:`~repro.obs.trace.Tracer`
  minting per-request trace ids and timed spans, propagated router ->
  shard via the ``X-Repro-Trace`` header and into engine workers via a
  task-payload field.

Hard invariant (pinned by ``tests/obs/``): telemetry lives in headers,
``/metrics``, and logs only -- response **bodies** are byte-identical
with tracing on or off, the same discipline that keeps ``Timings`` out
of canonical result bytes.
"""

from repro.obs.metrics import GLOBAL_REGISTRY, MetricsRegistry
from repro.obs.trace import TRACER, Tracer

__all__ = ["GLOBAL_REGISTRY", "MetricsRegistry", "TRACER", "Tracer"]
