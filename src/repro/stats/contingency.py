"""Contingency tables over table columns (paper Sec. 5).

A k-way contingency table is a tabular summarization of categorical data;
for the permutation test we only ever need 2-way ``X x Y`` matrices, either
over the whole relation or within each group of a conditioning set ``Z``.
The matrices are *compressed*: rows/columns correspond to the values of
``X`` / ``Y`` actually observed in the (sub)population, which keeps the
permutation sampler's work proportional to the observed dimensions, not the
full domains.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.relation.table import GroupedContingencies, Table


@dataclass(frozen=True)
class GroupContingency:
    """The ``X x Y`` contingency matrix of one conditioning group ``Z = z``.

    ``index`` is the group's position in the grouped-kernel tensor it was
    sliced from (ascending joint ``Z`` code -- the scan produces the same
    order, so both builders number groups identically).  Replicate tasks
    that reference a published tensor address their group through it; -1
    means "not derived from a tensor".
    """

    z_value: tuple[Any, ...]
    matrix: np.ndarray
    weight: float  # Pr(Z = z) within the population the table represents
    index: int = -1

    @property
    def n(self) -> int:
        """Number of tuples in the group."""
        return int(self.matrix.sum())


def contingency_matrix(
    table: Table, x: str, y: str, indices: np.ndarray | None = None
) -> tuple[np.ndarray, list[Any], list[Any]]:
    """The observed ``X x Y`` count matrix (plus row/column value labels).

    ``indices`` restricts the computation to a subset of rows (used for
    per-group tables without materializing sub-tables).
    """
    x_codes = table.codes(x)
    y_codes = table.codes(y)
    if indices is not None:
        x_codes = x_codes[indices]
        y_codes = y_codes[indices]
    x_values, x_compressed = np.unique(x_codes, return_inverse=True)
    y_values, y_compressed = np.unique(y_codes, return_inverse=True)
    rows = len(x_values)
    cols = len(y_values)
    flat = np.bincount(x_compressed * cols + y_compressed, minlength=rows * cols)
    matrix = flat.reshape(rows, cols)
    x_domain = table.domain(x)
    y_domain = table.domain(y)
    row_labels = [x_domain[code] for code in x_values]
    col_labels = [y_domain[code] for code in y_values]
    return matrix, row_labels, col_labels


def conditional_contingencies(
    table: Table, x: str, y: str, z: Sequence[str]
) -> list[GroupContingency]:
    """One ``X x Y`` contingency matrix per observed group of ``Z``.

    Group weights are the empirical probabilities ``n_z / n``.  With
    ``z = ()`` the result is a single group covering the whole table.
    This is the summarization step of MIT (Alg. 2): e.g. testing
    ``Carrier ⊥ Delayed | Airport`` reduces 50k rows to four 2x2 matrices.

    The matrices come from the single-pass grouped kernel
    (:meth:`Table.grouped_contingencies`): one packed ``(z, x, y)``
    bincount instead of an argsort / split / per-group ``np.unique`` loop,
    which removes the O(#groups) interpreter overhead in exactly the
    wide-``Z`` regime group sampling targets.  Groups, matrices, labels,
    and weights are identical to the per-group scan (kept below as the
    fallback for over-budget tensors and pinned by the property tests).
    """
    groups, _ = grouped_with_contingencies(table, x, y, z)
    return groups


def grouped_with_contingencies(
    table: Table, x: str, y: str, z: Sequence[str]
) -> tuple[list[GroupContingency], GroupedContingencies | None]:
    """The kernel/scan dispatch behind :func:`conditional_contingencies`,
    also handing back the tensor the groups were sliced from.

    Returns ``(groups, grouped)`` where ``grouped`` is ``None`` whenever
    the kernel declined (empty table / over-budget tensor) and the groups
    came from the reference scan.  Callers that publish the tensor on the
    dataset plane (MIT's replicate fan-out) use this instead of
    :func:`conditional_contingencies` so both share one decline policy.
    """
    if table.n_rows == 0:
        return [], None
    names = tuple(z)
    grouped = table.grouped_contingencies(x, y, names)
    if grouped is None:
        return _conditional_contingencies_scan(table, x, y, names), None
    return contingencies_from_grouped(table, grouped, names), grouped


def contingencies_from_grouped(
    table: Table, grouped: GroupedContingencies, z: tuple[str, ...]
) -> list[GroupContingency]:
    """Expand a grouped-kernel summary into :class:`GroupContingency` rows.

    Per-group matrices are compressed to the values observed *within the
    group* (tensor rows/columns with zero margins sliced away), matching
    :func:`contingency_matrix` on the group's row subset exactly.
    """
    n = table.n_rows
    tensor = grouped.tensor
    row_nonzero = tensor.sum(axis=2) > 0
    col_nonzero = tensor.sum(axis=1) > 0
    decoded = [
        table._domain_array(name)[table.codes(name)[grouped.group_rows]] for name in z
    ]
    z_values = list(zip(*decoded)) if decoded else [()] * grouped.n_groups
    groups: list[GroupContingency] = []
    for index in range(grouped.n_groups):
        matrix = tensor[index][row_nonzero[index]][:, col_nonzero[index]]
        groups.append(
            GroupContingency(
                z_value=tuple(z_values[index]),
                matrix=matrix,
                weight=int(grouped.group_counts[index]) / n,
                index=index,
            )
        )
    return groups


def _conditional_contingencies_scan(
    table: Table, x: str, y: str, z: tuple[str, ...]
) -> list[GroupContingency]:
    """Reference per-group scan (argsort + split + per-group compress).

    Retained as the fallback when the grouped tensor exceeds its cell
    budget, and as the oracle the kernel's property tests compare against.
    """
    n = table.n_rows
    if n == 0:
        return []
    groups: list[GroupContingency] = []
    for index, (z_value, indices) in enumerate(table.group_indices(z)):
        matrix, _, _ = contingency_matrix(table, x, y, indices)
        groups.append(
            GroupContingency(
                z_value=z_value, matrix=matrix, weight=len(indices) / n, index=index
            )
        )
    return groups
