"""Naive shuffle-based permutation test (the baseline MIT replaces).

This is the textbook Monte-Carlo permutation test the paper describes
before introducing MIT: for each replicate, randomly permute the values of
``X`` *within each group* of ``Z`` (destroying any conditional dependence
with ``Y``), recompute ``Î(X;Y|Z)``, and report the fraction of replicates
at or above the observed statistic.  Each replicate touches every row, so
the cost scales with the data size -- the paper reports hours where MIT
takes under a second (Sec. 7.5).  It is retained as the ground-truth
reference for MIT's correctness tests and the Fig. 6(b) runtime baseline.
"""

from __future__ import annotations

import numpy as np

from repro.infotheory.mutual_information import mutual_information_from_matrix
from repro.relation.table import Table
from repro.stats.base import CIResult, CITest
from repro.stats.contingency import conditional_contingencies
from repro.utils.validation import ensure_rng


class NaiveShuffleTest(CITest):
    """Permutation test by physically shuffling the treatment column."""

    name = "shuffle"

    def __init__(
        self,
        n_permutations: int = 100,
        estimator: str = "plugin",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if n_permutations <= 0:
            raise ValueError(f"n_permutations must be positive, got {n_permutations}")
        self.n_permutations = n_permutations
        self.estimator = estimator
        self._rng = ensure_rng(seed)

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        if table.n_rows == 0:
            return CIResult(statistic=0.0, p_value=1.0, method=self.name)
        observed = self._statistic(table, x, y, z)
        groups = table.group_indices(z)
        x_codes = table.codes(x).copy()
        y_codes = table.codes(y)

        exceed = 0
        for _ in range(self.n_permutations):
            permuted = x_codes.copy()
            for _, indices in groups:
                permuted[indices] = self._rng.permutation(permuted[indices])
            statistic = self._statistic_from_codes(permuted, y_codes, groups, table.n_rows)
            if statistic >= observed - 1e-12:
                exceed += 1
        p_value = (exceed + 1) / (self.n_permutations + 1)
        return CIResult(statistic=observed, p_value=p_value, method=self.name)

    def _statistic(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> float:
        groups = conditional_contingencies(table, x, y, z)
        return sum(
            group.weight * mutual_information_from_matrix(group.matrix, self.estimator)
            for group in groups
        )

    def _statistic_from_codes(
        self,
        x_codes: np.ndarray,
        y_codes: np.ndarray,
        groups: list,
        n: int,
    ) -> float:
        total = 0.0
        for _, indices in groups:
            x_local = x_codes[indices]
            y_local = y_codes[indices]
            x_values, x_idx = np.unique(x_local, return_inverse=True)
            y_values, y_idx = np.unique(y_local, return_inverse=True)
            flat = np.bincount(
                x_idx * len(y_values) + y_idx, minlength=len(x_values) * len(y_values)
            )
            matrix = flat.reshape(len(x_values), len(y_values))
            total += (len(indices) / n) * mutual_information_from_matrix(
                matrix, self.estimator
            )
        return total
