"""False-discovery-rate control for families of independence tests.

HypDB issues many hypothesis tests -- one balance test per query context,
many during discovery -- and the paper lists FDR control as the standard
remedy for the resulting multiple-comparisons burden (Sec. 8, citing the
PC-algorithm FDR work [24]).  This module provides the
Benjamini-Hochberg procedure and a helper that applies it to a family of
:class:`~repro.stats.base.CIResult` objects.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.stats.base import CIResult
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class FdrOutcome:
    """The result of a Benjamini-Hochberg pass over a test family."""

    rejected: tuple[bool, ...]
    threshold: float  # largest p-value rejected (0.0 when none are)
    q: float

    @property
    def n_rejected(self) -> int:
        """Number of rejected (declared-dependent) hypotheses."""
        return sum(self.rejected)


def benjamini_hochberg(p_values: Sequence[float], q: float = 0.05) -> FdrOutcome:
    """Benjamini-Hochberg step-up procedure at FDR level ``q``.

    Sorts the p-values, finds the largest ``k`` with
    ``p_(k) <= k/m * q``, and rejects hypotheses 1..k.  Valid under
    independence or positive dependence of the tests.
    """
    check_fraction("q", q)
    p = np.asarray(list(p_values), dtype=np.float64)
    if np.any((p < 0) | (p > 1)):
        raise ValueError("p-values must lie in [0, 1]")
    m = len(p)
    if m == 0:
        return FdrOutcome(rejected=(), threshold=0.0, q=q)
    order = np.argsort(p, kind="stable")
    sorted_p = p[order]
    criteria = sorted_p <= (np.arange(1, m + 1) / m) * q
    if not criteria.any():
        return FdrOutcome(rejected=tuple(False for _ in range(m)), threshold=0.0, q=q)
    k = int(np.max(np.nonzero(criteria)[0]))  # last index passing
    threshold = float(sorted_p[k])
    rejected = p <= threshold
    return FdrOutcome(rejected=tuple(bool(r) for r in rejected), threshold=threshold, q=q)


def fdr_filter_results(
    results: Sequence[CIResult], q: float = 0.05
) -> list[tuple[CIResult, bool]]:
    """Pair each test result with its FDR-corrected dependence verdict.

    Useful when one query produces a balance test per context Γ (e.g. a
    GROUP BY over many strata): raw per-context alpha thresholds would
    flag spurious contexts; the corrected verdicts control the expected
    fraction of falsely-flagged contexts at ``q``.
    """
    outcome = benjamini_hochberg([result.p_value for result in results], q=q)
    return list(zip(results, outcome.rejected))
