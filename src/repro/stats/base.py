"""Common interface for conditional-independence tests.

Every discovery algorithm in the library (Grow-Shrink, IAMB, FGS, CD) is
parameterized by a :class:`CITest`, so the paper's quality comparisons --
CD(chi2) vs CD(MIT) vs CD(HyMIT) -- are a one-argument change.  Tests keep a
call counter because the number of independence tests performed is the
standard efficiency metric for constraint-based methods (Fig. 6(a)).
"""

from __future__ import annotations

import copy
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.relation.table import Table

DEFAULT_ALPHA = 0.01  # significance level used in all of the paper's tests


@dataclass(frozen=True)
class CIResult:
    """Outcome of one conditional-independence test.

    Attributes
    ----------
    statistic:
        The estimated conditional mutual information ``I(X;Y|Z)`` (nats).
    p_value:
        Significance of the statistic under the null ``I = 0``.
    method:
        Name of the procedure that produced the result.
    df:
        Degrees of freedom, when the method has a parametric null.
    p_interval:
        95% binomial confidence interval around the Monte-Carlo p-value
        (MIT only; paper Alg. 2 line 13).
    p_floor:
        Smallest p-value the method can report (``1/(m+1)`` for a
        Monte-Carlo test with ``m`` replicates, 0 for parametric tests).
        Consumers that compare against thresholds finer than the method's
        resolution use this to recognize "maximally significant" results.
    """

    statistic: float
    p_value: float
    method: str
    df: int | None = None
    p_interval: tuple[float, float] | None = None
    p_floor: float = 0.0

    def at_floor(self) -> bool:
        """True when the p-value is the smallest the method can produce."""
        return self.p_value <= self.p_floor * (1.0 + 1e-9)

    def independent(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """True when the null (independence) is *not* rejected at ``alpha``."""
        return self.p_value >= alpha

    def dependent(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """True when the null is rejected at ``alpha``."""
        return self.p_value < alpha


class CITest:
    """Base class for conditional-independence tests.

    Subclasses implement :meth:`_test`; :meth:`test` adds argument
    normalization and call counting.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.calls = 0

    def test(
        self,
        table: Table,
        x: str,
        y: str,
        z: Sequence[str] = (),
    ) -> CIResult:
        """Test ``x ⊥ y | z`` on ``table`` and return a :class:`CIResult`."""
        conditioning = tuple(z)
        if x == y:
            raise ValueError("x and y must be distinct attributes")
        if x in conditioning or y in conditioning:
            raise ValueError("conditioning set must not contain x or y")
        self.calls += 1
        return self._test(table, x, y, conditioning)

    def independent(
        self,
        table: Table,
        x: str,
        y: str,
        z: Sequence[str] = (),
        alpha: float = DEFAULT_ALPHA,
    ) -> bool:
        """Convenience: run the test and report non-rejection at ``alpha``."""
        return self.test(table, x, y, z).independent(alpha)

    def reset_counter(self) -> None:
        """Zero the call counter (used by benchmark harnesses)."""
        self.calls = 0

    # ------------------------------------------------------------------
    # Execution-engine integration
    #
    # Fan-out layers (discovery, detection) ship *clones* of a test into
    # engine tasks instead of sharing the parent instance: a clone carries
    # its own pre-assigned random stream, so results do not depend on the
    # order in which workers run.  The parent absorbs the clones' call
    # counters afterwards, keeping Fig. 6(a)-style test counts exact.
    # ------------------------------------------------------------------

    def draw_entropy(self) -> int:
        """Root entropy for seeding a fan-out (advances the test's RNG).

        Deterministic tests have no RNG and return a constant; stochastic
        subclasses override this to draw from their stream so consecutive
        fan-outs get fresh, reproducible seeds.
        """
        return 0

    def reseed(self, seed: int | np.random.SeedSequence) -> None:
        """Re-seed the test's random stream (no-op for deterministic tests)."""

    def set_engine(self, engine) -> None:
        """Swap the test's execution engine (no-op for serial-only tests)."""

    def spawn_worker(
        self, seed: int | np.random.SeedSequence, engine=None
    ) -> "CITest":
        """A deep copy prepared for one engine task.

        The clone is re-seeded with ``seed``, its counters are zeroed (the
        parent adds them back via :meth:`absorb_counters`), and its engine
        is replaced by ``engine`` when given -- fan-out callers pass a
        serial engine so tasks never nest process pools.
        """
        clone = copy.deepcopy(self)
        if engine is not None:
            clone.set_engine(engine)
        clone.reseed(seed)
        clone.reset_counter()
        return clone

    def counters(self) -> dict[str, int]:
        """Snapshot of the test's call counters (picklable)."""
        return {"calls": self.calls}

    def absorb_counters(self, delta: Mapping[str, int]) -> None:
        """Add a worker clone's counter snapshot onto this instance."""
        self.calls += int(delta.get("calls", 0))

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        raise NotImplementedError


class CountingTest(CITest):
    """Decorator-style wrapper that delegates to another test.

    Lets a harness count the tests issued by one algorithm while sharing a
    single underlying test object (and its caches) across algorithms.
    """

    def __init__(self, inner: CITest) -> None:
        super().__init__()
        self._inner = inner
        self.name = f"counted({inner.name})"

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        return self._inner.test(table, x, y, z)
