"""MIT: the Monte-Carlo permutation test over contingency tables (Alg. 2).

To test the significance of ``Î(T;Y|Z)``:

1. Summarize the data into one ``T x Y`` contingency matrix per observed
   group ``z`` of ``Z`` with weight ``a_z = Pr(Z = z)``.
2. For each group, draw ``m`` random tables with the same marginals from the
   permutation distribution (:mod:`repro.stats.patefield`); compute the
   mutual information of each draw.
3. Aggregate each replicate across groups with
   ``I(T;Y|Z) = E_z[I(T;Y) | Z = z]``, i.e. ``s_i = sum_z a_z * Î_i(z)``.
4. The p-value is the fraction of replicates with ``s_i >= s_0`` where
   ``s_0`` is the observed statistic; a 95% binomial confidence interval
   around the p-value is reported as in Alg. 2 line 13.

When the conditioning set is wide, the number of groups explodes; the
optional *group sampling* of Sec. 5 restricts the test to a weighted sample
of groups with weights ``w_z = a_z * max(H(T|z), H(Y|z))`` -- groups where
either variable is (nearly) constant cannot move the statistic and are
skipped with high probability.

**The GroupedRef task protocol.**  Replicate chunks are engine tasks.
When the test was fed by the grouped contingency kernel, the parent
publishes the whole ``(G, r, c)`` tensor on the dataset plane *once*
(``engine.publish_grouped``) and every task carries only
``(GroupedRef, group_index, count, seed, estimator)`` -- a ~100 B handle
plus integers, O(1) regardless of how many groups ``Z`` induces or how
wide the marginals are.  A worker resolves the handle to the
worker-resident (shared-memory) tensor, slices its group, and derives the
compressed row/column marginals from integer sums -- bit-identical to the
marginal vectors the parent used to ship, so every p-value is unchanged.
Lifecycle discipline: **publish before map, release only after map
returns** (`engine.release_grouped` in a ``finally``); a handle whose
segment was released before its tasks ran cannot resolve.  When the plane
declines (no tensor, no shared memory), tasks fall back to embedding the
per-group marginal vectors, exactly the pre-plane payload.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine import (
    ExecutionEngine,
    draw_entropy,
    resolve_engine,
    resolve_grouped,
    spawn_seeds,
)
from repro.infotheory.entropy import entropy_from_counts
from repro.infotheory.mutual_information import (
    mutual_information_batch,
    mutual_information_from_matrix,
)
from repro.relation.table import GroupedContingencies, Table
from repro.stats.base import CIResult, CITest
from repro.stats.contingency import GroupContingency, grouped_with_contingencies
from repro.stats.patefield import sample_contingency_tables
from repro.utils.validation import check_fraction, ensure_rng

#: Monte-Carlo replicates per pre-seeded engine task.  Part of the
#: reproducibility contract, NOT a tuning knob: the partition of replicates
#: into seed blocks determines which SeedSequence child drives which
#: replicate, so this must stay fixed for results to be reproducible.
#: Scheduling granularity is tuned engine-side (``chunk_size``), which
#: batches whole tasks and cannot affect results.
_REPLICATE_SEED_BLOCK = 250


class PermutationTest(CITest):
    """MIT (Alg. 2), optionally with weighted group sampling.

    Parameters
    ----------
    n_permutations:
        Monte-Carlo replicates ``m`` (paper uses 100-1000).
    group_sampling:
        ``None`` tests every group.  ``"log"`` samples
        ``ceil(log_scale * ln(#groups))`` groups weighted by ``w_z`` (the
        Sec. 7.3 configuration).  A float in (0, 1] samples that fraction
        of groups.
    log_scale:
        Multiplier for the ``"log"`` policy.
    estimator:
        Entropy estimator for the per-table mutual informations.  The
        plug-in estimator is the default; the observed statistic and the
        null replicates use the same estimator so the comparison is fair.
    seed:
        Generator or seed for reproducibility.
    engine:
        Execution engine (or a job count) for the Monte-Carlo fan-out.
        Each non-degenerate group's replicates are split into fixed
        blocks of ``_REPLICATE_SEED_BLOCK`` and scheduled as independent
        tasks with pre-spawned seeds.  Because the block size is a module
        constant (not a knob), the seed-to-replicate assignment -- and
        therefore every p-value -- is bit-identical for any engine,
        worker count, or engine batching ``chunk_size``.
    """

    name = "mit"

    def __init__(
        self,
        n_permutations: int = 1000,
        group_sampling: str | float | None = None,
        log_scale: float = 3.0,
        estimator: str = "plugin",
        seed: int | np.random.Generator | None = None,
        engine: ExecutionEngine | int | None = None,
    ) -> None:
        super().__init__()
        if n_permutations <= 0:
            raise ValueError(f"n_permutations must be positive, got {n_permutations}")
        if isinstance(group_sampling, float):
            check_fraction("group_sampling", group_sampling)
        self.n_permutations = n_permutations
        self.group_sampling = group_sampling
        self.log_scale = log_scale
        self.estimator = estimator
        self._rng = ensure_rng(seed)
        self.engine = resolve_engine(engine)
        if group_sampling is not None:
            self.name = "mit_sampling"

    # ------------------------------------------------------------------

    def draw_entropy(self) -> int:
        return draw_entropy(self._rng)

    def reseed(self, seed: int | np.random.SeedSequence) -> None:
        self._rng = np.random.default_rng(seed)

    def set_engine(self, engine: ExecutionEngine) -> None:
        self.engine = engine

    # ------------------------------------------------------------------

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        groups, grouped = grouped_with_contingencies(table, x, y, z)
        plane = (table, (x, y, *z), grouped) if grouped is not None else None
        return self._test_groups(groups, plane=plane)

    def test_with_groups(
        self,
        table: Table,
        x: str,
        y: str,
        z: tuple[str, ...],
        groups: list[GroupContingency],
        grouped: GroupedContingencies | None = None,
    ) -> CIResult:
        """Run MIT on pre-summarized contingency groups.

        The hybrid test routes with the grouped-kernel output already in
        hand; this entry point consumes it (and counts the call) instead
        of re-summarizing the data.  When ``grouped`` (the kernel tensor
        the ``groups`` were expanded from) is supplied, the replicate
        fan-out publishes it on the dataset plane and ships
        ``GroupedRef``-indexed tasks instead of marginal vectors.  RNG
        consumption is identical to :meth:`test` -- entropy is drawn per
        fan-out, not per summary.
        """
        self.calls += 1
        plane = None
        if grouped is not None:
            plane = (table, (x, y, *z), grouped)
        return self._test_groups(groups, plane=plane)

    def _test_groups(self, groups: list[GroupContingency], plane=None) -> CIResult:
        if not groups:
            return CIResult(statistic=0.0, p_value=1.0, method=self.name)
        selected = self._select_groups(groups)
        observed = self._weighted_statistic(
            [mutual_information_from_matrix(g.matrix, self.estimator) for g in selected],
            selected,
        )
        if all(min(g.matrix.shape) < 2 for g in selected):
            # No group has variation in both variables: the statistic is
            # identically zero under both the data and the null.
            return CIResult(statistic=observed, p_value=1.0, method=self.name)

        m = self.n_permutations
        # The replicates must use exactly the same weighting as the observed
        # statistic (weights re-normalized over the *selected* groups);
        # mixing raw and re-normalized weights would inflate one side of the
        # comparison and destroy the test's validity under the null.
        total_weight = sum(group.weight for group in selected)
        replicate_stats = self._null_replicates(selected, m, total_weight, plane=plane)

        exceed = int(np.count_nonzero(replicate_stats >= observed - 1e-12))
        # Add-one smoothing keeps the p-value away from an impossible 0.
        p_value = (exceed + 1) / (m + 1)
        p_hat = exceed / m
        half_width = 1.96 * math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / m)
        interval = (max(p_hat - half_width, 0.0), min(p_hat + half_width, 1.0))
        return CIResult(
            statistic=observed,
            p_value=p_value,
            method=self.name,
            p_interval=interval,
            p_floor=1.0 / (m + 1),
        )

    # ------------------------------------------------------------------

    def _null_replicates(
        self,
        selected: list[GroupContingency],
        m: int,
        total_weight: float,
        plane=None,
    ) -> np.ndarray:
        """The ``m`` weighted null statistics, computed as engine tasks.

        One task covers one (group, seed-block) pair and carries its own
        spawned seed; block boundaries depend only on ``m`` and the fixed
        ``_REPLICATE_SEED_BLOCK``, so the aggregate is identical for any
        engine or scheduling granularity.  Changing the block *constant*
        would re-partition the seed assignment -- it is deliberately not
        a parameter.

        ``plane`` is an optional ``(table, key, grouped)`` triple: the
        grouped tensor the selected groups were sliced from.  When given,
        it is published on the dataset plane for the duration of the map
        (publish-before-map / release-after-map) and tasks carry
        ``(handle, group_index)`` instead of the group's marginal
        vectors.  Workers derive marginals from the tensor slice -- the
        same integers -- so the switch is invisible to every p-value.
        """
        work = [group for group in selected if min(group.matrix.shape) >= 2]
        chunk = min(_REPLICATE_SEED_BLOCK, m)
        starts = range(0, m, chunk)
        seeds = spawn_seeds(self.draw_entropy(), len(work) * len(starts))
        handle = None
        if plane is not None and work:
            table, key, grouped = plane
            # GroupedRef on shared memory, the tensor itself in-process, or
            # None when neither transport is available (fall back to
            # embedding marginal vectors in the tasks).
            handle = self.engine.publish_grouped(table, key, grouped)
        try:
            tasks = []
            for index, group in enumerate(work):
                if handle is not None and group.index >= 0:
                    source: object = handle
                    detail: object = group.index
                else:
                    # No published tensor, or a group that was not sliced
                    # from one (index -1): embed the marginals directly.
                    source = group.matrix.sum(axis=1)
                    detail = group.matrix.sum(axis=0)
                for offset, start in enumerate(starts):
                    tasks.append(
                        (
                            source,
                            detail,
                            min(chunk, m - start),
                            seeds[index * len(starts) + offset],
                            self.estimator,
                        )
                    )
            partials = self.engine.map(_null_replicate_chunk, tasks)
        finally:
            if handle is not None:
                self.engine.release_grouped(handle)
        replicate_stats = np.zeros(m, dtype=np.float64)
        cursor = 0
        for group in work:
            scale = group.weight / total_weight
            for start in starts:
                partial = partials[cursor]
                cursor += 1
                replicate_stats[start : start + len(partial)] += scale * partial
        return replicate_stats

    # ------------------------------------------------------------------

    def _weighted_statistic(
        self, values: list[float], groups: list[GroupContingency]
    ) -> float:
        total_weight = sum(group.weight for group in groups)
        if total_weight == 0:
            return 0.0
        return sum(v * g.weight for v, g in zip(values, groups)) / total_weight

    def _select_groups(self, groups: list[GroupContingency]) -> list[GroupContingency]:
        """Apply the Sec. 5 weighted group-sampling policy."""
        if self.group_sampling is None or len(groups) <= 1:
            return groups
        if isinstance(self.group_sampling, float):
            target = max(1, math.ceil(self.group_sampling * len(groups)))
        elif self.group_sampling == "log":
            target = max(1, math.ceil(self.log_scale * math.log(len(groups) + 1.0)))
        else:
            raise ValueError(
                f"group_sampling must be None, 'log', or a fraction; got {self.group_sampling!r}"
            )
        if target >= len(groups):
            return groups
        weights = np.array([self._group_weight(group) for group in groups])
        # Entropy round-off can leave weights at -1e-16; clip before
        # normalizing into sampling probabilities.
        weights = np.clip(weights, 0.0, None)
        if weights.sum() <= 0:
            return groups[:target]
        probabilities = weights / weights.sum()
        positive = int(np.count_nonzero(probabilities))
        target = min(target, positive)
        chosen = self._rng.choice(
            len(groups), size=target, replace=False, p=probabilities
        )
        return [groups[index] for index in sorted(chosen)]

    def _group_weight(self, group: GroupContingency) -> float:
        """``w_z = Pr(z) * max(H(T|z), H(Y|z))`` from Sec. 5."""
        h_rows = entropy_from_counts(group.matrix.sum(axis=1), "plugin")
        h_cols = entropy_from_counts(group.matrix.sum(axis=0), "plugin")
        return group.weight * max(h_rows, h_cols)


def _null_replicate_chunk(task) -> np.ndarray:
    """Engine task: the null mutual informations of one replicate chunk.

    Two payload shapes, both pure and cheap to ship:

    * ``(rows, cols, count, seed, estimator)`` -- the group's marginal
      vectors embedded directly (legacy / plane-unavailable transport);
    * ``(handle, group_index, count, seed, estimator)`` -- a dataset-plane
      handle (``GroupedRef`` or an in-process tensor) plus the group's
      index; the worker slices the resident tensor and derives the
      compressed marginals itself.  Columns (rows) whose margin is zero in
      the group are all-zero in the slice, so summing over the full slice
      yields exactly the compressed matrix's marginals.
    """
    source, detail, count, seed, estimator = task
    if isinstance(source, np.ndarray):
        rows, cols = source, detail
    else:
        grouped = resolve_grouped(source)
        cell = grouped.tensor[detail]
        row_sums = cell.sum(axis=1)
        col_sums = cell.sum(axis=0)
        rows = row_sums[row_sums > 0]
        cols = col_sums[col_sums > 0]
    rng = np.random.default_rng(seed)
    tables = sample_contingency_tables(rows, cols, count, rng)
    return mutual_information_batch(tables, estimator)
