"""Random contingency tables with fixed marginals (paper Sec. 5).

Randomly shuffling one column of the data against another leaves both
marginal count vectors unchanged; the induced distribution over tables is
the multivariate (Fisher's noncentral-free) hypergeometric distribution with
the observed marginals.  Patefield's algorithm AS 159 [36] samples from
exactly this distribution.  We implement the same distribution with a
conditional hypergeometric chain:

* fill the matrix row by row;
* within a row, allocate the row total across columns left to right, where
  the count for cell ``(i, j)`` is a hypergeometric draw with population =
  remaining column capacity, successes = remaining capacity of column ``j``,
  and draws = what is left of row ``i``.

Each prefix of cells then has exactly the probability the shuffle assigns
it, which is the correctness property the tests verify against a
brute-force shuffle.  The chain is vectorized across the ``m`` Monte-Carlo
replicates, so the cost is ``O(r * c)`` batched hypergeometric draws
independent of the data size -- the speedup over shuffling that makes MIT
practical.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.validation import ensure_rng


def sample_contingency_tables(
    row_margins: Sequence[int],
    col_margins: Sequence[int],
    m: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw ``m`` random ``r x c`` count matrices with the given marginals.

    Parameters
    ----------
    row_margins, col_margins:
        Non-negative integer marginal totals; both must sum to the same
        grand total.
    m:
        Number of tables to sample.
    rng:
        numpy Generator or seed.

    Returns an ``(m, r, c)`` integer array.  Every table has exactly the
    requested marginals, distributed as random permutation (AS 159).
    """
    rows = np.asarray(row_margins, dtype=np.int64)
    cols = np.asarray(col_margins, dtype=np.int64)
    if np.any(rows < 0) or np.any(cols < 0):
        raise ValueError("marginals must be non-negative")
    if rows.sum() != cols.sum():
        raise ValueError(
            f"marginal totals disagree: rows sum to {rows.sum()}, columns to {cols.sum()}"
        )
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    generator = ensure_rng(rng)

    r = len(rows)
    c = len(cols)
    tables = np.zeros((m, r, c), dtype=np.int64)
    if r == 0 or c == 0 or rows.sum() == 0:
        return tables

    # Remaining capacity of each column, per replicate.
    col_remaining = np.broadcast_to(cols, (m, c)).copy()
    for i in range(r):
        row_remaining = np.full(m, rows[i], dtype=np.int64)
        if i == r - 1:
            # Last row is forced: it absorbs whatever capacity is left.
            tables[:, i, :] = col_remaining
            break
        for j in range(c - 1):
            ngood = col_remaining[:, j]
            nbad = col_remaining[:, j + 1 :].sum(axis=1)
            # Vectorized hypergeometric across replicates; cells where the
            # row is already exhausted draw 0 automatically (nsample = 0).
            draws = generator.hypergeometric(ngood, nbad, row_remaining)
            tables[:, i, j] = draws
            row_remaining -= draws
            col_remaining[:, j] -= draws
        tables[:, i, c - 1] = row_remaining
        col_remaining[:, c - 1] -= row_remaining
    return tables


def shuffle_null_table(
    x_codes: np.ndarray,
    y_codes: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """One null-table draw by literally shuffling (reference implementation).

    Kept for testing: the distribution of :func:`sample_contingency_tables`
    must match the distribution of this function's output.
    """
    generator = ensure_rng(rng)
    permuted = generator.permutation(x_codes)
    x_values, x_idx = np.unique(permuted, return_inverse=True)
    y_values, y_idx = np.unique(y_codes, return_inverse=True)
    flat = np.bincount(x_idx * len(y_values) + y_idx, minlength=len(x_values) * len(y_values))
    return flat.reshape(len(x_values), len(y_values))
