"""Conditional-independence testing (paper Sec. 5-6).

The testing stack, bottom-up:

* :mod:`repro.stats.contingency` -- contingency-table construction from a
  table's columns, overall and per conditioning group.
* :mod:`repro.stats.patefield` -- sampling random r x c tables with fixed
  marginals from the permutation (multivariate hypergeometric) distribution,
  the key optimization replacing data shuffling (Sec. 5).
* :mod:`repro.stats.chi2` -- the chi-squared approximation via the G
  statistic ``2 n I(X;Y|Z)``.
* :mod:`repro.stats.permutation` -- MIT (Alg. 2), the Monte-Carlo
  permutation test over contingency tables, with optional weighted group
  sampling.
* :mod:`repro.stats.hybrid` -- HyMIT (Sec. 6): chi-squared when the degrees
  of freedom are small relative to the sample, MIT otherwise.
* :mod:`repro.stats.naive` -- the textbook shuffle-the-column permutation
  test, kept as the slow baseline MIT is benchmarked against.
"""

from repro.stats.base import CIResult, CITest, CountingTest
from repro.stats.chi2 import ChiSquaredTest, g_statistic
from repro.stats.contingency import conditional_contingencies, contingency_matrix
from repro.stats.fdr import FdrOutcome, benjamini_hochberg, fdr_filter_results
from repro.stats.hybrid import HybridTest
from repro.stats.naive import NaiveShuffleTest
from repro.stats.patefield import sample_contingency_tables
from repro.stats.permutation import PermutationTest

__all__ = [
    "CIResult",
    "CITest",
    "CountingTest",
    "ChiSquaredTest",
    "g_statistic",
    "conditional_contingencies",
    "contingency_matrix",
    "FdrOutcome",
    "benjamini_hochberg",
    "fdr_filter_results",
    "HybridTest",
    "NaiveShuffleTest",
    "sample_contingency_tables",
    "PermutationTest",
]
