"""Chi-squared (G-test) conditional-independence test.

Under the null ``I(X;Y|Z) = 0`` the G statistic ``2 n Î_plugin(X;Y|Z)`` is
asymptotically chi-squared with ``df = (|Pi_X|-1)(|Pi_Y|-1)|Pi_Z|`` degrees
of freedom, where ``|Pi_.|`` counts the *observed* distinct values (paper
Sec. 6).  The approximation is only trustworthy when the sample is large
relative to ``df`` -- the regime HyMIT routes to this test.
"""

from __future__ import annotations

from scipy import stats as scipy_stats

from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table
from repro.stats.base import CIResult, CITest


def degrees_of_freedom(table: Table, x: str, y: str, z: tuple[str, ...]) -> int:
    """``(|Pi_X|-1) * (|Pi_Y|-1) * |Pi_Z|`` over observed values."""
    n_x = table.n_groups((x,))
    n_y = table.n_groups((y,))
    n_z = table.n_groups(z)
    return max(n_x - 1, 0) * max(n_y - 1, 0) * max(n_z, 1)


def g_statistic(table: Table, x: str, y: str, z: tuple[str, ...] = ()) -> tuple[float, float]:
    """Return ``(Î_plugin(X;Y|Z), G = 2 n Î)`` for the table."""
    engine = EntropyEngine(table, estimator="plugin", caching=False)
    cmi = engine.mutual_information((x,), (y,), z)
    return cmi, 2.0 * table.n_rows * max(cmi, 0.0)


class ChiSquaredTest(CITest):
    """G-test of conditional independence with a chi-squared null."""

    name = "chi2"

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        if table.n_rows == 0:
            return CIResult(statistic=0.0, p_value=1.0, method=self.name, df=0)
        cmi, g = g_statistic(table, x, y, z)
        df = degrees_of_freedom(table, x, y, z)
        if df <= 0:
            # One of the variables is constant in this (sub)population:
            # independence holds trivially.
            return CIResult(statistic=cmi, p_value=1.0, method=self.name, df=df)
        p_value = float(scipy_stats.chi2.sf(g, df))
        return CIResult(statistic=cmi, p_value=p_value, method=self.name, df=df)
