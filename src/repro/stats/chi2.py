"""Chi-squared (G-test) conditional-independence test.

Under the null ``I(X;Y|Z) = 0`` the G statistic ``2 n Î_plugin(X;Y|Z)`` is
asymptotically chi-squared with ``df = (|Pi_X|-1)(|Pi_Y|-1)|Pi_Z|`` degrees
of freedom, where ``|Pi_.|`` counts the *observed* distinct values (paper
Sec. 6).  The approximation is only trustworthy when the sample is large
relative to ``df`` -- the regime HyMIT routes to this test.

Both the statistic and the degrees of freedom are read off one
single-pass grouped contingency tensor (:meth:`Table.grouped_contingencies`)
instead of four separate ``joint_counts`` scans.  The marginal count
vectors extracted from the tensor list their positive cells in exactly the
order the old packed count vectors did (x-major, then y, then the joint
``Z`` code), so every entropy -- and therefore every p-value -- is
bit-identical to the previous implementation; zero cells never contribute
(the estimators drop them before summing).
"""

from __future__ import annotations

from scipy import stats as scipy_stats

from repro.infotheory.cache import ATTEMPT_KERNEL as _ATTEMPT_KERNEL
from repro.infotheory.cache import EntropyEngine
from repro.infotheory.entropy import entropy_from_counts
from repro.relation.table import GroupedContingencies, Table
from repro.stats.base import CIResult, CITest


def degrees_of_freedom(
    table: Table,
    x: str,
    y: str,
    z: tuple[str, ...],
    grouped: GroupedContingencies | None = None,
) -> int:
    """``(|Pi_X|-1) * (|Pi_Y|-1) * |Pi_Z|`` over observed values."""
    if grouped is not None:
        n_x, n_y, n_z = grouped.n_x, grouped.n_y, grouped.n_groups
    else:
        n_x = table.n_groups((x,))
        n_y = table.n_groups((y,))
        n_z = table.n_groups(z)
    return max(n_x - 1, 0) * max(n_y - 1, 0) * max(n_z, 1)


def g_statistic(
    table: Table,
    x: str,
    y: str,
    z: tuple[str, ...] = (),
    grouped=_ATTEMPT_KERNEL,
) -> tuple[float, float]:
    """Return ``(Î_plugin(X;Y|Z), G = 2 n Î)`` for the table.

    ``grouped`` lets a caller that already ran the kernel pass its output
    through: a :class:`GroupedContingencies` is consumed directly, and an
    explicit ``None`` records "kernel already declined", skipping straight
    to the entropy scans instead of re-attempting.
    """
    if grouped is _ATTEMPT_KERNEL:
        grouped = table.grouped_contingencies(x, y, z)
    if grouped is None:
        # Kernel declined (empty table or over-budget tensor): compute the
        # four joint entropies by direct scans, as before.
        engine = EntropyEngine(table, estimator="plugin", caching=False)
        cmi = engine.mutual_information((x,), (y,), z)
    else:
        cmi = _cmi_from_grouped(grouped, bool(z))
    return cmi, 2.0 * table.n_rows * max(cmi, 0.0)


def _cmi_from_grouped(grouped: GroupedContingencies, conditioned: bool) -> float:
    """``H(XZ) + H(YZ) - H(XYZ) - H(Z)`` from the grouped tensor.

    The transposes arrange each marginal's cells in the packed order the
    direct ``joint_counts`` scans produced (leading variable major, joint
    ``Z`` code minor), so the plug-in entropies match bit for bit.  With
    no conditioning set ``H(Z)`` is exactly 0, mirroring
    ``EntropyEngine.entropy(())``.
    """
    tensor = grouped.tensor
    h_xz = entropy_from_counts(tensor.sum(axis=2).T.ravel(), "plugin")
    h_yz = entropy_from_counts(tensor.sum(axis=1).T.ravel(), "plugin")
    h_xyz = entropy_from_counts(tensor.transpose(1, 2, 0).ravel(), "plugin")
    h_z = entropy_from_counts(grouped.group_counts, "plugin") if conditioned else 0.0
    return h_xz + h_yz - h_xyz - h_z


class ChiSquaredTest(CITest):
    """G-test of conditional independence with a chi-squared null.

    The four joint entropies behind the statistic are served by the
    tensor-fed :class:`EntropyEngine`: each comes from the table's shared
    ordered-key memo when available, from one grouped-kernel pass
    otherwise, and from a direct scan as the last resort.  All three
    sources produce the identical float for a given packed order, so
    p-values never depend on what happened to be cached -- but a test
    repeated against the same :class:`Table` instance (the bread and
    butter of discovery's Phase I/II subset enumeration) costs zero data
    passes the second time.

    ``share_entropies=False`` disables the shared memo (each call then
    pays its own kernel pass); kept for ablation and the scan-count
    regression tests.
    """

    name = "chi2"

    def __init__(self, share_entropies: bool = True) -> None:
        super().__init__()
        self.share_entropies = share_entropies

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        return self._from_grouped(table, x, y, z, _ATTEMPT_KERNEL)

    def test_with_grouped(
        self,
        table: Table,
        x: str,
        y: str,
        z: tuple[str, ...],
        grouped,
    ) -> CIResult:
        """Run the test on a pre-computed grouped-kernel summary.

        The hybrid test routes with the kernel output in hand; this entry
        point reuses it (and counts the call) instead of re-scanning.
        ``grouped`` may be a :class:`GroupedContingencies`, ``None``
        ("kernel attempted and declined" -- go straight to scans), or the
        :data:`ATTEMPT_KERNEL` sentinel ("not attempted" -- the entropy
        engine decides whether a pass is worth it).
        """
        self.calls += 1
        return self._from_grouped(table, x, y, z, grouped)

    def _from_grouped(
        self,
        table: Table,
        x: str,
        y: str,
        z: tuple[str, ...],
        grouped,
    ) -> CIResult:
        if table.n_rows == 0:
            return CIResult(statistic=0.0, p_value=1.0, method=self.name, df=0)
        engine = EntropyEngine(table, estimator="plugin", caching=self.share_entropies)
        cmi = engine.cmi_grouped(x, y, z, grouped=grouped)
        g = 2.0 * table.n_rows * max(cmi, 0.0)
        df = degrees_of_freedom(
            table, x, y, z,
            grouped=grouped if isinstance(grouped, GroupedContingencies) else None,
        )
        if df <= 0:
            # One of the variables is constant in this (sub)population:
            # independence holds trivially.
            return CIResult(statistic=cmi, p_value=1.0, method=self.name, df=df)
        p_value = float(scipy_stats.chi2.sf(g, df))
        return CIResult(statistic=cmi, p_value=p_value, method=self.name, df=df)
