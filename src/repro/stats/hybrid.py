"""HyMIT: the hybrid independence test (paper Sec. 6).

The chi-squared approximation of the G statistic is reliable when the
sample size is sufficiently larger than the degrees of freedom
``df = (|Pi_X|-1)(|Pi_Y|-1)|Pi_Z|``.  HyMIT therefore uses the chi-squared
test when ``df <= n / beta`` (``beta = 5`` is the paper's recommendation)
and falls back to the exact but expensive MIT permutation test otherwise --
the regime of sparse subpopulations and many categories where parametric
tests break down (Fig. 5(d)).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.engine import ExecutionEngine
from repro.infotheory.cache import ATTEMPT_KERNEL as _ATTEMPT_KERNEL
from repro.relation.table import Table
from repro.stats.base import CIResult, CITest
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.contingency import (
    _conditional_contingencies_scan,
    contingencies_from_grouped,
)
from repro.stats.permutation import PermutationTest
from repro.utils.validation import check_positive


class HybridTest(CITest):
    """Chi-squared when well-powered, MIT otherwise.

    Parameters
    ----------
    beta:
        Sample-size multiple required for the parametric branch.
    routing:
        ``"cells"`` (default) uses Cochran's rule -- chi-squared only when
        ``n >= beta * |Pi_X| * |Pi_Y| * |Pi_Z|`` (expected cell counts of
        at least ``beta``).  ``"df"`` is the paper's literal rule
        ``df <= n / beta``; it is retained for ablation, but it admits
        sparse regimes where the G statistic is strongly inflated and the
        chi-squared branch produces false dependencies (the pathology the
        paper itself attributes to parametric tests on sparse data in
        Sec. 7.4).
    n_permutations, group_sampling, seed, engine:
        Forwarded to the embedded :class:`PermutationTest` (``engine``
        parallelizes the Monte-Carlo branch's replicates).
    share_entropies:
        Forwarded to the embedded :class:`ChiSquaredTest`: ``False``
        disables the table-shared ordered entropy memo (ablation / scan
        accounting only; results are identical either way).
    """

    name = "hymit"

    def __init__(
        self,
        beta: float = 5.0,
        routing: str = "cells",
        n_permutations: int = 1000,
        group_sampling: str | float | None = "log",
        seed: int | np.random.Generator | None = None,
        engine: ExecutionEngine | int | None = None,
        share_entropies: bool = True,
    ) -> None:
        super().__init__()
        check_positive("beta", beta)
        if routing not in ("cells", "df"):
            raise ValueError(f"routing must be 'cells' or 'df', got {routing!r}")
        self.beta = beta
        self.routing = routing
        self._chi2 = ChiSquaredTest(share_entropies=share_entropies)
        self._mit = PermutationTest(
            n_permutations=n_permutations,
            group_sampling=group_sampling,
            seed=seed,
            engine=engine,
        )

    @property
    def chi2_calls(self) -> int:
        """How many tests were routed to the chi-squared branch."""
        return self._chi2.calls

    @property
    def mit_calls(self) -> int:
        """How many tests were routed to the permutation branch."""
        return self._mit.calls

    # ------------------------------------------------------------------
    # Execution-engine integration (see CITest)
    # ------------------------------------------------------------------

    def draw_entropy(self) -> int:
        return self._mit.draw_entropy()

    def reseed(self, seed: int | np.random.SeedSequence) -> None:
        self._mit.reseed(seed)

    def set_engine(self, engine: ExecutionEngine) -> None:
        self._mit.set_engine(engine)

    def reset_counter(self) -> None:
        super().reset_counter()
        self._chi2.reset_counter()
        self._mit.reset_counter()

    def counters(self) -> dict[str, int]:
        return {
            "calls": self.calls,
            "chi2_calls": self._chi2.calls,
            "mit_calls": self._mit.calls,
        }

    def absorb_counters(self, delta: Mapping[str, int]) -> None:
        super().absorb_counters(delta)
        self._chi2.calls += int(delta.get("chi2_calls", 0))
        self._mit.calls += int(delta.get("mit_calls", 0))

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        # One grouped-kernel pass serves the routing decision (observed
        # |Pi_X| / |Pi_Y| / |Pi_Z| are the tensor's dimensions) and then
        # feeds whichever branch wins, so neither branch re-summarizes the
        # data.  When every routing input is already memoized on the table
        # (a previous pass seeded the observed-group counts) the kernel is
        # not even attempted here: a chi-squared verdict may then be served
        # entirely from the shared entropy memo, and the Monte-Carlo branch
        # requests its own pass lazily.  When the kernel declines (empty
        # table / over-budget tensor) both routing and branches fall back
        # to their own scans, which compute the exact same integers.
        grouped = _ATTEMPT_KERNEL
        n_x = table.n_groups_cached((x,))
        n_y = table.n_groups_cached((y,))
        n_z = table.n_groups_cached(z)
        if None in (n_x, n_y, n_z):
            grouped = table.grouped_contingencies(x, y, z)
            if grouped is not None:
                n_x, n_y, n_z = grouped.n_x, grouped.n_y, grouped.n_groups
            else:
                n_x = table.n_groups((x,))
                n_y = table.n_groups((y,))
                n_z = table.n_groups(z)
        if self.routing == "df":
            df = max(n_x - 1, 0) * max(n_y - 1, 0) * max(n_z, 1)
            use_chi2 = df <= table.n_rows / self.beta
        else:
            n_cells = n_x * n_y * max(n_z, 1)
            use_chi2 = table.n_rows >= self.beta * n_cells
        if use_chi2:
            # A tensor in hand feeds the chi2 branch; None records "kernel
            # already declined" (straight to scans, never re-attempting);
            # the sentinel leaves the decision to the entropy engine.
            result = self._chi2.test_with_grouped(table, x, y, z, grouped)
        else:
            if grouped is _ATTEMPT_KERNEL:
                grouped = table.grouped_contingencies(x, y, z)
            if grouped is not None:
                result = self._mit.test_with_groups(
                    table, x, y, z,
                    contingencies_from_grouped(table, grouped, z),
                    grouped=grouped,
                )
            else:
                # Same declined-kernel shortcut for the Monte-Carlo branch.
                result = self._mit.test_with_groups(
                    table, x, y, z, _conditional_contingencies_scan(table, x, y, z)
                )
        return CIResult(
            statistic=result.statistic,
            p_value=result.p_value,
            method=f"{self.name}[{result.method}]",
            df=result.df,
            p_interval=result.p_interval,
            p_floor=result.p_floor,
        )
