"""HypDB reproduction: bias in OLAP queries -- detection, explanation, removal.

A from-scratch Python implementation of the system described in

    Babak Salimi, Johannes Gehrke, Dan Suciu.
    "Bias in OLAP Queries: Detection, Explanation, and Removal."
    SIGMOD 2018 (extended version: arXiv:1803.04562).

Top-level convenience imports cover the typical workflow::

    from repro import HypDB, GroupByQuery, Table

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery
from repro.relation.table import Table

__version__ = "1.0.0"

__all__ = ["HypDB", "GroupByQuery", "Table", "__version__"]
