"""Columnar relational engine for categorical data.

This subpackage is the storage and query substrate that every other part of
the library builds on.  It provides:

* :class:`~repro.relation.table.Table` -- an immutable columnar table of
  categorical attributes (dictionary-encoded integer codes plus per-column
  domains), with selection, projection, grouping, and counting.
* predicates (:mod:`repro.relation.predicates`) -- a small composable WHERE
  clause AST (``Eq``, ``In``, ``And``, ...).
* group-by-average evaluation (:mod:`repro.relation.groupby`) -- the OLAP
  query class from paper Listing 1.
* an OLAP data cube with count measure (:mod:`repro.relation.cube`) -- the
  pre-computation the paper uses to accelerate HypDB (Sec. 6, Fig. 6(d)).
"""

from repro.relation.cube import DataCube
from repro.relation.groupby import GroupByResult, group_by_average
from repro.relation.predicates import (
    And,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    NotIn,
    Or,
    Predicate,
    TRUE,
)
from repro.relation.table import Table

__all__ = [
    "Table",
    "DataCube",
    "GroupByResult",
    "group_by_average",
    "Predicate",
    "Eq",
    "Ne",
    "In",
    "NotIn",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "And",
    "Or",
    "Not",
    "TRUE",
]
