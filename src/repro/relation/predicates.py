"""WHERE-clause predicates over :class:`~repro.relation.table.Table`.

The paper's queries (Listing 1) filter with conjunctions of equality and
``IN`` conditions, e.g. ``Carrier IN ('AA','UA') AND Airport IN (...)``.
This module provides a small composable predicate AST that evaluates to a
boolean row mask.  Predicates are immutable value objects with structural
equality, so they can be used as cache keys (the entropy cache keys on the
query context Γ).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relation.table import Table


class Predicate:
    """Base class for row predicates.

    Subclasses implement :meth:`mask`; the boolean operators ``&``, ``|``
    and ``~`` build composite predicates.
    """

    def mask(self, table: "Table") -> np.ndarray:
        """Return a boolean array marking the rows that satisfy the predicate."""
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """The set of column names the predicate reads."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class _True(Predicate):
    """The trivially true predicate (empty WHERE clause)."""

    def mask(self, table: "Table") -> np.ndarray:
        return np.ones(table.n_rows, dtype=bool)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


TRUE = _True()


@dataclass(frozen=True)
class Eq(Predicate):
    """``column = value``."""

    column: str
    value: Any

    def mask(self, table: "Table") -> np.ndarray:
        domain = table.domain(self.column)
        try:
            code = domain.index(self.value)
        except ValueError:
            return np.zeros(table.n_rows, dtype=bool)
        return table.codes(self.column) == code

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class Ne(Predicate):
    """``column != value``."""

    column: str
    value: Any

    def mask(self, table: "Table") -> np.ndarray:
        return ~Eq(self.column, self.value).mask(table)

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} != {self.value!r}"


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (values...)``."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, table: "Table") -> np.ndarray:
        domain = table.domain(self.column)
        wanted = set(self.values)
        codes = [code for code, value in enumerate(domain) if value in wanted]
        if not codes:
            return np.zeros(table.n_rows, dtype=bool)
        return np.isin(table.codes(self.column), codes)

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.column} IN ({rendered})"


@dataclass(frozen=True)
class NotIn(Predicate):
    """``column NOT IN (values...)``."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, table: "Table") -> np.ndarray:
        return ~In(self.column, self.values).mask(table)

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.column} NOT IN ({rendered})"


class _Comparison(Predicate):
    """Shared implementation of the numeric comparison predicates."""

    column: str
    value: float
    _op_symbol = "?"

    def _compare(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def mask(self, table: "Table") -> np.ndarray:
        return self._compare(table.numeric(self.column))

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column} {self._op_symbol} {self.value!r}"


@dataclass(frozen=True, repr=False)
class Lt(_Comparison):
    """``column < value`` (numeric columns only)."""

    column: str
    value: float
    _op_symbol = "<"

    def _compare(self, values: np.ndarray) -> np.ndarray:
        return values < self.value


@dataclass(frozen=True, repr=False)
class Le(_Comparison):
    """``column <= value`` (numeric columns only)."""

    column: str
    value: float
    _op_symbol = "<="

    def _compare(self, values: np.ndarray) -> np.ndarray:
        return values <= self.value


@dataclass(frozen=True, repr=False)
class Gt(_Comparison):
    """``column > value`` (numeric columns only)."""

    column: str
    value: float
    _op_symbol = ">"

    def _compare(self, values: np.ndarray) -> np.ndarray:
        return values > self.value


@dataclass(frozen=True, repr=False)
class Ge(_Comparison):
    """``column >= value`` (numeric columns only)."""

    column: str
    value: float
    _op_symbol = ">="

    def _compare(self, values: np.ndarray) -> np.ndarray:
        return values >= self.value


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: tuple[Predicate, ...] = field(default=())

    def __init__(self, operands: Iterable[Predicate]) -> None:
        flattened: list[Predicate] = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            elif isinstance(operand, _True):
                continue
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def mask(self, table: "Table") -> np.ndarray:
        result = np.ones(table.n_rows, dtype=bool)
        for operand in self.operands:
            result &= operand.mask(table)
        return result

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(operand.columns() for operand in self.operands)) \
            if self.operands else frozenset()

    def __repr__(self) -> str:
        if not self.operands:
            return "TRUE"
        return " AND ".join(f"({operand!r})" for operand in self.operands)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    operands: tuple[Predicate, ...] = field(default=())

    def __init__(self, operands: Iterable[Predicate]) -> None:
        flattened: list[Predicate] = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def mask(self, table: "Table") -> np.ndarray:
        result = np.zeros(table.n_rows, dtype=bool)
        for operand in self.operands:
            result |= operand.mask(table)
        return result

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(operand.columns() for operand in self.operands)) \
            if self.operands else frozenset()

    def __repr__(self) -> str:
        if not self.operands:
            return "FALSE"
        return " OR ".join(f"({operand!r})" for operand in self.operands)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.operand.mask(table)

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT ({self.operand!r})"


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates with AND; the empty iterable yields ``TRUE``."""
    materialized = [predicate for predicate in predicates if not isinstance(predicate, _True)]
    if not materialized:
        return TRUE
    if len(materialized) == 1:
        return materialized[0]
    return And(materialized)
