"""OLAP data cube with ``count(*)`` measure (paper Sec. 6).

The paper observes that contingency tables with their marginals *are* OLAP
data cubes, and that a pre-computed cube lets HypDB answer every entropy /
contingency request by cuboid lookup instead of scanning the data
(Fig. 6(d), Fig. 8(b)).  :class:`DataCube` materializes the full cuboid
lattice over a bounded set of attributes: the finest cuboid is computed with
one pass over the data and every coarser cuboid is produced by rolling up an
immediate parent, mirroring how database engines evaluate ``GROUP BY CUBE``.

Like the PostgreSQL cube operator the paper uses, the cube is restricted to
a small number of attributes (default 12) because the lattice has ``2^k``
cuboids.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations
from typing import Any

from repro.engine import ExecutionEngine, TableRef, resolve_engine, resolve_table
from repro.relation.table import Table
from repro.utils.validation import check_columns_exist


class DataCube:
    """A fully materialized cuboid lattice with count measure.

    Parameters
    ----------
    table:
        Source relation.
    attributes:
        The cube dimensions.  At most ``max_attributes`` are allowed.
    max_attributes:
        Safety bound on the lattice size (the paper notes engines restrict
        cubes to ~12 attributes because the lattice is exponential).
    engine:
        Execution engine (or a job count) for the roll-up: within one
        lattice level every cuboid depends only on the level above, so the
        ``C(k, s)`` cuboids of level ``s`` are evaluated as independent
        tasks.  The materialized lattice is identical for any engine.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        max_attributes: int = 12,
        engine: ExecutionEngine | int | None = None,
    ) -> None:
        names = tuple(attributes)
        check_columns_exist(table.columns, names)
        if len(set(names)) != len(names):
            raise ValueError("cube attributes must be distinct")
        if len(names) > max_attributes:
            raise ValueError(
                f"cube over {len(names)} attributes exceeds the limit of {max_attributes}"
            )
        self._attributes = names
        self._n_rows = table.n_rows
        self._engine = resolve_engine(engine)
        self._cuboids: dict[frozenset[str], dict[tuple[Any, ...], int]] = {}
        self._build(table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, table: Table) -> None:
        """Materialize the lattice: finest cuboid from data, rest by roll-up.

        A cuboid over S is the aggregation of any cuboid over a superset
        of S.  In process (serial engines) each level rolls up from a
        parent one attribute wider -- the cheapest available -- widest
        level first.  Across processes that scheme would ship every parent
        cuboid to the workers, so a parallel engine instead publishes the
        *table* on the dataset plane once and fans every non-base cuboid
        out as one task carrying ``(handle, positions to keep)``: each
        worker derives the finest cuboid once, keeps it resident, and
        aggregates all its assigned cuboids from it.  Both schemes sum the
        same partitions, so the materialized lattice is identical.
        """
        base_key = frozenset(self._attributes)
        self._cuboids[base_key] = table.value_counts(self._attributes)
        if self._engine.jobs <= 1:
            self._build_by_rollup()
        else:
            self._build_from_plane(table)

    def _build_by_rollup(self) -> None:
        """In-process scheme: every cuboid from an immediate parent."""
        for size in range(len(self._attributes) - 1, -1, -1):
            subsets = [frozenset(combo) for combo in combinations(self._attributes, size)]
            tasks = []
            for subset in subsets:
                parent = self._find_parent(subset)
                parent_order = [name for name in self._attributes if name in parent]
                keep_positions = [
                    index for index, name in enumerate(parent_order) if name in subset
                ]
                tasks.append((self._cuboids[parent], keep_positions))
            for subset, rolled in zip(subsets, self._engine.map(_roll_up_task, tasks)):
                self._cuboids[subset] = rolled

    def _build_from_plane(self, table: Table) -> None:
        """Cross-process scheme: all cuboids from worker-resident bases."""
        handle = self._engine.publish(table)
        try:
            subsets = [
                frozenset(combo)
                for size in range(len(self._attributes) - 1, -1, -1)
                for combo in combinations(self._attributes, size)
            ]
            tasks = [
                (
                    handle,
                    self._attributes,
                    [
                        index
                        for index, name in enumerate(self._attributes)
                        if name in subset
                    ],
                )
                for subset in subsets
            ]
            for subset, rolled in zip(
                subsets, self._engine.map(_roll_up_from_base_task, tasks)
            ):
                self._cuboids[subset] = rolled
        finally:
            self._engine.release(handle)

    def _find_parent(self, subset: frozenset[str]) -> frozenset[str]:
        for attribute in self._attributes:
            if attribute not in subset:
                candidate = subset | {attribute}
                if candidate in self._cuboids:
                    return candidate
        raise RuntimeError(f"no materialized parent for cuboid {sorted(subset)}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The cube dimensions."""
        return self._attributes

    @property
    def n_rows(self) -> int:
        """Number of rows in the source relation."""
        return self._n_rows

    def n_cuboids(self) -> int:
        """Number of materialized cuboids (``2^k``)."""
        return len(self._cuboids)

    def covers(self, columns: Sequence[str]) -> bool:
        """Whether ``columns`` is a subset of the cube dimensions."""
        return set(columns) <= set(self._attributes)

    def counts(self, columns: Sequence[str]) -> dict[tuple[Any, ...], int]:
        """Counts over ``columns`` from the materialized cuboid.

        The returned keys follow the cube's canonical attribute order for
        the requested column set, re-ordered to match ``columns``.
        """
        names = tuple(columns)
        if not self.covers(names):
            raise KeyError(
                f"cube over {self._attributes} cannot answer counts({names})"
            )
        subset = frozenset(names)
        canonical = [name for name in self._attributes if name in subset]
        cuboid = self._cuboids[subset]
        if list(names) == canonical:
            return dict(cuboid)
        positions = [canonical.index(name) for name in names]
        return {
            tuple(key[position] for position in positions): count
            for key, count in cuboid.items()
        }

    def count_vector(self, columns: Sequence[str]) -> list[int]:
        """Just the cell counts over ``columns`` (order is deterministic)."""
        cuboid = self.counts(columns)
        return [cuboid[key] for key in sorted(cuboid, key=repr)]


def _roll_up_task(task) -> dict[tuple[Any, ...], int]:
    """Engine task: aggregate one parent cuboid down to a child cuboid."""
    parent_cuboid, keep_positions = task
    return _aggregate(parent_cuboid, keep_positions)


#: Worker-resident base cuboids, keyed by (table fingerprint, attributes).
#: Bounded: cube builds are rare and workers only ever see a handful of
#: (table, attribute-set) pairs; the clear keeps a pathological stream of
#: distinct cubes from pinning worker memory.
_BASE_CUBOIDS: dict[tuple[str, tuple[str, ...]], dict] = {}
_BASE_CUBOID_LIMIT = 4


def _roll_up_from_base_task(task) -> dict[tuple[Any, ...], int]:
    """Engine task: aggregate one cuboid from the worker's base cuboid.

    The base (finest) cuboid is derived from the dataset-plane table on
    first use and kept resident, so a worker pays the O(n) scan once and
    every task after that is a dict aggregation -- no cuboid ever crosses
    the process boundary.
    """
    handle, attributes, keep_positions = task
    table = resolve_table(handle)
    # A TableRef already carries the content fingerprint; only the inline
    # (plain-table) transport pays the hash, and that memoizes.
    fingerprint = (
        handle.fingerprint if isinstance(handle, TableRef) else table.fingerprint()
    )
    key = (fingerprint, tuple(attributes))
    base = _BASE_CUBOIDS.get(key)
    if base is None:
        if len(_BASE_CUBOIDS) >= _BASE_CUBOID_LIMIT:
            _BASE_CUBOIDS.clear()
        base = table.value_counts(attributes)
        _BASE_CUBOIDS[key] = base
    return _aggregate(base, keep_positions)


def _aggregate(cuboid: dict, keep_positions: list[int]) -> dict[tuple[Any, ...], int]:
    rolled: dict[tuple[Any, ...], int] = {}
    for key, count in cuboid.items():
        reduced = tuple(key[position] for position in keep_positions)
        rolled[reduced] = rolled.get(reduced, 0) + count
    return rolled
