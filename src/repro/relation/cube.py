"""OLAP data cube with ``count(*)`` measure (paper Sec. 6).

The paper observes that contingency tables with their marginals *are* OLAP
data cubes, and that a pre-computed cube lets HypDB answer every entropy /
contingency request by cuboid lookup instead of scanning the data
(Fig. 6(d), Fig. 8(b)).  :class:`DataCube` materializes the full cuboid
lattice over a bounded set of attributes: the finest cuboid is computed with
one pass over the data and every coarser cuboid is produced by rolling up an
immediate parent, mirroring how database engines evaluate ``GROUP BY CUBE``.

Like the PostgreSQL cube operator the paper uses, the cube is restricted to
a small number of attributes (default 12) because the lattice has ``2^k``
cuboids.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations
from typing import Any

from repro.engine import ExecutionEngine, resolve_engine
from repro.relation.table import Table
from repro.utils.validation import check_columns_exist


class DataCube:
    """A fully materialized cuboid lattice with count measure.

    Parameters
    ----------
    table:
        Source relation.
    attributes:
        The cube dimensions.  At most ``max_attributes`` are allowed.
    max_attributes:
        Safety bound on the lattice size (the paper notes engines restrict
        cubes to ~12 attributes because the lattice is exponential).
    engine:
        Execution engine (or a job count) for the roll-up: within one
        lattice level every cuboid depends only on the level above, so the
        ``C(k, s)`` cuboids of level ``s`` are evaluated as independent
        tasks.  The materialized lattice is identical for any engine.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        max_attributes: int = 12,
        engine: ExecutionEngine | int | None = None,
    ) -> None:
        names = tuple(attributes)
        check_columns_exist(table.columns, names)
        if len(set(names)) != len(names):
            raise ValueError("cube attributes must be distinct")
        if len(names) > max_attributes:
            raise ValueError(
                f"cube over {len(names)} attributes exceeds the limit of {max_attributes}"
            )
        self._attributes = names
        self._n_rows = table.n_rows
        self._engine = resolve_engine(engine)
        self._cuboids: dict[frozenset[str], dict[tuple[Any, ...], int]] = {}
        self._build(table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, table: Table) -> None:
        """Materialize the lattice: finest cuboid from data, rest by roll-up.

        A cuboid over S is the aggregation of the cuboid over S + {a} for
        any a not in S; we always roll up from a parent one attribute
        wider, which is the cheapest available.  Levels are processed
        widest first, and the cuboids within one level fan out as engine
        tasks (each task ships its parent cuboid and the positions to
        keep).
        """
        base_key = frozenset(self._attributes)
        self._cuboids[base_key] = table.value_counts(self._attributes)
        for size in range(len(self._attributes) - 1, -1, -1):
            subsets = [frozenset(combo) for combo in combinations(self._attributes, size)]
            tasks = []
            for subset in subsets:
                parent = self._find_parent(subset)
                parent_order = [name for name in self._attributes if name in parent]
                keep_positions = [
                    index for index, name in enumerate(parent_order) if name in subset
                ]
                tasks.append((self._cuboids[parent], keep_positions))
            for subset, rolled in zip(subsets, self._engine.map(_roll_up_task, tasks)):
                self._cuboids[subset] = rolled

    def _find_parent(self, subset: frozenset[str]) -> frozenset[str]:
        for attribute in self._attributes:
            if attribute not in subset:
                candidate = subset | {attribute}
                if candidate in self._cuboids:
                    return candidate
        raise RuntimeError(f"no materialized parent for cuboid {sorted(subset)}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The cube dimensions."""
        return self._attributes

    @property
    def n_rows(self) -> int:
        """Number of rows in the source relation."""
        return self._n_rows

    def n_cuboids(self) -> int:
        """Number of materialized cuboids (``2^k``)."""
        return len(self._cuboids)

    def covers(self, columns: Sequence[str]) -> bool:
        """Whether ``columns`` is a subset of the cube dimensions."""
        return set(columns) <= set(self._attributes)

    def counts(self, columns: Sequence[str]) -> dict[tuple[Any, ...], int]:
        """Counts over ``columns`` from the materialized cuboid.

        The returned keys follow the cube's canonical attribute order for
        the requested column set, re-ordered to match ``columns``.
        """
        names = tuple(columns)
        if not self.covers(names):
            raise KeyError(
                f"cube over {self._attributes} cannot answer counts({names})"
            )
        subset = frozenset(names)
        canonical = [name for name in self._attributes if name in subset]
        cuboid = self._cuboids[subset]
        if list(names) == canonical:
            return dict(cuboid)
        positions = [canonical.index(name) for name in names]
        return {
            tuple(key[position] for position in positions): count
            for key, count in cuboid.items()
        }

    def count_vector(self, columns: Sequence[str]) -> list[int]:
        """Just the cell counts over ``columns`` (order is deterministic)."""
        cuboid = self.counts(columns)
        return [cuboid[key] for key in sorted(cuboid, key=repr)]


def _roll_up_task(task) -> dict[tuple[Any, ...], int]:
    """Engine task: aggregate one parent cuboid down to a child cuboid."""
    parent_cuboid, keep_positions = task
    rolled: dict[tuple[Any, ...], int] = {}
    for key, count in parent_cuboid.items():
        reduced = tuple(key[position] for position in keep_positions)
        rolled[reduced] = rolled.get(reduced, 0) + count
    return rolled
