"""OLAP data cube with ``count(*)`` measure (paper Sec. 6).

The paper observes that contingency tables with their marginals *are* OLAP
data cubes, and that a pre-computed cube lets HypDB answer every entropy /
contingency request by cuboid lookup instead of scanning the data
(Fig. 6(d), Fig. 8(b)).  :class:`DataCube` materializes the full cuboid
lattice over a bounded set of attributes: the finest cuboid is computed with
one pass over the data and every coarser cuboid is produced by rolling up an
immediate parent, mirroring how database engines evaluate ``GROUP BY CUBE``.

Like the PostgreSQL cube operator the paper uses, the cube is restricted to
a small number of attributes (default 12) because the lattice has ``2^k``
cuboids.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.relation.table import Table
from repro.utils.validation import check_columns_exist


class DataCube:
    """A fully materialized cuboid lattice with count measure.

    Parameters
    ----------
    table:
        Source relation.
    attributes:
        The cube dimensions.  At most ``max_attributes`` are allowed.
    max_attributes:
        Safety bound on the lattice size (the paper notes engines restrict
        cubes to ~12 attributes because the lattice is exponential).
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        max_attributes: int = 12,
    ) -> None:
        names = tuple(attributes)
        check_columns_exist(table.columns, names)
        if len(set(names)) != len(names):
            raise ValueError("cube attributes must be distinct")
        if len(names) > max_attributes:
            raise ValueError(
                f"cube over {len(names)} attributes exceeds the limit of {max_attributes}"
            )
        self._attributes = names
        self._n_rows = table.n_rows
        self._cuboids: dict[frozenset[str], dict[tuple[Any, ...], int]] = {}
        self._build(table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, table: Table) -> None:
        """Materialize the lattice: finest cuboid from data, rest by roll-up."""
        base_key = frozenset(self._attributes)
        self._cuboids[base_key] = table.value_counts(self._attributes)
        # Roll up level by level: a cuboid over S is the aggregation of the
        # cuboid over S + {a} for any a not in S; we always roll up from a
        # parent one attribute wider, which is the cheapest available.
        ordered_levels = sorted(
            {frozenset(subset) for subset in _all_subsets(self._attributes)},
            key=len,
            reverse=True,
        )
        for subset in ordered_levels:
            if subset in self._cuboids:
                continue
            parent = self._find_parent(subset)
            self._cuboids[subset] = self._roll_up(parent, subset)

    def _find_parent(self, subset: frozenset[str]) -> frozenset[str]:
        for attribute in self._attributes:
            if attribute not in subset:
                candidate = subset | {attribute}
                if candidate in self._cuboids:
                    return candidate
        raise RuntimeError(f"no materialized parent for cuboid {sorted(subset)}")

    def _roll_up(
        self, parent: frozenset[str], subset: frozenset[str]
    ) -> dict[tuple[Any, ...], int]:
        parent_order = [name for name in self._attributes if name in parent]
        keep_positions = [
            index for index, name in enumerate(parent_order) if name in subset
        ]
        rolled: dict[tuple[Any, ...], int] = {}
        for key, count in self._cuboids[parent].items():
            reduced = tuple(key[position] for position in keep_positions)
            rolled[reduced] = rolled.get(reduced, 0) + count
        return rolled

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The cube dimensions."""
        return self._attributes

    @property
    def n_rows(self) -> int:
        """Number of rows in the source relation."""
        return self._n_rows

    def n_cuboids(self) -> int:
        """Number of materialized cuboids (``2^k``)."""
        return len(self._cuboids)

    def covers(self, columns: Sequence[str]) -> bool:
        """Whether ``columns`` is a subset of the cube dimensions."""
        return set(columns) <= set(self._attributes)

    def counts(self, columns: Sequence[str]) -> dict[tuple[Any, ...], int]:
        """Counts over ``columns`` from the materialized cuboid.

        The returned keys follow the cube's canonical attribute order for
        the requested column set, re-ordered to match ``columns``.
        """
        names = tuple(columns)
        if not self.covers(names):
            raise KeyError(
                f"cube over {self._attributes} cannot answer counts({names})"
            )
        subset = frozenset(names)
        canonical = [name for name in self._attributes if name in subset]
        cuboid = self._cuboids[subset]
        if list(names) == canonical:
            return dict(cuboid)
        positions = [canonical.index(name) for name in names]
        return {
            tuple(key[position] for position in positions): count
            for key, count in cuboid.items()
        }

    def count_vector(self, columns: Sequence[str]) -> list[int]:
        """Just the cell counts over ``columns`` (order is deterministic)."""
        cuboid = self.counts(columns)
        return [cuboid[key] for key in sorted(cuboid, key=repr)]


def _all_subsets(attributes: Sequence[str]):
    from itertools import chain, combinations

    return chain.from_iterable(
        combinations(attributes, size) for size in range(len(attributes) + 1)
    )
