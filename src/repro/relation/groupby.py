"""Group-by-average evaluation (paper Listing 1).

The paper restricts OLAP queries to group-by-average queries::

    SELECT T, X, avg(Y1), ..., avg(Ye)
    FROM D WHERE C GROUP BY T, X

:func:`group_by_average` evaluates exactly that shape against a
:class:`~repro.relation.table.Table` and returns a :class:`GroupByResult`
whose rows are ``(group key..., averages...)`` plus the group size, which
the bias detector and the rewriting machinery both need.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.relation.predicates import Predicate
from repro.relation.table import Table


@dataclass(frozen=True)
class GroupByRow:
    """One output row of a group-by-average query."""

    key: tuple[Any, ...]
    averages: tuple[float, ...]
    count: int

    def as_dict(
        self, group_columns: Sequence[str], value_columns: Sequence[str]
    ) -> dict[str, Any]:
        """Render the row as ``{column: value}`` for display."""
        rendered: dict[str, Any] = dict(zip(group_columns, self.key))
        rendered.update(
            {f"avg({name})": average for name, average in zip(value_columns, self.averages)}
        )
        rendered["count"] = self.count
        return rendered


@dataclass(frozen=True)
class GroupByResult:
    """The full answer of a group-by-average query."""

    group_columns: tuple[str, ...]
    value_columns: tuple[str, ...]
    rows: tuple[GroupByRow, ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def average(self, key: tuple[Any, ...], value_column: str | None = None) -> float:
        """Look up the average for one group (first value column by default)."""
        index = 0 if value_column is None else self.value_columns.index(value_column)
        for row in self.rows:
            if row.key == key:
                return row.averages[index]
        raise KeyError(f"no group {key!r} in result")

    def keys(self) -> list[tuple[Any, ...]]:
        """The group keys, in result order."""
        return [row.key for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Render all rows as dictionaries (stable order)."""
        return [row.as_dict(self.group_columns, self.value_columns) for row in self.rows]

    def format(self, precision: int = 4) -> str:
        """Pretty-print the result as an aligned text table."""
        header = list(self.group_columns) + [f"avg({name})" for name in self.value_columns]
        header.append("count")
        body: list[list[str]] = []
        for row in self.rows:
            cells = [str(value) for value in row.key]
            cells += [f"{average:.{precision}f}" for average in row.averages]
            cells.append(str(row.count))
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(cell.ljust(width) for cell, width in zip(header, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for line in body:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        return "\n".join(lines)


def group_by_average(
    table: Table,
    group_columns: Sequence[str],
    value_columns: Sequence[str],
    where: Predicate | None = None,
) -> GroupByResult:
    """Evaluate ``SELECT group, avg(values...) FROM table WHERE ... GROUP BY group``.

    Parameters
    ----------
    table:
        The input relation.
    group_columns:
        The GROUP BY attributes (``T, X`` in Listing 1).  May be empty, in
        which case the whole (filtered) table forms a single group.
    value_columns:
        The attributes to average; must be numeric.
    where:
        Optional WHERE predicate (``C`` in Listing 1).

    Returns a :class:`GroupByResult` with one row per observed group, in
    deterministic (sorted-key) order.
    """
    filtered = table.where(where)
    values = [filtered.numeric(name) for name in value_columns]
    rows: list[GroupByRow] = []
    for key, indices in filtered.group_indices(group_columns):
        averages = tuple(float(np.mean(column[indices])) for column in values)
        rows.append(GroupByRow(key=key, averages=averages, count=len(indices)))
    rows.sort(key=lambda row: repr(row.key))
    return GroupByResult(
        group_columns=tuple(group_columns),
        value_columns=tuple(value_columns),
        rows=tuple(rows),
    )
