"""Immutable columnar table of categorical attributes.

The paper's setting is a relational instance over discrete domains
(Sec. 2).  :class:`Table` stores each column dictionary-encoded: an
``int64`` code array plus an ordered tuple of domain values.  All of the
statistics in the library (entropies, contingency tables, group-bys) reduce
to counting joint codes, which this class implements once with numpy.

Tables are immutable; selections and projections return new views that share
the underlying code arrays, so a WHERE clause never copies column data.
"""

from __future__ import annotations

import csv
import hashlib
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any, NamedTuple

import numpy as np

from repro.utils.validation import check_columns_exist

#: Bump when the fingerprint recipe changes; keeps stale disk-cache
#: entries from older layouts unreachable instead of wrong.
FINGERPRINT_VERSION = b"hypdb-fp-v1"

#: Cell budget for the single-pass grouped-contingency kernel: tensors
#: larger than this fall back to the per-group scan (the tensor is dense
#: over groups x observed-X x observed-Y, so a pathological combination
#: of wide conditioning sets and high-cardinality X/Y could otherwise
#: allocate gigabytes for a mostly-empty tensor).
GROUPED_MAX_CELLS = 1 << 23

#: Dense-packing budget shared with :meth:`Table.joint_counts`: when the
#: full domain product fits, group codes are derived with pure O(n)
#: bincount arithmetic (no sort).
_DENSE_WIDTH = 1 << 22


class KernelCounters:
    """Process-local instrumentation of the O(n) counting kernels.

    ``joint_counts_scans`` counts full-column-scan count-vector passes
    (:meth:`Table.joint_counts`); ``grouped_passes`` counts single-pass
    grouped-contingency tensor builds (:meth:`Table.grouped_contingencies`).
    Benchmarks and regression tests reset/read these to assert that the
    tensor-fed entropy cache actually removes scans from discovery's hot
    path.

    Since the observability tier the *metrics registry* is the single
    source of truth: the fields here are views over two counter families
    in :data:`repro.obs.metrics.GLOBAL_REGISTRY` (exposed on every
    ``GET /metrics``), and the ``+=`` / ``reset()`` call sites keep
    working through the property setters.  Still per-process semantics:
    the registry, like the old plain ints, describes the process that
    increments it (workers do not report back).
    """

    def __init__(self) -> None:
        from repro.obs.metrics import GLOBAL_REGISTRY

        self._scans = GLOBAL_REGISTRY.counter(
            "repro_kernel_joint_counts_scans_total",
            "Full-column-scan count-vector passes (Table.joint_counts).",
        )
        self._grouped = GLOBAL_REGISTRY.counter(
            "repro_kernel_grouped_passes_total",
            "Single-pass grouped-contingency tensor builds "
            "(Table.grouped_contingencies).",
        )

    @property
    def joint_counts_scans(self) -> int:
        """Full-column-scan counting passes since the last reset."""
        return int(self._scans.value())

    @joint_counts_scans.setter
    def joint_counts_scans(self, value: int) -> None:
        self._scans.set(value)

    @property
    def grouped_passes(self) -> int:
        """Grouped-contingency tensor builds since the last reset."""
        return int(self._grouped.value())

    @grouped_passes.setter
    def grouped_passes(self, value: int) -> None:
        self._grouped.set(value)

    def count_scan(self) -> None:
        """Atomically count one joint-counts scan (the hot-site entry)."""
        self._scans.inc()

    def count_grouped_pass(self) -> None:
        """Atomically count one grouped-contingency kernel pass."""
        self._grouped.inc()

    def reset(self) -> None:
        """Zero both counters (tests bracket workloads with this)."""
        self._scans.set(0)
        self._grouped.set(0)

    def total(self) -> int:
        """All O(n) counting passes seen since the last reset."""
        return self.joint_counts_scans + self.grouped_passes


#: Module-level counter instance (see :class:`KernelCounters`).
KERNEL_COUNTERS = KernelCounters()


class GroupedContingencies(NamedTuple):
    """The single-pass grouped contingency summary of ``X x Y | Z``.

    ``tensor[g, i, j]`` counts rows with the g-th observed ``Z`` group,
    the i-th *observed* ``X`` code and the j-th *observed* ``Y`` code.
    Groups are ordered by ascending joint ``Z`` code (the same order
    :meth:`Table.group_indices` produces); ``x_codes`` / ``y_codes`` map
    tensor axes back to domain codes, ascending.  ``group_rows`` holds one
    representative row index per group (for decoding ``Z`` labels).
    """

    tensor: np.ndarray  # (G, r, c) int64 counts
    group_counts: np.ndarray  # (G,) int64 rows per group
    group_rows: np.ndarray  # (G,) a representative row index per group
    x_codes: np.ndarray  # (r,) observed X domain codes, ascending
    y_codes: np.ndarray  # (c,) observed Y domain codes, ascending

    @property
    def n_groups(self) -> int:
        """Observed ``Z`` groups (``|Pi_Z|``)."""
        return len(self.group_counts)

    @property
    def n_x(self) -> int:
        """Observed distinct ``X`` values (``|Pi_X|``)."""
        return len(self.x_codes)

    @property
    def n_y(self) -> int:
        """Observed distinct ``Y`` values (``|Pi_Y|``)."""
        return len(self.y_codes)


class Table:
    """A columnar, dictionary-encoded table of categorical data.

    Parameters
    ----------
    codes:
        Mapping from column name to an ``int64`` array of codes in
        ``[0, len(domains[name]))``.  All arrays must share one length.
    domains:
        Mapping from column name to the ordered tuple of domain values the
        codes index into.

    Most callers should use :meth:`from_columns`, :meth:`from_rows`, or
    :meth:`from_csv` instead of this low-level constructor.
    """

    __slots__ = (
        "_codes",
        "_domains",
        "_columns",
        "_n_rows",
        "_entropy_caches",
        "_fingerprint",
        "_n_groups_memo",
    )

    def __init__(
        self,
        codes: Mapping[str, np.ndarray],
        domains: Mapping[str, tuple[Any, ...]],
    ) -> None:
        if set(codes) != set(domains):
            raise ValueError("codes and domains must have identical column sets")
        self._columns: tuple[str, ...] = tuple(codes)
        lengths = {name: len(array) for name, array in codes.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"columns have inconsistent lengths: {lengths}")
        self._n_rows = next(iter(lengths.values()), 0)
        self._codes = {name: np.asarray(array, dtype=np.int64) for name, array in codes.items()}
        self._domains = {name: tuple(values) for name, values in domains.items()}
        for name in self._columns:
            size = len(self._domains[name])
            column = self._codes[name]
            if len(column) and (column.min() < 0 or column.max() >= size):
                raise ValueError(f"codes for column {name!r} fall outside its domain")
        # Per-instance memo shared by every EntropyEngine bound to this
        # table (the "caching entropy" optimization of paper Sec. 6).
        self._entropy_caches: dict[str, dict[frozenset[str], float]] = {}
        # Content fingerprint, hashed lazily on first request (the dataset
        # plane publishes tables by fingerprint once per analysis).
        self._fingerprint: str | None = None
        # Observed-group-count memo (frozenset key -> int).  The count is
        # order-invariant, so a set key is exact; chi-squared degrees of
        # freedom and HyMIT routing read |Pi_X|, |Pi_Y|, |Pi_Z| from here
        # instead of re-scanning once any kernel pass has seeded them.
        self._n_groups_memo: dict[frozenset[str], int] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(cls, raw_columns: Mapping[str, Sequence[Any]]) -> "Table":
        """Build a table from raw (decoded) column values.

        Each column's domain is the sorted set of distinct values it
        contains.  Values may be any hashable, orderable objects (strings,
        ints, ...); mixed-type columns are ordered by ``repr`` as a
        deterministic fallback.
        """
        codes: dict[str, np.ndarray] = {}
        domains: dict[str, tuple[Any, ...]] = {}
        for name, values in raw_columns.items():
            column_codes, domain = _encode(values)
            codes[name] = column_codes
            domains[name] = domain
        return cls(codes, domains)

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from an iterable of row tuples."""
        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(columns):
                raise ValueError(
                    f"row {row!r} has {len(row)} values but {len(columns)} columns declared"
                )
        raw = {
            name: [row[index] for row in materialized] for index, name in enumerate(columns)
        }
        return cls.from_columns(raw)

    @classmethod
    def from_csv(cls, path: str | Path, delimiter: str = ",") -> "Table":
        """Load a table from a CSV file with a header row.

        Every value is kept as a string except values that parse as
        integers, which are converted (the paper's outcomes are 0/1
        indicator attributes, so integer parsing makes ``avg`` work out of
        the box).
        """
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{path} is empty; a header row is required") from None
            rows = [[_parse_csv_value(value) for value in row] for row in reader]
        return cls.from_rows(header, rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """Column names, in declaration order."""
        return self._columns

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows x {len(self._columns)} columns)"

    def domain(self, column: str) -> tuple[Any, ...]:
        """The ordered domain (distinct values) of ``column``."""
        self._check_columns([column])
        return self._domains[column]

    def domain_size(self, column: str) -> int:
        """Number of distinct values in the (encoded) domain of ``column``."""
        return len(self.domain(column))

    def codes(self, column: str) -> np.ndarray:
        """The raw ``int64`` code array of ``column`` (do not mutate)."""
        self._check_columns([column])
        return self._codes[column]

    def column(self, column: str) -> list[Any]:
        """The decoded values of ``column`` as a Python list."""
        self._check_columns([column])
        return self._domain_array(column)[self._codes[column]].tolist()

    def fingerprint(self) -> str:
        """SHA-256 content fingerprint of the table (hex digest), memoized.

        Covers column order, per-column domains, and the code arrays
        themselves, so equal-content tables fingerprint identically
        regardless of how they were constructed.  Tables are immutable, so
        the digest is hashed once and cached on the instance; the dataset
        plane and the service registry both key on it.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(FINGERPRINT_VERSION)
            for name in self._columns:
                digest.update(b"\x00c")
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00d")
                digest.update(repr(self._domains[name]).encode("utf-8"))
                digest.update(b"\x00v")
                digest.update(np.ascontiguousarray(self._codes[name]).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def set_fingerprint(self, fingerprint: str) -> None:
        """Seed the memoized content fingerprint without hashing.

        Only valid when the caller *knows* the digest, e.g. the service
        registry's ``(parent fingerprint, predicate) -> child fingerprint``
        memo re-deriving a WHERE-filtered view it has hashed before.  A
        wrong seed would alias distinct contents on the dataset plane, so
        a non-``None`` memoized value must match instead of being replaced.
        """
        if self._fingerprint is not None and self._fingerprint != fingerprint:
            raise ValueError("fingerprint seed disagrees with the hashed value")
        self._fingerprint = fingerprint

    def numeric(self, column: str) -> np.ndarray:
        """The values of ``column`` as a float array.

        Raises ``TypeError`` if the column's domain contains non-numeric
        values; the group-by-average evaluator uses this for outcome
        attributes (paper Listing 1 restricts aggregates to ``avg``).
        """
        domain = self.domain(column)
        try:
            lookup = np.array([float(value) for value in domain], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"column {column!r} is not numeric: {exc}") from exc
        return lookup[self._codes[column]]

    def rows(self, columns: Sequence[str] | None = None) -> list[tuple[Any, ...]]:
        """Materialize the table (or a projection of it) as row tuples."""
        names = self._columns if columns is None else tuple(columns)
        self._check_columns(names)
        decoded = [self.column(name) for name in names]
        return list(zip(*decoded)) if decoded else []

    def head(self, n: int = 5) -> list[tuple[Any, ...]]:
        """The first ``n`` rows, decoded."""
        return self.rows()[:n]

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "Table":
        """Return the rows where the boolean ``mask`` is true.

        Domains are preserved unchanged, so codes remain comparable across
        the parent table and all of its selections -- a property the
        contingency-table machinery relies on.
        """
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise ValueError(f"mask must be a boolean array of length {self._n_rows}")
        codes = {name: self._codes[name][mask] for name in self._columns}
        return Table(codes, self._domains)

    def where(self, predicate: "Predicate | None") -> "Table":
        """Return the rows satisfying ``predicate`` (``None`` means all)."""
        if predicate is None:
            return self
        return self.select(predicate.mask(self))

    def take(self, indices: np.ndarray) -> "Table":
        """Return the rows at ``indices`` (used for subsampling)."""
        indices = np.asarray(indices, dtype=np.int64)
        codes = {name: self._codes[name][indices] for name in self._columns}
        return Table(codes, self._domains)

    def project(self, columns: Sequence[str]) -> "Table":
        """Return a table with only ``columns`` (shares code arrays)."""
        names = tuple(columns)
        self._check_columns(names)
        codes = {name: self._codes[name] for name in names}
        domains = {name: self._domains[name] for name in names}
        return Table(codes, domains)

    def drop(self, columns: Sequence[str]) -> "Table":
        """Return a table without ``columns``."""
        dropped = set(columns)
        self._check_columns(columns)
        keep = [name for name in self._columns if name not in dropped]
        return self.project(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        self._check_columns(mapping.keys())
        codes = {mapping.get(name, name): self._codes[name] for name in self._columns}
        domains = {mapping.get(name, name): self._domains[name] for name in self._columns}
        return Table(codes, domains)

    def with_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Return a table extended (or overwritten) with a raw column."""
        if len(values) != self._n_rows:
            raise ValueError(
                f"new column {name!r} has {len(values)} values, table has {self._n_rows} rows"
            )
        new_codes, new_domain = _encode(values)
        codes = dict(self._codes)
        domains = dict(self._domains)
        codes[name] = new_codes
        domains[name] = new_domain
        return Table(codes, domains)

    def concat(self, other: "Table") -> "Table":
        """Stack ``other`` below this table (schemas must match by name).

        Codes are remapped onto the merged domain of *observed* values
        (one O(n) vectorized gather per column) instead of decoding both
        tables to Python lists and re-encoding; the resulting domains and
        their order are exactly what re-encoding from raw values produces.
        """
        if set(other.columns) != set(self._columns):
            raise ValueError("cannot concat tables with different column sets")
        codes: dict[str, np.ndarray] = {}
        domains: dict[str, tuple[Any, ...]] = {}
        for name in self._columns:
            observed = {
                *self._observed_values(name),
                *other._observed_values(name),
            }
            try:
                merged = tuple(sorted(observed))
            except TypeError:
                merged = tuple(sorted(observed, key=repr))
            index = {value: position for position, value in enumerate(merged)}
            codes[name] = np.concatenate(
                [
                    self._remap_codes(name, index),
                    other._remap_codes(name, index),
                ]
            )
            domains[name] = merged
        return Table(codes, domains)

    def _observed_values(self, column: str) -> list[Any]:
        """The domain values actually present in ``column`` (domain order)."""
        domain = self._domains[column]
        present = np.bincount(self._codes[column], minlength=len(domain)) > 0
        return [domain[code] for code in np.flatnonzero(present)]

    def _remap_codes(self, column: str, index: Mapping[Any, int]) -> np.ndarray:
        """Gather ``column``'s codes through a merged-domain index.

        Unobserved domain values map to -1; they are never indexed by a
        code, so the sentinel stays out of the result.
        """
        lookup = np.array(
            [index.get(value, -1) for value in self._domains[column]], dtype=np.int64
        )
        return lookup[self._codes[column]]

    def shuffled(self, rng: np.random.Generator) -> "Table":
        """Return a row-permuted copy (used by the naive permutation test)."""
        order = rng.permutation(self._n_rows)
        return self.take(order)

    def sample_rows(self, n: int, rng: np.random.Generator) -> "Table":
        """Return ``n`` rows drawn uniformly without replacement."""
        if n > self._n_rows:
            raise ValueError(f"cannot sample {n} rows from a table of {self._n_rows}")
        indices = rng.choice(self._n_rows, size=n, replace=False)
        return self.take(indices)

    # ------------------------------------------------------------------
    # Counting / grouping kernels
    # ------------------------------------------------------------------

    def joint_codes(self, columns: Sequence[str]) -> tuple[np.ndarray, int]:
        """Encode the row tuples over ``columns`` as dense codes.

        Returns ``(codes, k)`` where ``codes`` is an ``int64`` array of
        values in ``[0, k)`` and equal codes correspond to equal row tuples.
        The encoding packs columns in a mixed-radix number and re-compresses
        to *observed* values whenever the radix product risks overflowing
        ``int64``, so arbitrarily many columns are supported.

        The empty column list encodes every row as the single code ``0``.
        """
        names = tuple(columns)
        self._check_columns(names)
        if not names:
            return np.zeros(self._n_rows, dtype=np.int64), 1

        packed = self._codes[names[0]]
        width = len(self._domains[names[0]])
        packed, width = _compress(packed)
        for name in names[1:]:
            radix = len(self._domains[name])
            if radix == 0:
                radix = 1
            if width > (2**62) // max(radix, 1):
                packed, width = _compress(packed)
            packed = packed * radix + self._codes[name]
            width = width * radix
            if width > 2**40:
                # Keep the code space tight; contingency tables and
                # bincount-based entropy both want dense codes.
                packed, width = _compress(packed)
        packed, width = _compress(packed)
        return packed, width

    def value_counts(self, columns: Sequence[str]) -> dict[tuple[Any, ...], int]:
        """Counts of each observed value combination over ``columns``.

        Keys are produced in ascending joint-code (lexicographic) order --
        the same order the previous ``np.unique(axis=0)`` implementation
        used -- but through :meth:`joint_codes` plus one ``bincount``, so
        the per-row work is integer arithmetic instead of structured-row
        comparison.
        """
        names = tuple(columns)
        self._check_columns(names)
        if not names:
            return {(): self._n_rows}
        if self._n_rows == 0:
            return {}
        codes, width = self.joint_codes(names)
        counts = np.bincount(codes, minlength=width)
        # Any row of a group decodes to the same key; the scatter keeps the
        # last row index seen per joint code.
        representatives = np.empty(width, dtype=np.int64)
        representatives[codes] = np.arange(self._n_rows, dtype=np.int64)
        decoded = [
            self._domain_array(name)[self._codes[name][representatives]]
            for name in names
        ]
        return dict(zip(zip(*decoded), counts.tolist()))

    def joint_counts(self, columns: Sequence[str]) -> np.ndarray:
        """Cell counts of the joint distribution over ``columns``.

        Fast path: when the full domain product fits a dense ``bincount``
        (< 2^22 cells) the counts are produced with one O(n) pass and no
        sorting; the returned vector may then contain zero cells, which is
        harmless for every consumer (entropies use the 0 log 0 = 0
        convention and observed-cell counts ignore zeros).
        """
        names = tuple(columns)
        self._check_columns(names)
        if not names:
            return np.array([self._n_rows], dtype=np.int64)
        KERNEL_COUNTERS.count_scan()
        dense = self._dense_packed(names)
        if dense is not None:
            packed, width = dense
            return np.bincount(packed, minlength=width)
        codes, observed = self.joint_codes(names)
        return np.bincount(codes, minlength=observed)

    def distinct(self, columns: Sequence[str]) -> list[tuple[Any, ...]]:
        """The distinct value combinations over ``columns`` (sorted)."""
        return sorted(self.value_counts(columns), key=repr)

    def n_groups(self, columns: Sequence[str]) -> int:
        """Number of *observed* distinct value combinations over ``columns``.

        Memoized under the column *set*: the count is order-invariant, and
        tables are immutable, so one scan (or one grouped-kernel pass,
        which seeds the same memo) answers every later request in O(1).
        """
        key = frozenset(columns)
        cached = self._n_groups_memo.get(key)
        if cached is None:
            cached = int(np.count_nonzero(self.joint_counts(columns)))
            self._n_groups_memo[key] = cached
        return cached

    def n_groups_cached(self, columns: Sequence[str]) -> int | None:
        """Peek the observed-group-count memo (``None`` = never computed).

        Lets HyMIT decide whether its routing inputs are already known
        without triggering the scans :meth:`n_groups` would issue.
        """
        return self._n_groups_memo.get(frozenset(columns))

    def group_indices(self, columns: Sequence[str]) -> list[tuple[tuple[Any, ...], np.ndarray]]:
        """Partition row indices by the values of ``columns``.

        Returns a list of ``(key_tuple, row_index_array)`` pairs, one per
        observed group, in a deterministic order.  This is the kernel behind
        group-by evaluation, the blocks of the rewritten query (Listing 2),
        and per-group permutation testing (Alg. 2).
        """
        names = tuple(columns)
        codes, width = self.joint_codes(names)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        segments = np.split(order, boundaries)
        result = []
        for segment in segments:
            if len(segment) == 0:
                continue
            first = int(segment[0])
            key = tuple(self._domains[name][self._codes[name][first]] for name in names)
            result.append((key, segment))
        return result

    def grouped_contingencies(
        self,
        x: str,
        y: str,
        z: Sequence[str] = (),
        max_cells: int = GROUPED_MAX_CELLS,
    ) -> GroupedContingencies | None:
        """All per-group ``X x Y`` contingency matrices in one pass.

        Packs ``(z-group, x, y)`` into one joint code and materializes the
        full ``(G, r, c)`` count tensor with a single ``bincount`` --
        O(n) work total instead of the O(#groups) interpreter loop of the
        per-group scan, which is exactly the regime MIT's wide conditioning
        sets produce (paper Sec. 5).  ``r`` / ``c`` count the values of
        ``X`` / ``Y`` observed in the whole (sub)population; per-group
        compression to in-group observed values is a cheap slice of the
        tensor (see :func:`repro.stats.contingency.conditional_contingencies`).

        Returns ``None`` -- caller falls back to the per-group scan --
        when the table is empty or the dense tensor would exceed
        ``max_cells`` cells.
        """
        names = (x, y, *z)
        self._check_columns(names)
        n = self._n_rows
        if n == 0:
            return None
        KERNEL_COUNTERS.count_grouped_pass()
        group_codes, group_counts, group_rows = self._observed_group_codes(tuple(z))
        x_codes, x_compressed = self._observed_column_codes(x)
        y_codes, y_compressed = self._observed_column_codes(y)
        n_groups = len(group_counts)
        rows = len(x_codes)
        cols = len(y_codes)
        # The pass just counted the observed values of X, Y, and the Z
        # groups; seed the order-invariant memo so routing and degrees of
        # freedom never re-scan for them.
        self._n_groups_memo.setdefault(frozenset((x,)), rows)
        self._n_groups_memo.setdefault(frozenset((y,)), cols)
        self._n_groups_memo.setdefault(frozenset(z), n_groups)
        if n_groups * rows * cols > max_cells:
            return None
        packed = (group_codes * rows + x_compressed) * cols + y_compressed
        tensor = np.bincount(packed, minlength=n_groups * rows * cols).reshape(
            n_groups, rows, cols
        )
        return GroupedContingencies(
            tensor=tensor,
            group_counts=group_counts,
            group_rows=group_rows,
            x_codes=x_codes,
            y_codes=y_codes,
        )

    def _observed_group_codes(
        self, names: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense observed-group codes over ``names`` plus counts and reps.

        Returns ``(codes, group_counts, group_rows)`` where ``codes`` maps
        every row to its group in ``[0, G)``, groups ordered by ascending
        joint code (identical to :meth:`joint_codes` /
        :meth:`group_indices` order).  When the full domain product fits
        the dense budget the codes come from pure bincount arithmetic (no
        sort); otherwise :meth:`joint_codes` compresses as usual.
        """
        n = self._n_rows
        if not names:
            return (
                np.zeros(n, dtype=np.int64),
                np.array([n], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
            )
        dense = self._dense_packed(names)
        if dense is not None:
            packed, width = dense
            full_counts = np.bincount(packed, minlength=width)
            present = full_counts > 0
            remap = np.cumsum(present) - 1
            codes = remap[packed]
            group_counts = full_counts[present]
        else:
            codes, observed = self.joint_codes(names)
            group_counts = np.bincount(codes, minlength=observed)
        group_rows = np.empty(len(group_counts), dtype=np.int64)
        group_rows[codes] = np.arange(n, dtype=np.int64)
        return codes, group_counts, group_rows

    def _dense_packed(self, names: tuple[str, ...]) -> tuple[np.ndarray, int] | None:
        """Full-domain mixed-radix packing over ``names``, or ``None``.

        The O(n) no-sort path shared by :meth:`joint_counts` and
        :meth:`_observed_group_codes`; declines (``None``) when the domain
        product exceeds ``_DENSE_WIDTH`` and callers must go through the
        compressing :meth:`joint_codes` instead.  Packed codes ascend in
        the same lexicographic order joint codes do.
        """
        width = 1
        for name in names:
            width *= max(len(self._domains[name]), 1)
            if width > _DENSE_WIDTH:
                return None
        packed = self._codes[names[0]]
        for name in names[1:]:
            packed = packed * len(self._domains[name]) + self._codes[name]
        return packed, width

    def _observed_column_codes(self, column: str) -> tuple[np.ndarray, np.ndarray]:
        """``(observed domain codes ascending, rows compressed onto them)``."""
        codes = self._codes[column]
        present = np.bincount(codes, minlength=len(self._domains[column])) > 0
        observed = np.flatnonzero(present)
        remap = np.cumsum(present) - 1
        return observed.astype(np.int64), remap[codes]

    def _domain_array(self, column: str) -> np.ndarray:
        """The domain of ``column`` as a 1-D object array (for gathers).

        Built element-by-element so domain values that are themselves
        sequences never trigger numpy's multi-dimensional inference.
        """
        domain = self._domains[column]
        array = np.empty(len(domain), dtype=object)
        for position, value in enumerate(domain):
            array[position] = value
        return array

    def entropy_cache(self, estimator: str) -> dict:
        """The shared entropy memo for ``estimator`` (see EntropyEngine).

        Two key kinds coexist in one dict: ``frozenset`` keys memoize an
        entropy for *any* column order (first computation wins), while
        ``tuple`` keys memoize the bit-exact value for that specific packed
        cell order -- the tensor-fed chi-squared path uses ordered keys so
        a cached entropy is always the identical float a fresh scan in
        that order would produce.  Different Table instances never share a
        cache, so selections and projections always start fresh (their row
        sets differ).  Caches are plain picklable dicts and travel with
        the table into worker processes; entries computed by a worker are
        brought home with :meth:`export_entropy_caches` /
        :meth:`merge_entropy_caches`.
        """
        return self._entropy_caches.setdefault(estimator, {})

    def entropy_cache_sizes(self) -> dict[str, int]:
        """Entries per estimator in this table's entropy memos.

        Instrumentation for the service layer: a registered dataset's cache
        sizes show how "warm" it is across requests.  Snapshots the outer
        dict first so a concurrent request adding a new estimator memo
        cannot fault the iteration.
        """
        return {estimator: len(cache) for estimator, cache in dict(self._entropy_caches).items()}

    def export_entropy_caches(self) -> dict[str, dict[frozenset[str], float]]:
        """Snapshot every entropy memo of this table (picklable).

        Engine tasks return this snapshot so the parent process can merge
        worker-computed entropies back into its own table instance instead
        of silently losing them when the worker exits.
        """
        return {estimator: dict(cache) for estimator, cache in self._entropy_caches.items()}

    def merge_entropy_caches(
        self,
        caches: Mapping[str, Mapping],
        ordered_only: bool = False,
    ) -> None:
        """Merge an exported snapshot into this table's entropy memos.

        Only valid for snapshots taken from (copies of) this same table --
        entropies depend on the row set.  Existing entries are overwritten
        with equal values, so merging is idempotent.

        ``ordered_only`` restricts the merge to tuple-keyed (ordered)
        entries.  Ordered entries are pure functions of (table, estimator,
        column order) and therefore bitwise-safe to import from any worker;
        set-keyed entries are "first computation order wins", so importing
        one could change which order this process caches first.  Discovery
        merges worker snapshots with ``ordered_only=True`` to keep the
        emitted p-value stream byte-identical to in-process computation.
        """
        for estimator, cache in caches.items():
            if ordered_only:
                cache = {key: value for key, value in cache.items() if isinstance(key, tuple)}
            self._entropy_caches.setdefault(estimator, {}).update(cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_columns(self, requested: Iterable[str]) -> None:
        check_columns_exist(self._columns, requested)


def _encode(values: Sequence[Any]) -> tuple[np.ndarray, tuple[Any, ...]]:
    """Dictionary-encode raw values into (codes, sorted domain)."""
    try:
        domain = tuple(sorted(set(values)))
    except TypeError:
        domain = tuple(sorted(set(values), key=repr))
    index = {value: code for code, value in enumerate(domain)}
    codes = np.fromiter((index[value] for value in values), dtype=np.int64, count=len(values))
    return codes, domain


def _compress(codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Re-map codes onto the dense range of observed values."""
    if len(codes) == 0:
        return codes.astype(np.int64), 0
    unique, inverse = np.unique(codes, return_inverse=True)
    return inverse.astype(np.int64), len(unique)


def _parse_csv_value(text: str) -> Any:
    """Parse a CSV cell: integers become ints, everything else stays a string."""
    try:
        return int(text)
    except ValueError:
        return text
