"""Execution engines: schedule independent statistical work across workers.

See :mod:`repro.engine.base` for the task contract that keeps results
bit-identical across engines and worker counts, and
:mod:`repro.engine.seeds` for the seed-spawning discipline.
"""

from __future__ import annotations

from repro.engine.base import ExecutionEngine, chunked, default_chunk_size
from repro.engine.dataplane import GroupedRef, TableRef, resolve_grouped, resolve_table
from repro.engine.parallel import ParallelEngine
from repro.engine.seeds import draw_entropy, spawn_seeds
from repro.engine.serial import SerialEngine

__all__ = [
    "ExecutionEngine",
    "GroupedRef",
    "ParallelEngine",
    "SerialEngine",
    "TableRef",
    "chunked",
    "default_chunk_size",
    "draw_entropy",
    "resolve_engine",
    "resolve_grouped",
    "resolve_table",
    "spawn_seeds",
]


def resolve_engine(engine: "ExecutionEngine | int | None") -> ExecutionEngine:
    """Normalize the ``engine`` argument accepted across the library.

    ``None`` -> :class:`SerialEngine`; an integer is a job count
    (``<= 1`` serial, otherwise :class:`ParallelEngine`); an engine
    instance passes through unchanged.
    """
    if engine is None:
        return SerialEngine()
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, int) and not isinstance(engine, bool):
        return SerialEngine() if engine <= 1 else ParallelEngine(jobs=engine)
    raise TypeError(
        f"engine must be an ExecutionEngine, a job count, or None; got {engine!r}"
    )
