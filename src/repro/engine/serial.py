"""The in-process engine: runs every task inline, in order."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.engine.base import ExecutionEngine


class SerialEngine(ExecutionEngine):
    """Runs tasks one by one in the calling process.

    This is the reference implementation that every parallel engine must
    match bit-for-bit; it is also the default everywhere, so single-core
    callers pay no scheduling overhead.
    """

    name = "serial"

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        chunk_size: int | None = None,
    ) -> list:
        """Apply ``fn`` to ``tasks`` in order, inline."""
        return [fn(task) for task in tasks]
