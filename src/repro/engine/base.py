"""Execution-engine abstraction for independent statistical work.

HypDB's hot path is dominated by *embarrassingly parallel* units: the
Monte-Carlo replicates of one permutation test (Alg. 2), the per-group
Patefield sampling, the CI tests of independent discovery candidates, the
per-context detection/explanation work, and the cuboids of one roll-up
level of a data cube.  An :class:`ExecutionEngine` schedules such units:
callers build a list of *tasks* (small, picklable payloads), hand them to
:meth:`ExecutionEngine.map` together with a module-level task function,
and receive the results in task order.

The contract that makes results reproducible across engines and worker
counts:

* task functions are **pure** -- every random draw comes from a seed
  carried inside the task payload (see :mod:`repro.engine.seeds`);
* task lists and their seeds are built **before** scheduling, from parent
  state only, and never depend on the number of workers;
* results are returned **in task order**, regardless of completion order.

Under these rules ``SerialEngine`` and ``ParallelEngine(jobs=k)`` produce
bit-identical results for every ``k``.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


class ExecutionEngine:
    """Schedules independent tasks; see the module docstring for the contract."""

    name = "abstract"

    @property
    def jobs(self) -> int:
        """Number of worker processes the engine may use (1 = in-process)."""
        return 1

    def map(
        self,
        fn: Callable[[Task], Result],
        tasks: Sequence[Task],
        chunk_size: int | None = None,
    ) -> list[Result]:
        """Apply ``fn`` to every task and return the results in task order.

        ``fn`` must be a module-level (picklable) callable and each task a
        picklable value.  ``chunk_size`` overrides the engine's batching of
        tasks per worker round-trip; it never affects the results.
        """
        raise NotImplementedError

    def publish(self, table):
        """Make ``table`` worker-resident; returns the handle tasks carry.

        The in-process default is the identity: the table itself is the
        cheapest possible handle when tasks never cross a process
        boundary.  :class:`~repro.engine.parallel.ParallelEngine`
        overrides this to return a :class:`~repro.engine.dataplane.TableRef`
        so chunk submissions ship O(1) bytes instead of the code arrays.
        Task functions materialize either form with
        :func:`repro.engine.dataplane.resolve`.
        """
        return table

    def release(self, handle) -> None:
        """Drop a handle returned by :meth:`publish` (no-op in-process)."""

    def pin(self, table):
        """Publish ``table`` and keep it (and its summaries) plane-resident.

        A *pin* is a publish whose reference outlives the individual
        requests running under it: while a fingerprint is pinned,
        :class:`~repro.engine.parallel.ParallelEngine` also defers the
        release of grouped-contingency tensors published against it, so
        consecutive tests and batched requests over the same table reuse
        one shared-memory segment instead of re-creating it per request.
        The in-process default is a plain :meth:`publish`.  Always match
        with :meth:`unpin` (typically in a ``finally``).
        """
        return self.publish(table)

    def unpin(self, handle) -> None:
        """Release a :meth:`pin`: flush deferred work, drop the reference."""
        self.release(handle)

    def publish_grouped(self, table, key, grouped):
        """Make a grouped-contingency tensor worker-resident.

        ``key`` is the ``(x, y, *z)`` column tuple identifying the summary
        on ``table``.  The in-process default hands back the tensor itself
        (the cheapest handle when tasks never cross a process boundary).
        :class:`~repro.engine.parallel.ParallelEngine` publishes it on the
        dataset plane and returns an O(1)
        :class:`~repro.engine.dataplane.GroupedRef` -- or ``None`` when
        shared memory is unavailable, telling the caller to embed marginal
        vectors in its tasks instead.  Task functions materialize any
        non-``None`` handle with :func:`repro.engine.dataplane.resolve_grouped`.
        """
        return grouped

    def release_grouped(self, handle) -> None:
        """Drop a handle returned by :meth:`publish_grouped` (no-op here)."""

    def close(self) -> None:
        """Release worker resources (idempotent; the engine stays usable)."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


def chunked(items: Sequence[Any], size: int) -> list[list[Any]]:
    """Split ``items`` into consecutive batches of at most ``size``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    return [list(items[start : start + size]) for start in range(0, len(items), size)]


def default_chunk_size(n_tasks: int, jobs: int, oversubscription: int = 4) -> int:
    """Batch tasks so each worker sees ~``oversubscription`` batches.

    Small batches waste round-trips on IPC; one batch per worker loses the
    load balancing that keeps stragglers from dominating.  A handful of
    batches per worker is the standard compromise.
    """
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / max(1, jobs * oversubscription)))
