"""The dataset plane: worker-resident tables behind content fingerprints.

Before this module existed, every engine task that needed data embedded the
full :class:`~repro.relation.table.Table`, so each chunk submission
re-pickled all ``int64`` code arrays through the IPC pipe -- O(rows x cols
x 8 B) per chunk.  The dataset plane inverts that: the parent *publishes* a
table once, workers keep it *resident*, and tasks carry a
:class:`TableRef` -- a few hundred bytes of fingerprint plus schema --
instead of the data.  This mirrors how the paper's in-database execution
avoids shipping data to the algorithm: keep the data where the work
happens, move only handles and summaries.

Publication transports, in order of preference:

1. **Shared memory** -- the parent copies the code arrays into one
   ``multiprocessing.shared_memory`` segment per table; workers attach by
   name (lazily, on first resolve) and wrap zero-copy numpy views.  Works
   for any start method and for tables published after the pool started.
2. **Fork inheritance** -- with the ``fork`` start method (the Linux
   default), the parent-side registry is visible to children created after
   publication at no cost (copy-on-write).
3. **Pickle-once worker cache** -- when shared memory is unavailable, the
   engine ships the registry's fallback tables through the pool
   *initializer*: one pickle per worker process, not one per chunk.
   Fallback publications bump a generation counter so an already-running
   pool is recreated before its next map (publish once per pool).

Every transport is invisible to results: :func:`resolve` hands back a
table with identical content (and, in the parent process, the *identical
instance*), and no RNG is consumed anywhere, so p-values, reports, and
discovered covariates are byte-identical to in-task table shipping for
every engine and worker count.

Cleanup: segments are reference-counted per fingerprint.  Engines release
what they published on ``close()`` and an ``atexit`` hook unlinks
anything left, guarded by the creating PID so forked workers can never
unlink the parent's segments (and the resource tracker stays quiet).
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.relation.table import GroupedContingencies, Table

__all__ = [
    "PLANE_STATS",
    "GroupedRef",
    "PlaneStats",
    "TableRef",
    "publish",
    "publish_grouped",
    "release",
    "release_grouped",
    "resolve_grouped",
    "resolve_table",
]

#: Attach-resolved tables a worker keeps resident before evicting the
#: oldest.  Each entry pins its table object, its entropy memos, and its
#: shared-memory mapping, so an unbounded cache would grow a long-lived
#: service's workers forever as distinct datasets / query contexts stream
#: through.  Parent-side publications are refcounted and never evicted.
WORKER_CACHE_LIMIT = 8


#: PlaneStats field -> metric family name in the global registry.
_PLANE_METRICS = {
    "table_publications": "repro_plane_table_publications_total",
    "table_republications": "repro_plane_table_republications_total",
    "table_segments": "repro_plane_table_segments_total",
    "grouped_publications": "repro_plane_grouped_publications_total",
    "grouped_republications": "repro_plane_grouped_republications_total",
    "grouped_segments": "repro_plane_grouped_segments_total",
}


class PlaneStats:
    """Process-local publication counters (instrumentation).

    ``*_publications`` counts first publications (a new plane entry),
    ``*_republications`` counts refcount hits on an already-resident
    entry (the work-sharing case: a pinned batch republishing a table it
    already holds), and ``*_segments`` counts shared-memory segments
    actually created.  The service's ``/stats`` endpoint and the batch
    -planner tests read these to assert publish-once behavior.

    Since the observability tier each field is a view over a counter
    family in :data:`repro.obs.metrics.GLOBAL_REGISTRY` (scrapable on
    ``GET /metrics``); the ``+=`` increment sites -- all already under
    the registry lock -- and ``reset()`` keep working through the
    property descriptors installed below, and ``as_dict()`` keeps the
    exact ``/stats`` shape.
    """

    def __init__(self) -> None:
        from repro.obs.metrics import GLOBAL_REGISTRY

        self._counters = {
            field_name: GLOBAL_REGISTRY.counter(
                metric_name, f"Dataset plane: {field_name.replace('_', ' ')}."
            )
            for field_name, metric_name in _PLANE_METRICS.items()
        }

    def reset(self) -> None:
        """Zero every counter (test isolation between cases)."""
        for counter in self._counters.values():
            counter.set(0)

    def as_dict(self) -> dict[str, int]:
        """JSON-ready snapshot (consumed by the service ``/stats``)."""
        return {
            field_name: int(counter.value())
            for field_name, counter in self._counters.items()
        }


def _plane_property(field_name: str) -> property:
    """A registry-backed int property for one :class:`PlaneStats` field."""

    def _get(self: PlaneStats) -> int:
        return int(self._counters[field_name].value())

    def _set(self: PlaneStats, value: int) -> None:
        self._counters[field_name].set(value)

    return property(_get, _set, doc=f"Registry view of {field_name} (int).")


for _field_name in _PLANE_METRICS:
    setattr(PlaneStats, _field_name, _plane_property(_field_name))


#: Module-level counter instance (see :class:`PlaneStats`).
PLANE_STATS = PlaneStats()


@dataclass(frozen=True)
class GroupedRef:
    """A cheap, picklable handle to a published grouped-contingency tensor.

    Identifies the summary by content: the owning table's fingerprint plus
    the ``(x, y, *z)`` column key.  The pickled form is ~100-250 B and --
    unlike the per-group marginal lists MIT replicate tasks used to embed
    -- independent of the number of conditioning groups and of the
    marginal widths.  All five arrays travel inside one shared-memory
    segment whose layout is fully determined by ``(n_groups, n_x, n_y)``.
    """

    fingerprint: str
    key: tuple[str, ...]
    segment: str
    n_groups: int
    n_x: int
    n_y: int


@dataclass(frozen=True)
class TableRef:
    """A cheap, picklable handle to a published table.

    The pickled form is O(1) -- a fingerprint, a segment name, and three
    integers.  The schema (column names and domains, which for key-like
    columns are as large as the data) travels inside the shared-memory
    segment, pickled once at publication, never per task.
    """

    fingerprint: str
    n_rows: int
    n_cols: int
    segment: str | None  # shared-memory name; None = registry-only transport
    schema_bytes: int  # pickled-schema length at the tail of the segment


class _Registry:
    """Process-local state of the plane (one instance per process).

    A forked worker inherits the parent's instance contents (cheap,
    copy-on-write); a spawned worker starts empty and is filled by the
    pool initializer plus lazy shared-memory attaches.
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.tables: dict[str, Table] = {}  # fingerprint -> resident table
        self.refs: dict[str, TableRef] = {}
        self.refcounts: dict[str, int] = {}
        self.segments: dict[str, Any] = {}  # created segments (this process)
        self.attached: dict[str, Any] = {}  # attached segments, resolution order
        self.pinned: list[Any] = []  # evicted handles whose buffers escaped
        self.owner_pid: dict[str, int] = {}
        self.fallback_generation = 0
        # Grouped-tensor plane: same shape as the table plane, keyed by
        # (fingerprint, column key).  Grouped publications never use the
        # registry-only fallback (publish_grouped returns None instead of
        # bumping the pool generation), so no generation counter here.
        self.grouped: dict[tuple, GroupedContingencies] = {}
        self.grouped_refs: dict[tuple, GroupedRef] = {}
        self.grouped_refcounts: dict[tuple, int] = {}
        self.grouped_segments: dict[tuple, Any] = {}
        self.grouped_attached: dict[tuple, Any] = {}
        self.grouped_owner_pid: dict[tuple, int] = {}


_registry = _Registry()


def publish(table: Table) -> TableRef:
    """Make ``table`` resident and return its :class:`TableRef`.

    Idempotent per content: publishing an equal-content table again (from
    any caller) bumps a reference count and returns the existing handle.
    Callers release what they publish; see :func:`release`.
    """
    fingerprint = table.fingerprint()
    with _registry.lock:
        existing = _registry.refs.get(fingerprint)
        if existing is not None:
            _registry.refcounts[fingerprint] += 1
            PLANE_STATS.table_republications += 1
            return existing
        PLANE_STATS.table_publications += 1
        segment_name, schema_bytes = _create_segment(fingerprint, table)
        ref = TableRef(
            fingerprint=fingerprint,
            n_rows=table.n_rows,
            n_cols=len(table.columns),
            segment=segment_name,
            schema_bytes=schema_bytes,
        )
        _registry.tables[fingerprint] = table
        _registry.refs[fingerprint] = ref
        _registry.refcounts[fingerprint] = 1
        if segment_name is None:
            # Registry-only tables reach workers by fork inheritance or
            # the pool initializer; a live pool predates this publication
            # and must be recreated (ParallelEngine watches this counter).
            _registry.fallback_generation += 1
        return ref


def release(ref: TableRef) -> None:
    """Drop one reference to a published table; evict and unlink at zero."""
    with _registry.lock:
        count = _registry.refcounts.get(ref.fingerprint)
        if count is None:
            return
        if count > 1:
            _registry.refcounts[ref.fingerprint] = count - 1
            return
        _registry.refcounts.pop(ref.fingerprint, None)
        _registry.refs.pop(ref.fingerprint, None)
        _registry.tables.pop(ref.fingerprint, None)
        _destroy_segment(ref.fingerprint)


def resolve_table(handle: "Table | TableRef | None") -> "Table | None":
    """Materialize a task payload's table handle.

    ``None`` and plain tables pass through (the serial transport embeds
    the instance itself).  A :class:`TableRef` resolves, in order, to the
    process-local registry (the parent and fork-inherited workers hit
    this for free), the worker's resolved cache, or a fresh zero-copy
    attach of the shared-memory segment.
    """
    if handle is None or isinstance(handle, Table):
        return handle
    table = _registry.tables.get(handle.fingerprint)
    if table is not None:
        return table
    with _registry.lock:
        table = _registry.tables.get(handle.fingerprint)
        if table is not None:
            return table
        if handle.segment is None:
            raise RuntimeError(
                f"table {handle.fingerprint[:12]} is not resident in this process "
                "and has no shared-memory segment; was it released before its "
                "tasks ran?"
            )
        table = _attach_segment(handle)
        # Cache by fingerprint: content-addressing makes the cache immune
        # to republication (a new segment for the same fingerprint holds
        # identical bytes), and the table's entropy memos stay warm across
        # every task this worker runs against it.
        _registry.tables[handle.fingerprint] = table
        _evict_worker_cache()
        return table


def _evict_worker_cache() -> None:
    """Drop the oldest attach-resolved tables past ``WORKER_CACHE_LIMIT``.

    Only entries this process *attached* are candidates (``attached``
    insertion order is resolution order); publications it owns are
    refcounted elsewhere.  Dropping the table destroys the numpy views,
    so the mapping can close and actually return its pages -- unless some
    live object still borrows the buffer, in which case ``close`` raises
    ``BufferError`` and the entry is kept for a later attempt.
    """
    for fingerprint in list(_registry.attached):
        if len(_registry.attached) <= WORKER_CACHE_LIMIT:
            return
        segment = _registry.attached.pop(fingerprint)
        table = _registry.tables.pop(fingerprint, None)
        del table
        try:
            segment.close()
        except BufferError:
            # A view still escapes (e.g. a projection created by earlier
            # work).  Pin the handle for the process lifetime instead of
            # risking a noisy close in __del__ later; the mapping stays,
            # which is exactly the pre-eviction behavior.
            _registry.pinned.append(segment)


# ----------------------------------------------------------------------
# Grouped-tensor plane
# ----------------------------------------------------------------------


def publish_grouped(
    fingerprint: str, key: tuple[str, ...], grouped: GroupedContingencies
) -> GroupedRef | None:
    """Make a grouped-contingency tensor resident; return its handle.

    Content-addressed by ``(table fingerprint, column key)`` and
    refcounted exactly like table publications.  Returns ``None`` when
    shared memory is unavailable -- the caller then falls back to
    embedding marginal vectors in its tasks (there is no pickle-once
    fallback transport for tensors: a tensor is one test's working set,
    not a table the whole pool needs, so recreating the pool for it would
    cost more than it saves).
    """
    composite = (fingerprint, tuple(key))
    with _registry.lock:
        existing = _registry.grouped_refs.get(composite)
        if existing is not None:
            _registry.grouped_refcounts[composite] += 1
            PLANE_STATS.grouped_republications += 1
            return existing
        segment_name = _create_grouped_segment(composite, grouped)
        if segment_name is None:
            return None
        PLANE_STATS.grouped_publications += 1
        ref = GroupedRef(
            fingerprint=fingerprint,
            key=tuple(key),
            segment=segment_name,
            n_groups=grouped.n_groups,
            n_x=grouped.n_x,
            n_y=grouped.n_y,
        )
        _registry.grouped[composite] = grouped
        _registry.grouped_refs[composite] = ref
        _registry.grouped_refcounts[composite] = 1
        return ref


def release_grouped(ref: GroupedRef) -> None:
    """Drop one reference to a published tensor; evict and unlink at zero."""
    composite = (ref.fingerprint, ref.key)
    with _registry.lock:
        count = _registry.grouped_refcounts.get(composite)
        if count is None:
            return
        if count > 1:
            _registry.grouped_refcounts[composite] = count - 1
            return
        _registry.grouped_refcounts.pop(composite, None)
        _registry.grouped_refs.pop(composite, None)
        _registry.grouped.pop(composite, None)
        _destroy_grouped_segment(composite)


def resolve_grouped(
    handle: "GroupedContingencies | GroupedRef",
) -> GroupedContingencies:
    """Materialize a replicate task's grouped-tensor handle.

    In-process tensors pass through (the serial transport hands the object
    itself).  A :class:`GroupedRef` resolves to the process-local registry
    (parent / fork-inherited workers hit this for free) or to a zero-copy
    attach of the shared-memory segment, cached per worker alongside the
    table plane's attach cache and bounded the same way.
    """
    if isinstance(handle, GroupedContingencies):
        return handle
    composite = (handle.fingerprint, handle.key)
    grouped = _registry.grouped.get(composite)
    if grouped is not None:
        return grouped
    with _registry.lock:
        grouped = _registry.grouped.get(composite)
        if grouped is not None:
            return grouped
        grouped = _attach_grouped_segment(handle)
        _registry.grouped[composite] = grouped
        _evict_grouped_cache()
        return grouped


def _grouped_layout(n_groups: int, n_x: int, n_y: int) -> list[tuple[str, tuple[int, ...]]]:
    """Field order + shapes of a grouped segment (all ``int64``)."""
    return [
        ("tensor", (n_groups, n_x, n_y)),
        ("group_counts", (n_groups,)),
        ("group_rows", (n_groups,)),
        ("x_codes", (n_x,)),
        ("y_codes", (n_y,)),
    ]


def _create_grouped_segment(composite: tuple, grouped: GroupedContingencies) -> str | None:
    """Copy the five tensor arrays into one shared-memory segment."""
    layout = _grouped_layout(grouped.n_groups, grouped.n_x, grouped.n_y)
    itemsize = np.dtype(np.int64).itemsize
    total = sum(int(np.prod(shape)) for _, shape in layout) * itemsize
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    except (ImportError, OSError):
        return None
    offset = 0
    for field, shape in layout:
        view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf, offset=offset)
        view[...] = getattr(grouped, field)
        offset += int(np.prod(shape)) * itemsize
    _registry.grouped_segments[composite] = segment
    _registry.grouped_owner_pid[composite] = os.getpid()
    PLANE_STATS.grouped_segments += 1
    return segment.name


def _attach_grouped_segment(ref: GroupedRef) -> GroupedContingencies:
    """Worker-side zero-copy attach: shared buffer -> read-only tensor."""
    segment = _attach_untracked(ref.segment)
    itemsize = np.dtype(np.int64).itemsize
    offset = 0
    fields: dict[str, np.ndarray] = {}
    for field, shape in _grouped_layout(ref.n_groups, ref.n_x, ref.n_y):
        view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        fields[field] = view
        offset += int(np.prod(shape)) * itemsize
    _registry.grouped_attached[(ref.fingerprint, ref.key)] = segment
    return GroupedContingencies(**fields)


def _evict_grouped_cache() -> None:
    """Bound the worker's attach-resolved tensors (same policy as tables)."""
    for composite in list(_registry.grouped_attached):
        if len(_registry.grouped_attached) <= WORKER_CACHE_LIMIT:
            return
        segment = _registry.grouped_attached.pop(composite)
        grouped = _registry.grouped.pop(composite, None)
        del grouped
        try:
            segment.close()
        except BufferError:
            # A sliced view escaped into still-live objects; pin the
            # handle for the process lifetime rather than crash the close.
            _registry.pinned.append(segment)


def _destroy_grouped_segment(composite: tuple) -> None:
    segment = _registry.grouped_segments.pop(composite, None)
    owner = _registry.grouped_owner_pid.pop(composite, None)
    if segment is None or owner != os.getpid():
        # Forked children inherit the parent's bookkeeping; only the
        # creating process may unlink.
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


def fallback_generation() -> int:
    """Counter of registry-only publications (pool-recreate signal)."""
    with _registry.lock:
        return _registry.fallback_generation


def fallback_payload() -> bytes | None:
    """Pickled registry-only tables for a pool initializer (or ``None``).

    Pickled once here, shipped once per worker at pool start -- never per
    task.  Only used by non-fork start methods; fork workers inherit the
    registry directly.
    """
    with _registry.lock:
        tables = {
            fingerprint: table
            for fingerprint, table in _registry.tables.items()
            if _registry.refs[fingerprint].segment is None
        }
    if not tables:
        return None
    return pickle.dumps(tables, protocol=pickle.HIGHEST_PROTOCOL)


def install_payload(payload: bytes | None) -> None:
    """Worker-side pool initializer: make fallback tables resident."""
    if payload is None:
        return
    for fingerprint, table in pickle.loads(payload).items():
        _registry.tables.setdefault(fingerprint, table)


def resident_count() -> int:
    """Number of tables resident in this process (instrumentation)."""
    with _registry.lock:
        return len(_registry.tables)


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------


def _create_segment(fingerprint: str, table: Table) -> tuple[str | None, int]:
    """Copy code arrays + pickled schema into one shared-memory segment.

    Layout: ``n_cols`` contiguous ``int64`` rows of length ``n_rows``,
    followed by the pickled ``(columns, domains)`` pair.  Returns
    ``(segment name, schema length)``, or ``(None, 0)`` when shared memory
    is unavailable (no ``/dev/shm``, exotic platforms) or the table is
    empty -- the registry-only transport covers those.
    """
    n_rows = table.n_rows
    n_cols = len(table.columns)
    if n_rows == 0 or n_cols == 0:
        return None, 0
    schema = pickle.dumps(
        (table.columns, tuple(table.domain(name) for name in table.columns)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    codes_bytes = n_rows * n_cols * np.dtype(np.int64).itemsize
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True, size=codes_bytes + len(schema)
        )
    except (ImportError, OSError):
        return None, 0
    buffer = np.ndarray((n_cols, n_rows), dtype=np.int64, buffer=segment.buf)
    for position, name in enumerate(table.columns):
        buffer[position] = table.codes(name)
    segment.buf[codes_bytes : codes_bytes + len(schema)] = schema
    _registry.segments[fingerprint] = segment
    _registry.owner_pid[fingerprint] = os.getpid()
    PLANE_STATS.table_segments += 1
    return segment.name, len(schema)


def _attach_segment(ref: TableRef) -> Table:
    """Worker-side zero-copy attach: shared buffer -> immutable Table."""
    segment = _attach_untracked(ref.segment)
    stride = ref.n_rows * np.dtype(np.int64).itemsize
    codes_bytes = ref.n_cols * stride
    columns, domains = pickle.loads(
        bytes(segment.buf[codes_bytes : codes_bytes + ref.schema_bytes])
    )
    codes: dict[str, np.ndarray] = {}
    for position, name in enumerate(columns):
        view = np.ndarray(
            (ref.n_rows,), dtype=np.int64, buffer=segment.buf, offset=position * stride
        )
        view.flags.writeable = False
        codes[name] = view
    # Keep the handle open for the worker's lifetime: the numpy views
    # reference its buffer, and closing a mapping with exported pointers
    # raises BufferError.  The parent owns unlinking.
    _registry.attached[ref.fingerprint] = segment
    return Table(codes, dict(zip(columns, domains)))


def _attach_untracked(name: str):
    """Attach a shared-memory segment without resource-tracker tracking.

    Only the *creating* process may own cleanup: a worker that registers
    an attach-only handle with its resource tracker would (a) warn about a
    "leaked" segment at exit and (b), under spawn start methods, have its
    tracker *unlink the parent's live segment* -- the cpython gh-82300
    double-tracking hazard.  Python 3.13 exposes ``track=False`` for
    exactly this; for 3.10-3.12 the documented workaround is suppressing
    ``resource_tracker.register`` around the attach (workers are
    single-threaded, so the swap cannot race).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _destroy_segment(fingerprint: str) -> None:
    segment = _registry.segments.pop(fingerprint, None)
    owner = _registry.owner_pid.pop(fingerprint, None)
    if segment is None or owner != os.getpid():
        # Forked children inherit the parent's bookkeeping; only the
        # creating process may unlink.
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


@atexit.register
def _cleanup_at_exit() -> None:
    """Unlink every segment this process created and never released."""
    with _registry.lock:
        for fingerprint in list(_registry.segments):
            _destroy_segment(fingerprint)
        for composite in list(_registry.grouped_segments):
            _destroy_grouped_segment(composite)
