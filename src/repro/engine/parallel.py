"""Multi-process engine built on :class:`concurrent.futures.ProcessPoolExecutor`.

Tasks are shipped to workers in chunks (one pickle round-trip per chunk,
not per task) and results are gathered in submission order, so the output
is independent of worker scheduling.  The pool is created lazily on the
first parallel ``map`` and reused across calls -- process start-up costs
are paid once per engine, not once per test.

The engine is picklable: only its configuration travels (the pool is
dropped), so a task payload may safely contain an object that references a
``ParallelEngine``.  An unpickled copy starts with no pool and would lazily
create one; callers that fan out work containing engines should downgrade
them to :class:`~repro.engine.serial.SerialEngine` first (see
``CITest.spawn_worker``) to avoid nested pools.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.engine import dataplane
from repro.engine.base import ExecutionEngine, chunked, default_chunk_size
from repro.obs.trace import TRACER


def _run_batch(
    fn: Callable, batch: list, trace_id: str | None = None
) -> tuple[list, dict[str, Any] | None]:
    """Worker-side driver: apply ``fn`` to one chunk of tasks.

    Returns ``(results, meta)``.  ``meta`` is ``None`` untraced;  under a
    trace id (the task payload's trace field) it carries the chunk's
    measured wall time so the *parent* can re-record the worker's span
    into the request trace -- worker processes cannot reach the parent's
    trace ring, and the meta channel keeps ``results`` byte-identical to
    the untraced path.
    """
    if trace_id is None:
        return [fn(task) for task in batch], None
    start = time.perf_counter()
    results = [fn(task) for task in batch]
    meta = {
        "trace_id": trace_id,
        "duration_seconds": time.perf_counter() - start,
        "tasks": len(batch),
        "pid": os.getpid(),
    }
    return results, meta


#: Distinct grouped tensors kept resident per engine while their table is
#: pinned.  A tensor can be up to GROUPED_MAX_CELLS * 8 B, so an analyze
#: issuing very many distinct wide tests under one pin must not defer
#: them all; past the bound, releases happen immediately (pre-pin
#: behavior, still correct -- deferral is purely a reuse optimization).
DEFERRED_GROUPED_LIMIT = 16


def _pick_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork inherits the parent's modules and avoids re-importing numpy in
    # every worker; fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelEngine(ExecutionEngine):
    """Fans tasks out across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Fixed batch size per worker round-trip; by default a size is
        derived from the task count and ``jobs``.  Affects scheduling
        granularity only, never results.
    min_tasks:
        Task lists shorter than this run inline (the pool cannot pay for
        itself on one or two tasks).
    start_method:
        multiprocessing start method (``"fork"`` where available).
    """

    name = "parallel"

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        min_tasks: int = 2,
        start_method: str | None = None,
    ) -> None:
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {resolved}")
        if min_tasks < 0:
            raise ValueError(f"min_tasks must be >= 0, got {min_tasks}")
        self._jobs = int(resolved)
        self._chunk_size = chunk_size
        self._min_tasks = min_tasks
        self._start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        # Dataset-plane bookkeeping: [ref, publish count] per fingerprint
        # (released on close), and which fallback generation the current
        # pool was created against.  One engine is shared by all service
        # request threads, so the bookkeeping and the pool lifecycle are
        # guarded by a lock (ProcessPoolExecutor.submit itself is
        # thread-safe).
        self._published: dict[str, list] = {}
        self._published_grouped: dict[tuple, list] = {}
        # Pin bookkeeping: fingerprint -> pin count, plus the grouped
        # releases deferred while their table was pinned (composite ->
        # pending release count).  Deferred tensors stay plane-resident
        # so every test under the pin republishes in O(1); the final
        # unpin flushes them.
        self._pinned: dict[str, int] = {}
        self._deferred_grouped: dict[tuple, int] = {}
        self._pool_generation = dataplane.fallback_generation()
        self._lock = threading.Lock()
        # Pool-recreation coordination: maps in flight on the current
        # pool; recreation (fallback-generation bump) waits for zero so a
        # pool is never shut down under a thread still submitting to it.
        self._active_maps = 0
        self._no_active_maps = threading.Condition(self._lock)

    @property
    def jobs(self) -> int:
        """Worker process count this engine was sized for."""
        return self._jobs

    # ------------------------------------------------------------------
    # Dataset plane
    # ------------------------------------------------------------------

    def publish(self, table):
        """Publish ``table`` on the dataset plane; tasks carry the ref.

        Empty tables stay inline (their pickles are already O(1)).  The
        engine remembers its publications and releases them on
        :meth:`close`, so callers that forget to release never leak
        shared-memory segments past the engine's lifetime.
        """
        if table is None or table.n_rows == 0 or not table.columns:
            return table
        with self._lock:
            ref = dataplane.publish(table)
            entry = self._published.get(ref.fingerprint)
            if entry is None:
                self._published[ref.fingerprint] = [ref, 1]
            else:
                entry[1] += 1
            return ref

    def release(self, handle) -> None:
        """Drop one reference to a published table (no-op for inlines)."""
        if not isinstance(handle, dataplane.TableRef):
            return
        with self._lock:
            entry = self._published.get(handle.fingerprint)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                del self._published[handle.fingerprint]
            dataplane.release(handle)

    def pin(self, table):
        """Publish ``table`` and hold its summaries resident until unpin.

        Callers running several requests over one table (a batch group,
        the phases of one ``analyze``) pin it once: every publish under
        the pin -- the table itself *and* any grouped-contingency tensors
        derived from it -- then hits the plane's refcounted entry instead
        of re-creating a segment.  Pins nest and are thread-safe.
        """
        handle = self.publish(table)
        if isinstance(handle, dataplane.TableRef):
            with self._lock:
                self._pinned[handle.fingerprint] = (
                    self._pinned.get(handle.fingerprint, 0) + 1
                )
        return handle

    def unpin(self, handle) -> None:
        """Drop a :meth:`pin`: flush the deferred grouped releases."""
        if not isinstance(handle, dataplane.TableRef):
            return
        to_flush: list[tuple] = []
        with self._lock:
            count = self._pinned.get(handle.fingerprint, 0)
            if count > 1:
                self._pinned[handle.fingerprint] = count - 1
            else:
                self._pinned.pop(handle.fingerprint, None)
                for composite in [
                    item
                    for item in self._deferred_grouped
                    if item[0] == handle.fingerprint
                ]:
                    pending = self._deferred_grouped.pop(composite)
                    entry = self._published_grouped.get(composite)
                    if entry is None:
                        continue
                    entry[1] -= pending
                    if entry[1] <= 0:
                        del self._published_grouped[composite]
                    to_flush.append((entry[0], pending))
        for ref, pending in to_flush:
            for _ in range(pending):
                dataplane.release_grouped(ref)
        self.release(handle)

    def publish_grouped(self, table, key, grouped):
        """Publish a grouped tensor on the plane; tasks carry the ref.

        Returns ``None`` (caller embeds marginal vectors) when there is
        nothing to publish or shared memory is unavailable -- tensors get
        no pickle-once pool fallback, because recreating a live pool for
        one test's working set would cost more than the payload saves.
        Publications are remembered and force-released on :meth:`close`.
        """
        if grouped is None or table is None:
            return None
        with self._lock:
            ref = dataplane.publish_grouped(table.fingerprint(), tuple(key), grouped)
            if ref is None:
                return None
            composite = (ref.fingerprint, ref.key)
            entry = self._published_grouped.get(composite)
            if entry is None:
                self._published_grouped[composite] = [ref, 1]
            else:
                entry[1] += 1
            return ref

    def release_grouped(self, handle) -> None:
        """Drop one reference to a published grouped tensor (no-op for inlines)."""
        if not isinstance(handle, dataplane.GroupedRef):
            return
        with self._lock:
            composite = (handle.fingerprint, handle.key)
            entry = self._published_grouped.get(composite)
            if entry is None:
                return
            if handle.fingerprint in self._pinned and (
                composite in self._deferred_grouped
                or len(self._deferred_grouped) < DEFERRED_GROUPED_LIMIT
            ):
                # The owning table is pinned: keep the tensor resident so
                # the next identical test republishes in O(1); the final
                # unpin (or close) performs the actual release.
                self._deferred_grouped[composite] = (
                    self._deferred_grouped.get(composite, 0) + 1
                )
                return
            entry[1] -= 1
            if entry[1] <= 0:
                del self._published_grouped[composite]
            dataplane.release_grouped(handle)

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        chunk_size: int | None = None,
    ) -> list:
        """Apply ``fn`` to ``tasks`` across the pool, order-preserving.

        Small task lists (below the parallel-dispatch floor) run inline;
        results are identical to the serial engine either way.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self._jobs <= 1 or len(tasks) < self._min_tasks:
            return [fn(task) for task in tasks]
        size = chunk_size or self._chunk_size or default_chunk_size(len(tasks), self._jobs)
        batches = chunked(tasks, size)
        trace_id = TRACER.current_id()
        executor = self._acquire_executor()
        try:
            with TRACER.span(
                "engine.map", tasks=len(tasks), chunks=len(batches), jobs=self._jobs
            ):
                futures = [
                    executor.submit(_run_batch, fn, batch, trace_id)
                    for batch in batches
                ]
                results: list = []
                for index, future in enumerate(futures):  # submission == task order
                    chunk_results, meta = future.result()
                    results.extend(chunk_results)
                    if meta is not None:
                        # The worker measured its own wall time; re-record
                        # it here where the trace ring lives.
                        TRACER.record_span(
                            "engine.worker_batch",
                            meta["duration_seconds"],
                            chunk=index,
                            tasks=meta["tasks"],
                            worker_pid=meta["pid"],
                        )
            return results
        finally:
            self._release_executor()

    def close(self) -> None:
        """Shut the pool down and release every leaked publication."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        # Release any publications the callers themselves never released
        # (pool first, segments second: workers detach before unlinking).
        with self._lock:
            leaked = list(self._published.values())
            self._published.clear()
            # Deferred grouped releases are still counted inside the
            # publication entries (their callers never decremented them),
            # so force-releasing every entry covers them too.
            leaked_grouped = list(self._published_grouped.values())
            self._published_grouped.clear()
            self._deferred_grouped.clear()
            self._pinned.clear()
        for ref, count in leaked:
            for _ in range(count):
                dataplane.release(ref)
        for ref, count in leaked_grouped:
            for _ in range(count):
                dataplane.release_grouped(ref)

    def __del__(self) -> None:
        # A pool left open at interpreter exit races the executor's own
        # teardown hooks (OSError: Bad file descriptor noise on 3.11+);
        # close defensively, but never let finalization errors escape.
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def _acquire_executor(self) -> ProcessPoolExecutor:
        """The current pool, with this map registered as in flight.

        Matched by :meth:`_release_executor` in a ``finally``.  When a
        fallback publication has obsoleted the pool, recreation waits for
        concurrent maps to drain first -- their tables predate the new
        publication, so finishing on the old pool is correct, while
        shutting it down under them would fail their submits.
        """
        with self._no_active_maps:
            generation = dataplane.fallback_generation()
            while (
                self._pool is not None
                and self._pool_generation != generation
                and self._active_maps > 0
            ):
                self._no_active_maps.wait()
                generation = dataplane.fallback_generation()
            if self._pool is not None and self._pool_generation != generation:
                # A table was published without a shared-memory segment
                # after this pool started; its workers predate the
                # publication and can never see it.  Recreate the pool so
                # the data travels once more -- publish once per pool,
                # never per chunk.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                context = _pick_context(self._start_method)
                if context.get_start_method() == "fork":
                    # Fork children inherit the parent registry for free.
                    payload = None
                else:
                    # Spawned workers get the registry-only tables through
                    # the initializer: pickled once here, shipped once per
                    # worker.
                    payload = dataplane.fallback_payload()
                self._pool = ProcessPoolExecutor(
                    max_workers=self._jobs,
                    mp_context=context,
                    initializer=dataplane.install_payload,
                    initargs=(payload,),
                )
                self._pool_generation = generation
            self._active_maps += 1
            return self._pool

    def _release_executor(self) -> None:
        with self._no_active_maps:
            self._active_maps -= 1
            if self._active_maps == 0:
                self._no_active_maps.notify_all()

    def __getstate__(self) -> dict[str, Any]:
        return {
            "jobs": self._jobs,
            "chunk_size": self._chunk_size,
            "min_tasks": self._min_tasks,
            "start_method": self._start_method,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            jobs=state["jobs"],
            chunk_size=state["chunk_size"],
            min_tasks=state["min_tasks"],
            start_method=state["start_method"],
        )
