"""Multi-process engine built on :class:`concurrent.futures.ProcessPoolExecutor`.

Tasks are shipped to workers in chunks (one pickle round-trip per chunk,
not per task) and results are gathered in submission order, so the output
is independent of worker scheduling.  The pool is created lazily on the
first parallel ``map`` and reused across calls -- process start-up costs
are paid once per engine, not once per test.

The engine is picklable: only its configuration travels (the pool is
dropped), so a task payload may safely contain an object that references a
``ParallelEngine``.  An unpickled copy starts with no pool and would lazily
create one; callers that fan out work containing engines should downgrade
them to :class:`~repro.engine.serial.SerialEngine` first (see
``CITest.spawn_worker``) to avoid nested pools.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.engine.base import ExecutionEngine, chunked, default_chunk_size


def _run_batch(fn: Callable, batch: list) -> list:
    """Worker-side driver: apply ``fn`` to one chunk of tasks."""
    return [fn(task) for task in batch]


def _pick_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork inherits the parent's modules and avoids re-importing numpy in
    # every worker; fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelEngine(ExecutionEngine):
    """Fans tasks out across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Fixed batch size per worker round-trip; by default a size is
        derived from the task count and ``jobs``.  Affects scheduling
        granularity only, never results.
    min_tasks:
        Task lists shorter than this run inline (the pool cannot pay for
        itself on one or two tasks).
    start_method:
        multiprocessing start method (``"fork"`` where available).
    """

    name = "parallel"

    def __init__(
        self,
        jobs: int | None = None,
        chunk_size: int | None = None,
        min_tasks: int = 2,
        start_method: str | None = None,
    ) -> None:
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {resolved}")
        if min_tasks < 0:
            raise ValueError(f"min_tasks must be >= 0, got {min_tasks}")
        self._jobs = int(resolved)
        self._chunk_size = chunk_size
        self._min_tasks = min_tasks
        self._start_method = start_method
        self._pool: ProcessPoolExecutor | None = None

    @property
    def jobs(self) -> int:
        return self._jobs

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        chunk_size: int | None = None,
    ) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._jobs <= 1 or len(tasks) < self._min_tasks:
            return [fn(task) for task in tasks]
        size = chunk_size or self._chunk_size or default_chunk_size(len(tasks), self._jobs)
        batches = chunked(tasks, size)
        futures = [self._executor().submit(_run_batch, fn, batch) for batch in batches]
        results: list = []
        for future in futures:  # submission order == task order
            results.extend(future.result())
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:
        # A pool left open at interpreter exit races the executor's own
        # teardown hooks (OSError: Bad file descriptor noise on 3.11+);
        # close defensively, but never let finalization errors escape.
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs, mp_context=_pick_context(self._start_method)
            )
        return self._pool

    def __getstate__(self) -> dict[str, Any]:
        return {
            "jobs": self._jobs,
            "chunk_size": self._chunk_size,
            "min_tasks": self._min_tasks,
            "start_method": self._start_method,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            jobs=state["jobs"],
            chunk_size=state["chunk_size"],
            min_tasks=state["min_tasks"],
            start_method=state["start_method"],
        )
