"""The shared seed-spawning discipline for engine tasks.

Reproducibility across engines and worker counts requires that every
stochastic task carries its own random stream, pre-assigned *before*
scheduling.  The discipline:

1. the owner of the parent :class:`numpy.random.Generator` draws one
   integer of entropy from it (:func:`draw_entropy`) -- this advances the
   parent stream exactly once per fan-out, regardless of how many tasks
   follow;
2. that entropy roots a :class:`numpy.random.SeedSequence` whose spawned
   children seed the tasks (:func:`spawn_seeds`), indexed by task position.

SeedSequence spawning guarantees statistically independent child streams
(unlike ``seed + i`` arithmetic), and because the assignment depends only
on the task index, results are bit-identical for any worker count.
"""

from __future__ import annotations

import numpy as np

#: Entropy draws are uniform over ``[0, 2**63)`` -- wide enough that root
#: collisions between fan-outs are negligible.
_ENTROPY_BOUND = 2**63


def draw_entropy(rng: np.random.Generator) -> int:
    """Draw one root-entropy integer from a parent generator."""
    return int(rng.integers(0, _ENTROPY_BOUND))


def spawn_seeds(
    entropy: int | np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seeds from one root entropy."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    root = (
        entropy
        if isinstance(entropy, np.random.SeedSequence)
        else np.random.SeedSequence(entropy)
    )
    return root.spawn(n)
