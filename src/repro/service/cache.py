"""The result cache: in-memory LRU plus an optional disk-backed layer.

Entries are the *canonical serialized bytes* of a response (see
``repro.core.report.canonical_json_bytes``), keyed by the request key of
:func:`repro.service.fingerprint.request_key`.  Storing bytes rather than
objects makes the warm path trivially byte-identical to the cold path and
keeps the disk layer a plain directory of ``<key>.json`` files that a
restarted service (or another process pointed at the same directory) can
reuse.

Writes to disk are atomic (temp file + rename) so a crashed writer never
leaves a truncated entry; a concurrent reader sees either the old file or
the new one.  Results are deterministic functions of their key, so two
processes racing to write the same key write identical bytes.

:class:`WarmKeyMap` is the *distributed* sibling: the shard router keeps
one, mapping request keys to the shard whose result cache already holds
the bytes, so duplicate requests route to the holder instead of
recomputing on whichever shard the ring would pick after a topology
change.  It stores locations, never payloads -- the bytes stay on the
shards.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.service import faults

#: CacheStats field -> metric family name (one counter per field).
_CACHE_METRICS = {
    "memory_hits": "repro_cache_memory_hits_total",
    "disk_hits": "repro_cache_disk_hits_total",
    "misses": "repro_cache_misses_total",
    "evictions": "repro_cache_evictions_total",
    "stores": "repro_cache_stores_total",
    "disk_errors": "repro_cache_disk_errors_total",
}


class CacheStats:
    """Counters across both cache levels.

    A view over six counter families in a
    :class:`~repro.obs.metrics.MetricsRegistry` -- the cache's owner
    (the :class:`~repro.service.core.AnalysisService`) passes its
    instance registry in so the samples appear on its ``GET /metrics``;
    a stand-alone :class:`ResultCache` gets a private registry.  Field
    reads/writes and ``as_dict()`` keep their pre-registry shapes
    exactly (pinned by ``tests/obs/test_stats_shapes.py``).
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters = {
            field: self.metrics.counter(
                name, f"Result cache: {field.replace('_', ' ')}."
            )
            for field, name in _CACHE_METRICS.items()
        }

    @property
    def hits(self) -> int:
        """Total hits across both levels (memory + disk)."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_ratio(self) -> float:
        """Hits over all lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counter snapshot (``/stats`` endpoint)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_errors": self.disk_errors,
            "hit_ratio": self.hit_ratio,
        }


def _cache_stat_property(field_name: str) -> property:
    """A registry-backed int property for one :class:`CacheStats` field."""

    def _get(self: CacheStats) -> int:
        return int(self._counters[field_name].value())

    def _set(self: CacheStats, value: int) -> None:
        self._counters[field_name].set(value)

    return property(_get, _set, doc=f"Registry view of {field_name} (int).")


for _field_name in _CACHE_METRICS:
    setattr(CacheStats, _field_name, _cache_stat_property(_field_name))


class ResultCache:
    """Two-level cache of canonical response bytes.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (least-recently-used entries are evicted
        once exceeded).  Evicted entries remain on disk when a disk layer
        is configured, so eviction costs a file read, not a recompute.
    disk_dir:
        Optional directory for the persistent layer; created if missing.
        ``None`` (default) keeps the cache memory-only.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` the stats
        counters live in (the owning service's instance registry);
        ``None`` gives this cache a private registry.
    """

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._disk_dir: Path | None = None
        if disk_dir is not None:
            self._disk_dir = Path(disk_dir)
            self._disk_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats(metrics)

    # ------------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The cached payload for ``key``, or ``None`` on a full miss.

        A disk hit is promoted into the memory layer on the way out.
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self.stats.memory_hits += 1
                return payload
        if self._disk_dir is not None:
            try:
                payload = (self._disk_dir / f"{key}.json").read_bytes()
            except OSError:
                payload = None
            if payload is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._store_in_memory(key, payload)
                return payload
        with self._lock:
            self.stats.misses += 1
        return None

    def peek(self, key: str) -> bytes | None:
        """Probe both layers without touching stats, LRU order, or promotion.

        Planning probes (the batch planner's warm-first ordering, the job
        manager's submit-time shortcut) use this so that *inspecting* the
        cache never skews the hit/miss counters or evicts entries the way
        a real read path would.
        """
        with self._lock:
            payload = self._entries.get(key)
        if payload is not None:
            return payload
        if self._disk_dir is not None:
            try:
                return (self._disk_dir / f"{key}.json").read_bytes()
            except OSError:
                return None
        return None

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` in memory and (when configured) on disk."""
        with self._lock:
            self._store_in_memory(key, payload)
            self.stats.stores += 1
        if self._disk_dir is not None:
            final = self._disk_dir / f"{key}.json"
            # pid + thread id: concurrent writers of the same key (two
            # threads racing the same cold request) get distinct temp
            # files, so neither os.replace can lose its source.
            temporary = self._disk_dir / (
                f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            try:
                # Fault site for the chaos tests: an `error` rule models a
                # torn/failed disk write (entry served from memory only).
                faults.crash_point("cache.disk_write", key=key)
                temporary.write_bytes(payload)
                os.replace(temporary, final)
            except OSError:
                # The disk layer degrades rather than failing the request:
                # the result is already served from memory.
                with self._lock:
                    self.stats.disk_errors += 1

    def on_disk(self, key: str) -> bool:
        """Whether ``key``'s bytes are durably in the disk layer.

        The journal's compaction probe: unlike :meth:`peek`, a memory
        hit does **not** count -- memory dies with the process, and
        compaction may only drop a ``finished`` record whose result
        would survive a restart.
        """
        if self._disk_dir is None:
            return False
        return (self._disk_dir / f"{key}.json").is_file()

    def keys(self) -> list[str]:
        """Every request key this cache can answer (memory + disk layer).

        The cluster tier's warm-key digest: a shard node reports these to
        the router over heartbeats, because the set of keys a node holds
        *is* the authoritative warm-routing state for that node.  Memory
        keys come first (most-recently-used last, matching LRU order);
        disk-only keys follow sorted, deduplicated.
        """
        with self._lock:
            in_memory = list(self._entries)
        if self._disk_dir is None:
            return in_memory
        seen = set(in_memory)
        try:
            on_disk = sorted(
                entry.name[: -len(".json")]
                for entry in self._disk_dir.glob("*.json")
            )
        except OSError:
            on_disk = []
        return in_memory + [key for key in on_disk if key not in seen]

    def clear(self) -> None:
        """Drop the memory layer (disk entries are kept; stats are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> dict[str, object]:
        """JSON-ready summary (``/stats`` endpoint)."""
        with self._lock:
            in_memory = len(self._entries)
        on_disk = (
            sum(1 for _ in self._disk_dir.glob("*.json"))
            if self._disk_dir is not None
            else None
        )
        return {
            "max_entries": self._max_entries,
            "in_memory": in_memory,
            "on_disk": on_disk,
            "disk_dir": str(self._disk_dir) if self._disk_dir is not None else None,
            **self.stats.as_dict(),
        }

    # ------------------------------------------------------------------

    def _store_in_memory(self, key: str, payload: bytes) -> None:
        """Insert under the lock, evicting the LRU tail past capacity."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1


class WarmKeyMap:
    """Bounded, thread-safe request-key -> holder-locations map (router tier).

    The shard router records which shard(s) served each request key
    (populated from shard responses, so an entry means "these shards hold
    -- or just computed -- these bytes").  Lookups steer duplicate
    requests to a holder; with dataset replication several replicas can
    hold the same key, so an entry is an ordered tuple of locations
    (first recorder first) and :meth:`holders` exposes all of them for
    the router's read balancing.  :meth:`drop_location` purges a dead
    shard from every entry so failover never routes to a corpse.
    Entries are ~100 B (short strings); the LRU bound only exists so an
    unbounded stream of distinct keys cannot grow the router without
    limit.  Evictions past the bound used to be silent; they are now
    counted in :attr:`evictions` (the router exposes the count as
    ``repro_router_warm_keys_evicted_total`` on ``GET /metrics``).
    """

    def __init__(self, max_entries: int = 131072) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        #: Entries silently dropped by the LRU bound (no-silent-caps).
        self.evictions = 0

    def get(self, key: str) -> str | None:
        """The first-recorded location holding ``key``'s bytes, or ``None``."""
        with self._lock:
            locations = self._entries.get(key)
            if locations is None:
                return None
            self._entries.move_to_end(key)
            return locations[0]

    def holders(self, key: str) -> tuple[str, ...]:
        """Every location recorded as holding ``key``'s bytes."""
        with self._lock:
            locations = self._entries.get(key)
            if locations is None:
                return ()
            self._entries.move_to_end(key)
            return locations

    def record(self, key: str, location: str) -> None:
        """Remember that ``location`` holds the bytes for ``key``."""
        with self._lock:
            locations = self._entries.get(key, ())
            if location not in locations:
                locations = (*locations, location)
            self._entries[key] = locations
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def drop_location(self, location: str) -> int:
        """Purge ``location`` from every entry; returns how many changed.

        Entries whose only holder was ``location`` are deleted; entries
        with surviving replicas just shrink (duplicates keep routing to
        the remaining holders -- the replicated-failover warm path).
        """
        with self._lock:
            changed = 0
            for key in list(self._entries):
                locations = self._entries[key]
                if location not in locations:
                    continue
                changed += 1
                remaining = tuple(where for where in locations if where != location)
                if remaining:
                    self._entries[key] = remaining
                else:
                    del self._entries[key]
            return changed

    def locations(self) -> set[str]:
        """Every distinct location referenced by some entry (test hook)."""
        with self._lock:
            return {where for entry in self._entries.values() for where in entry}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
