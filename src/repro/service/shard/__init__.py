"""Horizontal scale-out: a router tier over N shard worker processes.

Each shard is a full single-process analysis service (its own
:class:`~repro.service.registry.DatasetRegistry`, result cache, entropy
memos, and dataset plane) listening on its own port; the router owns the
public HTTP API, consistent-hashes dataset *content fingerprints* onto
the shard ring, and forwards requests over the same JSON-over-HTTP wire
a single-process deployment speaks.  Because results are deterministic
functions of (dataset content, spec, seed) and responses are spliced as
verbatim bytes, a sharded deployment answers byte-identically to a
single process -- sharding changes *where* bytes are computed and
cached, never *what* they are.

* :mod:`repro.service.shard.ring` -- the consistent-hash ring;
* :mod:`repro.service.shard.supervisor` -- spawns and health-checks the
  shard worker processes;
* :mod:`repro.service.shard.router` -- the routing HTTP tier with
  warm-key routing, shard-parallel batch fan-out, and failover
  re-registration;
* :mod:`repro.service.shard.cluster` -- remote nodes: the authenticated
  TCP join/heartbeat protocol, liveness timeouts, and the gossiped
  warm-key map, so shards can live on other machines.
"""

from repro.service.shard.cluster import (
    PROTOCOL_VERSION,
    BadTokenError,
    ClusteringDisabledError,
    ClusterMembership,
    ClusterRejection,
    GossipLog,
    NameConflictError,
    ProtocolMismatchError,
    ShardNode,
    UnknownMemberError,
    spawn_node,
)
from repro.service.shard.ring import HashRing
from repro.service.shard.router import ShardRouter, make_router_server
from repro.service.shard.supervisor import ShardBackend, ShardSupervisor

__all__ = [
    "PROTOCOL_VERSION",
    "BadTokenError",
    "ClusterMembership",
    "ClusterRejection",
    "ClusteringDisabledError",
    "GossipLog",
    "HashRing",
    "NameConflictError",
    "ProtocolMismatchError",
    "ShardBackend",
    "ShardNode",
    "ShardRouter",
    "ShardSupervisor",
    "UnknownMemberError",
    "make_router_server",
    "spawn_node",
]
