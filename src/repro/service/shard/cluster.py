"""Cluster membership: remote shard nodes behind a join/heartbeat protocol.

PRs 6-8 scaled the shard tier across *processes*: the supervisor spawns
workers and collects their ports over a ``Pipe``, which cannot cross a
machine boundary.  This module makes shards first-class *network* nodes:
a standalone worker (:class:`ShardNode`, the ``hypdb shard --join`` CLI)
boots a full :class:`~repro.service.core.AnalysisService`, binds its own
HTTP port, and registers itself with a running router over plain HTTP --
an authenticated ``POST /v2/cluster/join`` handshake carrying the node
name, advertised URL, protocol version, and shared token.  From the
router's perspective a remote node is just a :class:`~repro.service.
shard.supervisor.ShardBackend` without a process handle: the ring,
replication, failover, and job re-homing machinery work unchanged,
and every response stays byte-identical to the single-process oracle.

**Liveness** replaces the supervisor's process polling: nodes heartbeat
(``POST /v2/cluster/heartbeat``) on the interval the join response
advertises, and the router's reaper marks a node dead once its last
heartbeat is older than the liveness timeout -- feeding the existing
``mark_dead``/``rejoin`` failover paths, so a killed remote node fails
over exactly like a killed local worker.

**Gossiped warm keys**: each heartbeat carries a digest of the request
keys newly present in the node's own result cache -- warm state lives
where the bytes live, so a node's digest *is* the authoritative list of
keys it can answer warm.  The router merges digests into its warm-key
map and appends them to a bounded gossip log; heartbeat responses
piggyback log deltas past a caller-supplied cursor, so a peer router
can converge by heartbeating like a node.  The join/heartbeat response
carries the router's **epoch** (fresh per router process): when a node
sees the epoch change -- a restarted router, or a second router -- it
forgets what it already reported and re-sends its full digest, so the
new router converges to warm routing without replaying any traffic.

Handshake rejections are *typed*: a 403/409 body carrying a stable
``"code"`` (``bad_token``, ``protocol_mismatch``, ...) that
:class:`~repro.service.client.ClusterJoinError` surfaces client-side.
Auth failures are never retried -- the server answered, and the answer
will not change.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.obs.trace import TRACER
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.http import typed_error_bytes

#: The cluster wire-protocol version.  Bumped when the join/heartbeat
#: contract changes incompatibly; a mismatched node is rejected with a
#: typed 409 rather than admitted into a ring it would misroute.
PROTOCOL_VERSION = 1

#: Warm-key digest bound per heartbeat (both directions): keeps beats
#: cheap; a node with more new keys drains them over successive beats.
GOSSIP_KEYS_PER_BEAT = 512

#: Node names must be ring-safe and path-safe.
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


# ----------------------------------------------------------------------
# Typed handshake rejections
# ----------------------------------------------------------------------


class ClusterRejection(Exception):
    """Base of the typed join/heartbeat rejections.

    Each subclass pins an HTTP status and a stable machine-readable
    ``code`` so clients can distinguish "wrong credentials" from "wrong
    software version" without parsing prose.  None of these are ever
    retried client-side: the server answered, and the answer is
    deterministic.
    """

    status = 403
    code = "rejected"

    def body(self) -> bytes:
        """The canonical typed error body for this rejection."""
        return typed_error_bytes(str(self), self.code, **self.fields())

    def fields(self) -> dict[str, object]:
        """Extra machine-readable fields for the error body (none by default)."""
        return {}


class ClusteringDisabledError(ClusterRejection):
    """The router was started without a cluster token (403)."""

    status = 403
    code = "clustering_disabled"

    def __init__(self) -> None:
        super().__init__(
            "clustering is disabled on this router (start it with --cluster-token)"
        )


class BadTokenError(ClusterRejection):
    """The shared token did not match (403)."""

    status = 403
    code = "bad_token"

    def __init__(self) -> None:
        super().__init__("cluster token mismatch")


class ProtocolMismatchError(ClusterRejection):
    """The node speaks a different cluster protocol version (409)."""

    status = 409
    code = "protocol_mismatch"

    def __init__(self, got: object) -> None:
        super().__init__(
            f"cluster protocol mismatch: router speaks {PROTOCOL_VERSION}, "
            f"node sent {got!r}"
        )
        self.got = got

    def fields(self) -> dict[str, object]:
        """Expected and offered protocol versions, for typed clients."""
        return {"expected": PROTOCOL_VERSION, "got": self.got}


class NameConflictError(ClusterRejection):
    """Another *live* node already holds the requested name (409)."""

    status = 409
    code = "name_conflict"

    def __init__(self, node: str) -> None:
        super().__init__(f"a live shard already joined as {node!r}")
        self.node = node


class UnknownMemberError(ClusterRejection):
    """A heartbeat/leave from a node the router never admitted (409).

    The canonical cure is to re-join: a node seeing this code re-runs
    the join handshake (it usually means the router restarted and lost
    -- or never journaled -- the membership table).
    """

    status = 409
    code = "unknown_member"

    def __init__(self, node: object) -> None:
        super().__init__(f"unknown cluster member {node!r}; re-join first")
        self.node = node


# ----------------------------------------------------------------------
# Handshake request
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinRequest:
    """A validated ``POST /v2/cluster/join`` body."""

    node: str
    url: str
    protocol: object
    token: object

    @classmethod
    def from_body(cls, body: dict) -> "JoinRequest":
        """Validate a parsed join body (``ValueError`` -> plain 400).

        Only *shape* problems raise here (missing fields, unusable
        names/URLs) -- they are client bugs, not policy rejections.
        Token and protocol checks happen later and produce the typed
        403/409 bodies.
        """
        node = body.get("node")
        if not isinstance(node, str) or not node or len(node) > 64:
            raise ValueError("join requires a node name (1-64 characters)")
        if not set(node) <= _NAME_CHARS:
            raise ValueError(
                f"node name {node!r} may only contain letters, digits, '.', '_', '-'"
            )
        url = body.get("url")
        if not isinstance(url, str) or not url.startswith(("http://", "https://")):
            raise ValueError("join requires an advertised http(s):// url")
        return cls(
            node=node,
            url=url.rstrip("/"),
            protocol=body.get("protocol"),
            token=body.get("token"),
        )


# ----------------------------------------------------------------------
# Membership table
# ----------------------------------------------------------------------


@dataclass
class ClusterNode:
    """One admitted remote member: its address and heartbeat bookkeeping."""

    name: str
    url: str
    protocol: int = PROTOCOL_VERSION
    joined_at: float = field(default_factory=time.time)
    last_heartbeat: float = field(default_factory=time.time)
    heartbeats: int = 0


class ClusterMembership:
    """The router's table of remote members (name -> :class:`ClusterNode`).

    Tracks only nodes admitted through the join handshake -- locally
    spawned workers keep their supervisor lifecycle and never appear
    here.  Not internally locked: the router serializes every mutation
    under its own topology lock (membership changes and ring changes
    must be atomic together anyway).
    """

    def __init__(self) -> None:
        self._members: dict[str, ClusterNode] = {}

    def admit(self, name: str, url: str, protocol: int = PROTOCOL_VERSION) -> ClusterNode:
        """Add (or refresh) a member; the heartbeat clock restarts now."""
        node = ClusterNode(name=name, url=url, protocol=protocol)
        self._members[name] = node
        return node

    def get(self, name: object) -> ClusterNode | None:
        """The member named ``name``, or ``None``."""
        if not isinstance(name, str):
            return None
        return self._members.get(name)

    def beat(self, name: str) -> ClusterNode:
        """Record one heartbeat (raises :class:`UnknownMemberError`)."""
        node = self._members.get(name)
        if node is None:
            raise UnknownMemberError(name)
        node.last_heartbeat = time.time()
        node.heartbeats += 1
        return node

    def leave(self, name: str) -> ClusterNode:
        """Remove a member (raises :class:`UnknownMemberError`)."""
        node = self._members.pop(name, None)
        if node is None:
            raise UnknownMemberError(name)
        return node

    def stale(self, timeout: float, now: float | None = None) -> list[str]:
        """Members whose last heartbeat is older than ``timeout`` seconds."""
        moment = time.time() if now is None else now
        return [
            name
            for name, node in self._members.items()
            if moment - node.last_heartbeat > timeout
        ]

    def names(self) -> list[str]:
        """Every member name, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._members


# ----------------------------------------------------------------------
# Gossip log
# ----------------------------------------------------------------------


class GossipLog:
    """A bounded, sequence-numbered log of warm-key placements.

    Every warm-key recording the router makes is appended here; a peer
    (another router heartbeating with a ``cursor``) receives the events
    past its cursor and advances.  The log is a ring buffer: a cursor
    that has fallen off the retained window simply restarts from the
    oldest retained event -- warm-key entries are an *optimization*
    (a missed one costs a cold-but-byte-identical recompute), so gossip
    favors boundedness over completeness.  Node digests cover the rest:
    an epoch change makes every node re-send its full warm-key set.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._events: list[tuple[int, str, str]] = []
        self._next_seq = 0
        #: Events dropped off the ring-buffer window (no-silent-caps:
        #: the router exposes this as
        #: ``repro_router_gossip_log_evicted_total`` on ``GET /metrics``).
        self.evictions = 0

    def append(self, key: str, location: str) -> None:
        """Record that ``location`` now holds the bytes for ``key``."""
        with self._lock:
            self._events.append((self._next_seq, key, location))
            self._next_seq += 1
            if len(self._events) > self._max_entries:
                overflow = len(self._events) - self._max_entries
                del self._events[:overflow]
                self.evictions += overflow

    def since(
        self, cursor: int, limit: int = GOSSIP_KEYS_PER_BEAT
    ) -> tuple[list[dict[str, object]], int]:
        """Events past ``cursor`` (bounded) and the cursor to resume from."""
        with self._lock:
            start = 0
            if self._events and cursor > self._events[0][0]:
                # Binary-search-free scan is fine: deltas are short-lived
                # and the list is bounded.
                start = next(
                    (
                        index
                        for index, event in enumerate(self._events)
                        if event[0] >= cursor
                    ),
                    len(self._events),
                )
            window = self._events[start : start + max(0, limit)]
            events = [
                {"seq": seq, "key": key, "location": location}
                for seq, key, location in window
            ]
            next_cursor = window[-1][0] + 1 if window else max(cursor, 0)
            if not self._events:
                next_cursor = self._next_seq
            return events, next_cursor

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ----------------------------------------------------------------------
# The standalone worker
# ----------------------------------------------------------------------


class ShardNode:
    """One remote shard worker: a full service that joins a router over TCP.

    Lifecycle: :meth:`start` binds the worker's own HTTP server (and
    replays its job journal, exactly like a supervised worker),
    :meth:`join` runs the handshake against the router (retrying only
    *connection* failures until ``join_timeout`` -- a typed rejection
    raises immediately), after which a daemon thread heartbeats on the
    router-advertised interval, carrying warm-key digests.  A node that
    hears ``unknown_member`` (the router restarted without membership
    state) transparently re-joins; a node that sees a new router *epoch*
    re-sends its full warm-key digest so the new router converges to
    warm routing without traffic.

    Parameters mirror one supervised shard's slice of the ``serve``
    CLI; ``advertise`` overrides the URL sent to the router (for NAT or
    multi-interface hosts where the bind address is not the reachable
    one).
    """

    def __init__(
        self,
        router_url: str,
        token: str,
        name: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        advertise: str | None = None,
        jobs: int = 1,
        engine=None,
        cache_entries: int = 256,
        disk_cache: str | None = None,
        job_workers: int = 2,
        job_journal: str | None = None,
        heartbeat_interval: float | None = None,
        join_timeout: float = 60.0,
        trace_log: str | None = None,
    ) -> None:
        self.router_url = router_url.rstrip("/")
        self.token = token
        self.name = name
        self.host = host
        self._port = port
        self._advertise = advertise
        self._jobs = jobs
        self._engine = engine
        self._cache_entries = cache_entries
        self._disk_cache = disk_cache
        self._job_workers = job_workers
        self._job_journal = job_journal
        self.heartbeat_interval = heartbeat_interval
        self.join_timeout = join_timeout
        self._trace_log = trace_log
        self.service = None
        self.server = None
        self.url: str | None = None
        self.epoch: str | None = None
        self.rejoins = 0
        self._client: ServiceClient | None = None
        self._reported: set[str] = set()
        self._stop = threading.Event()
        self._beat_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> str:
        """Boot the worker service and HTTP server; returns the node URL."""
        from repro.engine import resolve_engine
        from repro.service.core import AnalysisService
        from repro.service.http import make_server

        engine = self._engine if self._engine is not None else resolve_engine(self._jobs)
        self.service = AnalysisService(
            engine=engine,
            max_cache_entries=self._cache_entries,
            disk_cache=self._disk_cache,
            job_workers=self._job_workers,
            job_journal=self._job_journal,
        )
        self.server = make_server(self.service, host=self.host, port=self._port)
        if self._job_journal is not None:
            # Replay before the node is reachable through the router, so
            # the cluster never routes to a shard mid-recovery.
            self.service.recover_jobs()
        self._port = self.server.server_address[1]
        if self.name is None:
            self.name = f"node{self._port}"
        self.url = (
            self._advertise.rstrip("/")
            if self._advertise is not None
            else f"http://{self.host}:{self._port}"
        )
        # Name this process's traces like faults.set_scope names its
        # crash sites; the JSONL log (if any) lands in the shared dir
        # under trace-<scope>-<pid>.jsonl.
        TRACER.configure(log_dir=self._trace_log, scope=self.name)
        return self.url

    @property
    def port(self) -> int:
        """The bound HTTP port (0 until :meth:`start`)."""
        return self._port

    def join(self) -> dict:
        """Run the join handshake; starts the heartbeat loop on success.

        Connection failures (the router is not up yet -- the normal
        boot-order race of a two-machine deployment) retry with a short
        pause until ``join_timeout``.  A typed rejection
        (:class:`~repro.service.client.ClusterJoinError`) raises
        immediately and is never retried.
        """
        if self.url is None:
            raise RuntimeError("call start() before join()")
        self._client = ServiceClient(self.router_url, timeout=30.0, retries=0)
        deadline = time.monotonic() + self.join_timeout
        while True:
            try:
                response = self._client.join_cluster(
                    node=self.name, url=self.url, token=self.token
                )
                break
            except ServiceConnectionError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)
        self.epoch = response.get("epoch")
        if self.heartbeat_interval is None:
            advertised = response.get("heartbeat_interval")
            self.heartbeat_interval = (
                float(advertised) if isinstance(advertised, (int, float)) else 1.0
            )
        self._reported = set()
        if self._beat_thread is None or not self._beat_thread.is_alive():
            self._beat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"hypdb-node-{self.name}-heartbeat",
                daemon=True,
            )
            self._beat_thread.start()
        return response

    def serve_forever(self) -> None:
        """Serve requests until :meth:`close` (or KeyboardInterrupt)."""
        self.server.serve_forever()

    def leave(self) -> None:
        """Best-effort graceful leave (the reaper covers the crash path)."""
        if self._client is None:
            return
        try:
            self._client.cluster_leave(node=self.name, token=self.token)
        except (ServiceError, OSError):
            pass

    def close(self) -> None:
        """Stop heartbeating and shut the worker service down."""
        self._stop.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5)
            self._beat_thread = None
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
            self.server = None
        if self.service is not None:
            self.service.close()
            self.service = None

    # -- heartbeats ----------------------------------------------------

    def _pending_digest(self) -> list[str]:
        """Warm keys in this node's result cache not yet acked (bounded)."""
        keys = self.service.cache.keys() if self.service is not None else []
        fresh = [key for key in keys if key not in self._reported]
        return fresh[:GOSSIP_KEYS_PER_BEAT]

    def beat(self) -> dict:
        """One heartbeat round-trip, carrying a warm-key digest.

        An epoch change in the response means a different router process
        answered (restart, or a peer): everything previously reported
        went to the *old* epoch, so the reported set resets to just this
        beat's digest and the backlog re-sends over following beats.
        """
        digest = self._pending_digest()
        response = self._client.cluster_heartbeat(
            node=self.name, token=self.token, keys=digest
        )
        epoch = response.get("epoch")
        if epoch != self.epoch:
            self.epoch = epoch
            self._reported = set(digest)
        else:
            self._reported.update(digest)
        return response

    def _heartbeat_loop(self) -> None:
        """Daemon loop: beat, re-join on ``unknown_member``, never crash."""
        interval = self.heartbeat_interval or 1.0
        while not self._stop.wait(interval):
            try:
                self.beat()
            except ServiceError as error:
                code = (error.payload or {}).get("code")
                if code == UnknownMemberError.code:
                    # The router restarted without membership state (or a
                    # peer answered): run the handshake again.
                    try:
                        self._client.join_cluster(
                            node=self.name, url=self.url, token=self.token
                        )
                        self._reported = set()
                        self.rejoins += 1
                    except ServiceError:
                        continue
                # Anything else (router briefly down, auth flap during a
                # rolling restart): keep beating -- the next beat answers
                # or the operator intervenes.
            except OSError:  # pragma: no cover - transient socket noise
                continue


def _node_main(
    connection,
    router_url: str,
    token: str,
    name: str | None,
    host: str,
    jobs: int,
    cache_entries: int,
    disk_cache: str | None,
    job_workers: int,
    job_journal: str | None,
    heartbeat_interval: float | None,
    trace_log: str | None = None,
) -> None:  # pragma: no cover - runs in a child process
    """Spawn entry point for one remote node (tests and benchmarks).

    Mirrors ``supervisor._shard_main`` but joins over TCP instead of
    reporting a port over the pipe: the pipe only signals readiness
    (the bound port) back to the spawner *after* the join succeeded.
    """
    from repro.service import faults

    node = ShardNode(
        router_url,
        token,
        name=name,
        host=host,
        jobs=jobs,
        cache_entries=cache_entries,
        disk_cache=disk_cache,
        job_workers=job_workers,
        job_journal=job_journal,
        heartbeat_interval=heartbeat_interval,
        trace_log=trace_log,
    )
    node.start()
    faults.set_scope(node.name)
    node.join()
    connection.send(node.port)
    connection.close()
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        node.leave()
        node.close()


def spawn_node(
    router_url: str,
    token: str,
    name: str | None = None,
    host: str = "127.0.0.1",
    jobs: int = 1,
    cache_entries: int = 256,
    disk_cache: str | None = None,
    job_workers: int = 2,
    job_journal: str | None = None,
    heartbeat_interval: float | None = None,
    start_timeout: float = 120.0,
    trace_log: str | None = None,
):
    """Start one remote node in a fresh process; returns ``(process, url)``.

    The child boots, joins the router, then reports its port -- so a
    returned process is already a live, admitted cluster member.  Used
    by tests and benchmarks; the CLI path (``hypdb shard``) runs
    :class:`ShardNode` in the foreground instead.
    """
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    parent_end, child_end = context.Pipe(duplex=False)
    journal = os.path.join(job_journal, name) if job_journal and name else job_journal
    process = context.Process(
        target=_node_main,
        args=(
            child_end,
            router_url,
            token,
            name,
            host,
            jobs,
            cache_entries,
            disk_cache,
            job_workers,
            journal,
            heartbeat_interval,
            trace_log,
        ),
        name=f"hypdb-node-{name or 'anon'}",
        daemon=True,
    )
    process.start()
    child_end.close()
    if not parent_end.poll(start_timeout):
        process.terminate()
        raise TimeoutError(
            f"remote node {name!r} did not join within {start_timeout}s"
        )
    port = parent_end.recv()
    parent_end.close()
    return process, f"http://{host}:{port}"
