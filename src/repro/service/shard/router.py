"""The shard router: one public HTTP API over N shard worker processes.

The router owns the v1 + v2 surface of :mod:`repro.service.http` and
*forwards* rather than computes: every read request is keyed by its
dataset's content fingerprint, consistent-hashed onto the shard ring,
and proxied over the same JSON-over-HTTP wire a single-process
deployment speaks (through :meth:`ServiceClient.request_bytes`, so shard
response payloads are spliced **byte-for-byte**, never re-serialized).
Results are deterministic functions of (dataset content, spec, seed), so
a sharded deployment answers byte-identically to a single process --
sharding moves *where* bytes are computed and cached, never *what* they
are.

Routing layers, in lookup order:

1. **warm-key map** -- the router records which shard served each request
   key; duplicates route to the shard already holding the bytes (a cache
   hit there) even when ring topology has shifted since;
2. **hash ring** -- cold keys go to the fingerprint's ring owner, where
   the dataset's tables, entropy memos, and dataset plane are warm;
3. **fallback** -- requests whose dataset (or shape) the router cannot
   resolve are forwarded to the first live shard verbatim, which
   produces the byte-identical error the single process would.

Replication (``replicas=K``, default 1): ``/register`` bodies are
replayed verbatim to the dataset's ring owner **and its K-1 distinct
ring successors**, so K shards hold every dataset.  Cold reads still
route to the owner (whose caches warm first), but *warm* reads --
request keys the router has seen answered -- round-robin across the
dataset's live replicas, so a hot dataset's read throughput scales with
K instead of pinning one process.  A replica serving a key for the
first time computes it cold (same bytes -- results are deterministic);
from then on the key is warm there too.  ``K=1`` is byte-identical to
the unreplicated router.

Failover: when a shard stops answering, the router removes it from the
ring and purges its warm keys.  Datasets that still have live replicas
keep answering *warm* from them -- no re-registration, no recompute
window -- and the router re-replicates them onto the next distinct ring
successors in the background to restore the K target.  Only a dataset
whose every replica died is re-registered synchronously (inside the
topology lock, so no request routes by a ring the replicas have not
caught up to) on its successor, which recomputes cold -- the K=1
behavior.

**Jobs survive their shard.**  The router journals the verbatim submit
body behind every job id it hands out, so when a shard dies its
unfinished jobs are *re-submitted* to the dataset's surviving replica
(warm -- zero recompute at ``K > 1``) or its ring successor (cold --
byte-identical recompute).  ``GET /v2/jobs/<id>`` transparently follows
the job to its new home: the public id never changes, because the
router keeps an id -> (shard, shard-local id) table and rewrites
snapshots on the way out.  Even a job the shard has *pruned* (or a
terminal job lost with its shard's memory) is lazily resurrected from
its recorded spec on the next read -- results are deterministic, so the
resurrected bytes match the originals.  Supervisor healing hands
respawned workers back through :meth:`ShardRouter.rejoin`, which
re-adds them to the ring and lets background re-replication rebuild K.

Job ids are namespaced ``<shard>.<local id>`` (e.g. ``s0.j00000001``);
the namespace is the *birthplace*, the routed-job table tracks the
current home after failover.

**Remote nodes** (``cluster_token=...``): shards need not be spawned
locally -- a standalone worker (``hypdb shard --join``) registers itself
over the authenticated ``POST /v2/cluster/join`` handshake and becomes a
backend with no process handle.  Liveness comes from heartbeats (the
reaper marks a silent node dead past ``liveness_timeout``, feeding the
same ``mark_dead``/``rejoin`` failover), and heartbeats gossip warm-key
digests both ways, so a restarted router (or a peer) converges back to
warm routing without replaying traffic.  See
:mod:`repro.service.shard.cluster`.

**Durability** (``journal=RouterJournal(...)``): membership, dataset
registrations, and the routed-job id table are journaled with the
:class:`~repro.service.journal.JobJournal` discipline, so a restarted
router resolves every public job id it ever handed out.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from urllib.parse import parse_qs, urlencode

from repro.core.report import canonical_json_bytes
from repro.obs.metrics import (
    GLOBAL_REGISTRY,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    merge_expositions,
    render_many,
)
from repro.obs.trace import TRACER
from repro.service.cache import WarmKeyMap
from repro.service.client import ServiceClient, ServiceConnectionError
from repro.service.core import build_table
from repro.service.fingerprint import fingerprint_table
from repro.service.http import (
    _V1_SPECS,
    JSONRequestHandler,
    _message,
    parse_json_body,
    v1_deprecation_headers,
)
from repro.service.journal import RouterJournal
from repro.service.shard.cluster import (
    GOSSIP_KEYS_PER_BEAT,
    PROTOCOL_VERSION,
    BadTokenError,
    ClusteringDisabledError,
    ClusterMembership,
    ClusterRejection,
    GossipLog,
    JoinRequest,
    NameConflictError,
    ProtocolMismatchError,
    UnknownMemberError,
)
from repro.service.shard.ring import HashRing
from repro.service.shard.supervisor import ShardBackend
from repro.service.spec import SPEC_TYPES, spec_from_dict


class NoLiveShardsError(RuntimeError):
    """Every shard is dead; the router cannot serve (HTTP 503)."""


#: ``Retry-After`` seconds advertised on 503 responses.  With ``--heal``
#: the supervisor respawns dead workers on its poll interval (default
#: 1s), so "come back in a second" is honest advice, and the Python
#: client honors it (bounded) before its normal backoff.
RETRY_AFTER_SECONDS = 1


@dataclass
class RegisteredDataset:
    """The router's registration record for one dataset.

    Holds everything failover needs to re-register the dataset on a
    successor shard: the verbatim registration body plus the catalog
    fields (``/v2/datasets`` is answered from these records, so the
    catalog survives shard deaths).

    ``locations`` is the dataset's live placement, primary first.  Two
    records for the same *content* (an alias registered under a second
    name) share one placement list object, so failover pruning and
    re-replication keep every alias consistent by construction.
    """

    name: str
    fingerprint: str
    columns: tuple[str, ...]
    n_rows: int
    body: bytes  # the verbatim /register request body
    locations: list[str]  # live shards holding the dataset, primary first

    @property
    def location(self) -> str:
        """The primary replica (cold reads route here)."""
        return self.locations[0]


@dataclass
class RoutedJob:
    """The router's record of one submitted async job.

    The verbatim submit body is the job's resurrection recipe: if the
    home shard dies (or prunes the job), the body is re-submitted to a
    live shard and the public id re-pointed at the new home.  Results
    are deterministic functions of (dataset content, spec, seed), so a
    resurrected job's bytes match the original's.
    """

    public_id: str
    body: bytes  # the verbatim /v2/jobs request body
    fingerprint: str | None
    key: str | None
    shard: str  # current home shard
    local_id: str  # the home shard's local job id
    terminal: bool = False  # last observed snapshot was done/error/cancelled


class ShardRouter:
    """Route requests across shard backends by dataset fingerprint.

    Parameters
    ----------
    backends:
        The shard workers (usually from
        :meth:`~repro.service.shard.supervisor.ShardSupervisor.start`).
    replicas:
        Copies of each dataset to keep (``K``).  ``1`` (default) is the
        unreplicated PR-6 behavior, byte-identical; ``K > 1`` replays
        every register body to the ring owner plus its ``K-1`` distinct
        ring successors and round-robins warm reads across them.  Capped
        by the backend count.
    client_timeout:
        Socket timeout of the per-shard forwarding clients; generous, as
        cold analyses compute the full pipeline.
    cluster_token:
        Shared secret enabling the ``/v2/cluster/*`` endpoints: remote
        shard nodes join, heartbeat, and leave with it.  ``None``
        (default) rejects every cluster call with a typed 403, and the
        router may then start with zero backends only if a journal can
        repopulate it.  With a token, ``backends`` may be empty -- the
        router answers 503 (``Retry-After``) until the first node joins.
    journal:
        Optional :class:`~repro.service.journal.RouterJournal`: replayed
        on construction (members re-admitted, catalog and routed-job
        table rebuilt) and appended to on every membership, registration,
        and job-table change.
    heartbeat_interval:
        Seconds between node heartbeats, advertised in join responses.
    liveness_timeout:
        Seconds of heartbeat silence before the reaper marks a remote
        node dead (the ``mark_dead`` failover path).  Local supervised
        backends keep their process-poll liveness instead.
    """

    #: Routed-job table bound; oldest *terminal* entries are evicted
    #: first (an evicted id falls back to the namespace-prefix route,
    #: the pre-durability behavior).
    MAX_ROUTED_JOBS = 65536

    def __init__(
        self,
        backends: list[ShardBackend],
        replicas: int = 1,
        client_timeout: float = 600.0,
        warm_map_entries: int = 131072,
        cluster_token: str | None = None,
        journal: RouterJournal | None = None,
        heartbeat_interval: float = 1.0,
        liveness_timeout: float = 5.0,
    ) -> None:
        if not backends and cluster_token is None and journal is None:
            raise ValueError("at least one shard backend is required")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if backends and replicas > len(backends) and cluster_token is None:
            raise ValueError(
                f"replicas must be <= the shard count, got {replicas} > {len(backends)}"
            )
        self._backends = {backend.name: backend for backend in backends}
        if len(self._backends) != len(backends):
            raise ValueError("shard backend names must be unique")
        self._client_timeout = client_timeout
        self._clients = {
            backend.name: ServiceClient(backend.url, timeout=client_timeout)
            for backend in backends
        }
        self.replicas = replicas
        self.ring = HashRing([backend.name for backend in backends])
        self.warm_keys = WarmKeyMap(max_entries=warm_map_entries)
        self._registrations: dict[str, RegisteredDataset] = {}
        self._by_fingerprint: dict[str, RegisteredDataset] = {}
        # Reentrant: mark_dead() re-registers orphans under the lock and
        # may recurse when a successor is dead too.
        self._lock = threading.RLock()
        self.started_at = time.time()
        self._requests = 0
        self._warm_hits = 0
        self._v1_requests = 0
        self._failovers = 0
        # Replication state: per-fingerprint round-robin cursors for warm
        # read balancing, plus the background re-replication worker that
        # restores the K target after a shard death.
        self._read_cursors: dict[str, int] = {}
        self._replica_reads = 0
        self._rereplications = 0
        self._restore_failed: set[tuple[str, str]] = set()
        self._restore_thread: threading.Thread | None = None
        # Durable-job state: public id -> RoutedJob (insertion-ordered,
        # bounded), plus the reverse (shard, local id) -> public id map
        # used to rewrite coalesced_into references and listings.
        self._jobs: dict[str, RoutedJob] = {}
        self._job_homes: dict[tuple[str, str], str] = {}
        self._job_failovers = 0
        self._rejoins = 0
        #: Routed jobs silently evicted past MAX_ROUTED_JOBS and gossip
        #: digest keys dropped past GOSSIP_KEYS_PER_BEAT (no-silent-caps:
        #: both bounds are visible on ``GET /metrics``, never ``/stats``
        #: -- its shape stays pinned).
        self._jobs_evicted = 0
        self._gossip_keys_dropped = 0
        # Cluster state: the shared token gating /v2/cluster/*, the
        # remote-member table, the gossip log of warm-key placements,
        # and a fresh epoch per router process (nodes re-send their full
        # warm-key digest when they see it change).
        self.cluster_token = cluster_token
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.cluster_epoch = f"{os.getpid():x}-{time.time_ns():x}"
        self._membership = ClusterMembership()
        self._gossip = GossipLog()
        self._joins = 0
        self._join_rejects = 0
        self._heartbeats = 0
        self._closed = threading.Event()
        self._reaper: threading.Thread | None = None
        self._journal = journal
        self.metrics = MetricsRegistry()
        self._register_metrics()
        if journal is not None:
            self._recover_from_journal(journal)
        if cluster_token is not None:
            self._start_reaper()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        """Expose the router counters on ``GET /metrics``.

        Callback-backed views over the plain ints this router mutates
        under its own lock at ~30 sites (and that tests read directly,
        e.g. ``router._warm_hits``) -- no double bookkeeping, and the
        ``/stats`` shape stays byte-compatible.
        """
        counters = {
            "repro_router_requests_total": ("requests forwarded", "_requests"),
            "repro_router_warm_hits_total": ("warm-key routing hits", "_warm_hits"),
            "repro_router_v1_requests_total": (
                "requests through the deprecated v1 surface",
                "_v1_requests",
            ),
            "repro_router_failovers_total": ("shards marked dead", "_failovers"),
            "repro_router_replica_reads_total": (
                "warm reads balanced across replicas",
                "_replica_reads",
            ),
            "repro_router_rereplications_total": (
                "background replica restores",
                "_rereplications",
            ),
            "repro_router_job_failovers_total": (
                "jobs re-homed off dead shards",
                "_job_failovers",
            ),
            "repro_router_rejoins_total": ("shards re-admitted", "_rejoins"),
            "repro_router_joins_total": ("cluster joins accepted", "_joins"),
            "repro_router_join_rejects_total": (
                "cluster joins rejected",
                "_join_rejects",
            ),
            "repro_router_heartbeats_total": (
                "cluster heartbeats received",
                "_heartbeats",
            ),
            "repro_router_jobs_evicted_total": (
                "routed jobs evicted past MAX_ROUTED_JOBS",
                "_jobs_evicted",
            ),
            "repro_router_gossip_keys_dropped_total": (
                "heartbeat digest keys dropped past GOSSIP_KEYS_PER_BEAT",
                "_gossip_keys_dropped",
            ),
        }
        for name, (help_text, attribute) in counters.items():
            self.metrics.counter(
                name,
                f"Shard router: {help_text}.",
                callback=(
                    lambda attribute=attribute: float(getattr(self, attribute))
                ),
            )
        self.metrics.counter(
            "repro_router_warm_keys_evicted_total",
            "Shard router: warm-key map entries evicted by the LRU bound.",
            callback=lambda: float(self.warm_keys.evictions),
        )
        self.metrics.counter(
            "repro_router_gossip_log_evicted_total",
            "Shard router: gossip log events evicted by the ring bound.",
            callback=lambda: float(self._gossip.evictions),
        )
        gauges = {
            "repro_router_uptime_seconds": (
                "seconds since the router started",
                lambda: time.time() - self.started_at,
            ),
            "repro_router_shards": (
                "known shard backends (live + dead)",
                lambda: float(len(self._backends)),
            ),
            "repro_router_live_shards": (
                "shards currently on the ring",
                lambda: float(len(self.ring)),
            ),
            "repro_router_warm_keys": (
                "entries in the warm-key map",
                lambda: float(len(self.warm_keys)),
            ),
            "repro_router_datasets": (
                "registered datasets",
                lambda: float(len(self._registrations)),
            ),
            "repro_router_routed_jobs": (
                "entries in the routed-job table",
                lambda: float(len(self._jobs)),
            ),
        }
        for name, (help_text, callback) in gauges.items():
            self.metrics.gauge(name, f"Shard router: {help_text}.", callback=callback)

    def handle_metrics(self) -> tuple[int, bytes]:
        """``GET /metrics``: the router's exposition plus live shard scrapes.

        The router's own families pass through untagged; each live
        shard's scraped exposition is merged in with a ``shard="name"``
        label, so one scrape covers the whole deployment.  Dead or
        unreachable shards are skipped (scraping must never trip
        failover or block on a corpse).
        """
        parts: list[tuple[str | None, str]] = [
            (None, render_many([self.metrics, GLOBAL_REGISTRY]))
        ]
        for name in sorted(self._backends):
            backend = self._backends[name]
            if backend.dead:
                continue
            try:
                status, payload = self._clients[name].request_bytes(
                    "/metrics", timeout=10.0
                )
            except ServiceConnectionError:
                continue
            if status == 200:
                parts.append((name, payload.decode("utf-8")))
        return 200, merge_expositions(parts).encode("utf-8")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def mark_dead(self, backend: ShardBackend) -> None:
        """Retire a dead shard: ring removal, warm-key purge, failover.

        Idempotent and thread-safe (the supervisor's watch thread and any
        request thread hitting a connection failure may race here).  The
        dead shard is pruned from every dataset's placement; a dataset
        with surviving replicas keeps answering from them immediately (no
        recompute window) and is topped back up to K by the background
        re-replication worker.  Only a dataset whose *every* replica died
        is re-registered on its successor ring node *while the topology
        lock is held*, so no request routes by the new ring before the
        successor actually holds the data -- failover briefly blocks
        routing decisions, never correctness.
        """
        with self._lock:
            if backend.dead:
                return
            backend.dead = True
            self.ring.remove(backend.name)
            self._failovers += 1
            self.warm_keys.drop_location(backend.name)
            under_replicated = False
            pruned: set[int] = set()  # placement lists are shared by aliases
            for record in self._registrations.values():
                if id(record.locations) in pruned:
                    continue
                pruned.add(id(record.locations))
                if backend.name not in record.locations:
                    continue
                record.locations.remove(backend.name)
                if not record.locations:
                    # Total loss: synchronous in-lock re-registration (the
                    # K=1 path) -- the successor recomputes cold.
                    self._reregister(record)
                if len(record.locations) < self.replicas:
                    under_replicated = True
            # Re-home the dead shard's unfinished jobs right away (the
            # dataset placements above are already consistent, so the
            # re-submission lands on a live replica or ring successor).
            # Terminal jobs are left for the lazy read-path resurrection:
            # most are never read again.
            for entry in list(self._jobs.values()):
                if entry.shard != backend.name or entry.terminal:
                    continue
                try:
                    self._failover_job_locked(entry)
                except NoLiveShardsError:
                    break
            if under_replicated and len(self.ring):
                self._start_restore_locked()

    def rejoin(self, backend: ShardBackend) -> None:
        """Re-admit a healed (respawned) shard to the ring.

        The supervisor's heal loop calls this after :meth:`~repro.
        service.shard.supervisor.ShardSupervisor.respawn` brings a dead
        worker back under the same name on a fresh port.  Under the
        topology lock: a fresh forwarding client is built (the URL
        changed), the ``dead`` flag clears, the name returns to the
        ring, stale restore-failure marks for the node are forgotten
        (it is a fresh process), datasets with *no* live replica are
        re-registered synchronously, unfinished jobs still homed on
        dead shards are re-submitted, and the background worker is
        kicked to rebuild the K target.
        """
        with self._lock:
            if not backend.dead:
                return
            self._clients[backend.name] = ServiceClient(
                backend.url, timeout=self._client_timeout
            )
            backend.dead = False
            self.ring.add(backend.name)
            self._rejoins += 1
            self._restore_failed = {
                pair for pair in self._restore_failed if pair[1] != backend.name
            }
            recovered: set[int] = set()
            for record in self._registrations.values():
                if id(record.locations) in recovered:
                    continue
                recovered.add(id(record.locations))
                if not any(
                    not self._backends[name].dead for name in record.locations
                ):
                    # Every replica died while no shard was available to
                    # take over: the rejoined worker adopts the dataset.
                    self._reregister(record)
            for entry in list(self._jobs.values()):
                home = self._backends.get(entry.shard)
                if entry.terminal or (home is not None and not home.dead):
                    continue
                try:
                    self._failover_job_locked(entry)
                except NoLiveShardsError:  # pragma: no cover - defensive
                    break
            self._start_restore_locked()

    # ------------------------------------------------------------------
    # Cluster membership (remote nodes)
    # ------------------------------------------------------------------

    def _authenticate(self, token: object) -> None:
        """Check the shared cluster token (typed 403s on failure)."""
        if self.cluster_token is None:
            raise ClusteringDisabledError()
        if not isinstance(token, str) or not hmac.compare_digest(
            token, self.cluster_token
        ):
            raise BadTokenError()

    def _admit_locked(self, name: str, url: str) -> ShardBackend:
        """Admit (or re-admit) one remote node under the topology lock.

        A fresh name becomes a process-less :class:`ShardBackend` on the
        ring; a dead name rejoining (crash-restart, possibly on a new
        URL) goes through the standard :meth:`rejoin` repair; a live
        name re-joining from the *same* URL is idempotent (a node that
        restarted fast -- before the reaper noticed -- re-handshakes;
        results are deterministic, so its cold caches only cost time);
        a live name from a *different* URL is a typed 409 conflict.
        """
        backend = self._backends.get(name)
        if backend is None:
            backend = ShardBackend(name=name, url=url, process=None)
            self._backends[name] = backend
            self._clients[name] = ServiceClient(url, timeout=self._client_timeout)
            self.ring.add(name)
            self._membership.admit(name, url)
            if self._journal is not None:
                self._journal.record_member(name, url)
            self._adopt_orphans_locked()
            self._start_restore_locked()
            return backend
        if backend.dead:
            backend.url = url
            self._membership.admit(name, url)
            if self._journal is not None:
                self._journal.record_member(name, url)
            self.rejoin(backend)
            return backend
        if backend.url == url:
            self._membership.admit(name, url)
            return backend
        raise NameConflictError(name)

    def _adopt_orphans_locked(self) -> None:
        """Hand all-replicas-dead datasets and homeless jobs to live shards.

        The fresh-admit sibling of the loops inside :meth:`rejoin`: a
        node joining an otherwise-dead (or empty-but-journaled) ring
        adopts every dataset with no live replica and every unfinished
        job homed on a dead or unknown shard.
        """
        adopted: set[int] = set()
        for record in self._registrations.values():
            if id(record.locations) in adopted:
                continue
            adopted.add(id(record.locations))
            if not any(
                name in self._backends and not self._backends[name].dead
                for name in record.locations
            ):
                self._reregister(record)
        for entry in list(self._jobs.values()):
            home = self._backends.get(entry.shard)
            if entry.terminal or (home is not None and not home.dead):
                continue
            try:
                self._failover_job_locked(entry)
            except NoLiveShardsError:  # pragma: no cover - defensive
                break

    def _recover_from_journal(self, journal: RouterJournal) -> None:
        """Rebuild members, catalog, and the job id-table from the journal.

        Members come back with a fresh heartbeat clock (a grace window:
        the reaper only marks them dead ``liveness_timeout`` after
        *this* process started, by which point a live node has beaten --
        and re-joined, since this process's epoch differs).  Dataset
        records rebuild the catalog byte-identically (verbatim bodies,
        shared placement lists per fingerprint); routed jobs resolve
        their public ids again, with reads lazily resurrecting anything
        the home shard forgot.
        """
        state = journal.replay()
        with self._lock:
            for node, url in state.members.items():
                if node in self._backends:
                    continue
                backend = ShardBackend(name=node, url=url, process=None)
                self._backends[node] = backend
                self._clients[node] = ServiceClient(
                    url, timeout=self._client_timeout
                )
                self.ring.add(node)
                self._membership.admit(node, url)
            for record in state.datasets.values():
                locations = [
                    name
                    for name in record.get("locations", [])
                    if isinstance(name, str) and name in self._backends
                ]
                fingerprint = record.get("fingerprint")
                existing = (
                    self._by_fingerprint.get(fingerprint)
                    if isinstance(fingerprint, str)
                    else None
                )
                if existing is not None:
                    # Alias of already-recovered content: share the
                    # placement list, like the live register path.
                    locations = existing.locations
                registration = RegisteredDataset(
                    name=record["name"],
                    fingerprint=fingerprint,
                    columns=tuple(record.get("columns", [])),
                    n_rows=record.get("n_rows", 0),
                    body=record["body"].encode("utf-8"),
                    locations=locations,
                )
                self._registrations[registration.name] = registration
                if isinstance(fingerprint, str) and existing is None:
                    self._by_fingerprint[fingerprint] = registration
            for public_id, record in state.jobs.items():
                entry = RoutedJob(
                    public_id=public_id,
                    body=record["body"].encode("utf-8"),
                    fingerprint=record.get("fingerprint"),
                    key=record.get("key"),
                    shard=record.get("shard", ""),
                    local_id=record.get("local_id", ""),
                    terminal=record.get("terminal", False),
                )
                self._jobs[public_id] = entry
                self._job_homes[(entry.shard, entry.local_id)] = public_id
            self._prune_jobs_locked()

    def handle_cluster_join(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /v2/cluster/join``: the authenticated node handshake.

        Shape errors are plain 400s; policy rejections (bad token,
        protocol mismatch, live-name conflict) are typed 403/409 bodies
        carrying a stable ``code``.  Success admits the node into the
        ring and answers with the router epoch, the advertised heartbeat
        interval and liveness timeout, and the live shard list.
        """
        body = parse_json_body(raw)
        try:
            request = JoinRequest.from_body(body)
            self._authenticate(request.token)
            if request.protocol != PROTOCOL_VERSION:
                raise ProtocolMismatchError(request.protocol)
            with self._lock:
                self._admit_locked(request.node, request.url)
                self._joins += 1
        except ClusterRejection as rejection:
            with self._lock:
                self._join_rejects += 1
            return rejection.status, rejection.body()
        return 200, canonical_json_bytes(
            {
                "status": "ok",
                "node": request.node,
                "epoch": self.cluster_epoch,
                "protocol": PROTOCOL_VERSION,
                "heartbeat_interval": self.heartbeat_interval,
                "liveness_timeout": self.liveness_timeout,
                "shards": sorted(self.ring.nodes),
            }
        )

    def handle_cluster_heartbeat(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /v2/cluster/heartbeat``: liveness + two-way gossip.

        The beat refreshes the member's liveness clock (a beat from a
        dead-marked member triggers :meth:`rejoin` -- the node outlived
        the reaper's patience but is back).  The body's ``keys`` digest
        (request keys the node's result cache holds) merges into the
        warm-key map and the gossip log; a ``cursor`` in the body gets
        the gossip events past it piggybacked onto the response, which
        is how a peer router converges.  Beats from unadmitted nodes
        are a typed 409 telling them to re-join.
        """
        body = parse_json_body(raw)
        try:
            self._authenticate(body.get("token"))
            name = body.get("node")
            with self._lock:
                member = self._membership.get(name)
                if member is None:
                    raise UnknownMemberError(name)
                self._membership.beat(name)
                self._heartbeats += 1
                backend = self._backends.get(name)
                if backend is not None and backend.dead:
                    self.rejoin(backend)
        except ClusterRejection as rejection:
            return rejection.status, rejection.body()
        keys = body.get("keys")
        if isinstance(keys, list):
            dropped = len(keys) - GOSSIP_KEYS_PER_BEAT
            if dropped > 0:
                # The node re-sends what was cut on later beats, but the
                # cut itself must be visible (no-silent-caps).
                with self._lock:
                    self._gossip_keys_dropped += dropped
            for key in keys[:GOSSIP_KEYS_PER_BEAT]:
                if isinstance(key, str):
                    self._record_warm(key, name)
        response: dict[str, object] = {
            "status": "ok",
            "epoch": self.cluster_epoch,
            "heartbeat_interval": self.heartbeat_interval,
        }
        cursor = body.get("cursor")
        if isinstance(cursor, int):
            events, next_cursor = self._gossip.since(cursor)
            response["events"] = events
            response["cursor"] = next_cursor
        return 200, canonical_json_bytes(response)

    def handle_cluster_leave(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /v2/cluster/leave``: graceful departure, immediate failover.

        The member is forgotten (a later heartbeat would 409 into a
        re-join) and its backend retired through :meth:`mark_dead`, so
        datasets and jobs fail over now instead of after the liveness
        timeout.  The backend record itself stays, keeping placement and
        job references valid and the name re-admittable.
        """
        body = parse_json_body(raw)
        try:
            self._authenticate(body.get("token"))
            name = body.get("node")
            with self._lock:
                if not isinstance(name, str):
                    raise UnknownMemberError(name)
                self._membership.leave(name)
                if self._journal is not None:
                    self._journal.record_member_left(name)
            backend = self._backends.get(name)
            if backend is not None and not backend.dead:
                self.mark_dead(backend)
        except ClusterRejection as rejection:
            return rejection.status, rejection.body()
        if self._journal is not None:
            self._journal.maybe_compact()
        return 200, canonical_json_bytes({"status": "ok", "node": name})

    def handle_cluster_get(self) -> tuple[int, bytes]:
        """``GET /v2/cluster``: the membership table (no auth -- read-only)."""
        with self._lock:
            nodes: dict[str, object] = {}
            now = time.time()
            for name in sorted(self._backends):
                backend = self._backends[name]
                member = self._membership.get(name)
                nodes[name] = {
                    "url": backend.url,
                    "live": not backend.dead,
                    "remote": member is not None,
                    "heartbeat_age_seconds": (
                        round(now - member.last_heartbeat, 3)
                        if member is not None
                        else None
                    ),
                }
        return 200, canonical_json_bytes(
            {
                "status": "ok",
                "epoch": self.cluster_epoch,
                "protocol": PROTOCOL_VERSION,
                "heartbeat_interval": self.heartbeat_interval,
                "liveness_timeout": self.liveness_timeout,
                "nodes": nodes,
            }
        )

    def _record_warm(self, key: str, target: str) -> None:
        """Record a warm-key placement in the map *and* the gossip log."""
        self.warm_keys.record(key, target)
        self._gossip.append(key, target)

    def absorb_gossip(self, events: list) -> int:
        """Merge a peer router's gossip events into the warm-key map.

        The peer-router side of convergence: a second router heartbeats
        a primary with a cursor, feeds the returned events here, and
        routes duplicates warm without having served the originals.
        Events for locations this router does not know are skipped (the
        peer may see members this router has not admitted yet).
        """
        absorbed = 0
        for event in events:
            if not isinstance(event, dict):
                continue
            key, location = event.get("key"), event.get("location")
            if not isinstance(key, str) or not isinstance(location, str):
                continue
            with self._lock:
                known = location in self._backends
            if known:
                self.warm_keys.record(key, location)
                absorbed += 1
        return absorbed

    def _start_reaper(self) -> None:
        """Start the liveness reaper (daemon; idles while nothing is stale)."""
        if self._reaper is not None and self._reaper.is_alive():
            return
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="hypdb-router-liveness", daemon=True
        )
        self._reaper.start()

    def _reaper_loop(self) -> None:
        """Mark remote members dead once their heartbeats go silent."""
        interval = max(0.1, self.liveness_timeout / 4)
        while not self._closed.wait(interval):
            with self._lock:
                stale = self._membership.stale(self.liveness_timeout)
                for name in stale:
                    backend = self._backends.get(name)
                    if backend is not None and not backend.dead:
                        self.mark_dead(backend)

    def close(self) -> None:
        """Stop the reaper thread (tests; daemon threads die anyway)."""
        self._closed.set()

    def _failover_job_locked(self, entry: RoutedJob) -> bool:
        """Re-submit one routed job to a live shard (lock held).

        Returns ``True`` when the job has a new live home (the entry's
        ``shard``/``local_id`` and the reverse map are updated in
        place), ``False`` when a live shard *rejected* the re-submission
        (deterministic error -- give up and let the read path surface
        it).  Raises :class:`NoLiveShardsError` when nothing is live.
        """
        for _ in range(len(self._backends) + 1):
            placement = self._placement_locked(entry.fingerprint)
            target = placement[0] if placement else self._fallback_locked()
            try:
                status, payload = self._clients[target].request_bytes(
                    "/v2/jobs", entry.body
                )
            except ServiceConnectionError:
                self.mark_dead(self._backends[target])
                continue
            if status != 202:
                return False
            data = json.loads(payload)
            self._job_homes.pop((entry.shard, entry.local_id), None)
            entry.shard = target
            entry.local_id = data["job_id"]
            self._job_homes[(entry.shard, entry.local_id)] = entry.public_id
            if entry.key is not None:
                self._record_warm(entry.key, target)
            self._job_failovers += 1
            if self._journal is not None:
                self._journal.record_job(
                    entry.public_id,
                    entry.body,
                    entry.fingerprint,
                    entry.key,
                    entry.shard,
                    entry.local_id,
                )
            return True
        raise NoLiveShardsError("no live shards")

    def _prune_jobs_locked(self) -> None:
        """Bound the routed-job table (oldest terminal entries first)."""
        excess = len(self._jobs) - self.MAX_ROUTED_JOBS
        if excess <= 0:
            return
        for public_id in [
            public_id
            for public_id, entry in self._jobs.items()
            if entry.terminal
        ][:excess]:
            entry = self._jobs.pop(public_id)
            self._job_homes.pop((entry.shard, entry.local_id), None)
            self._jobs_evicted += 1

    def _reregister(self, record: RegisteredDataset) -> None:
        """Re-register one orphaned dataset on its ring successor (lock held)."""
        while len(self.ring):
            successor = self.ring.node_for(record.fingerprint)
            try:
                status, _ = self._clients[successor].request_bytes(
                    "/register", record.body
                )
            except ServiceConnectionError:
                # The successor is dead too: retire it (reentrant; its own
                # orphans re-register deeper in) and fall through to the
                # next ring owner.
                self.mark_dead(self._backends[successor])
                continue
            if 200 <= status < 300:
                # In-place so alias records sharing this list follow along.
                record.locations[:] = [successor]
            return

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def _replication_target_locked(self, record: RegisteredDataset) -> int:
        """How many replicas ``record`` should have on the current ring."""
        return min(self.replicas, len(self.ring))

    def _start_restore_locked(self) -> None:
        """Ensure the background re-replication worker is running (lock held)."""
        if self.replicas < 2:
            return
        if self._restore_thread is not None and self._restore_thread.is_alive():
            return
        self._restore_thread = threading.Thread(
            target=self._restore_loop, name="hypdb-router-rereplicate", daemon=True
        )
        self._restore_thread.start()

    def _next_restore_locked(self) -> tuple[RegisteredDataset, str] | None:
        """One (record, target) re-replication task, or ``None`` when done."""
        if not len(self.ring):
            return None
        seen: set[int] = set()
        for record in self._registrations.values():
            if id(record.locations) in seen:
                continue
            seen.add(id(record.locations))
            if len(record.locations) >= self._replication_target_locked(record):
                continue
            for node in self.ring.nodes_for(record.fingerprint, self.replicas):
                if node in record.locations:
                    continue
                if (record.fingerprint, node) in self._restore_failed:
                    continue
                return record, node
        return None

    def _restore_loop(self) -> None:
        """Re-replicate under-replicated datasets until the K target holds.

        Runs on a daemon thread.  Each round picks one task under the
        lock, replays the register body *outside* the lock (requests keep
        flowing -- surviving replicas already answer correctly), then
        publishes the new location under the lock.  Exits when no record
        is under-replicated; a later death starts a fresh worker.
        """
        while True:
            with self._lock:
                task = self._next_restore_locked()
            if task is None:
                return
            record, target = task
            try:
                status, _ = self._clients[target].request_bytes(
                    "/register", record.body
                )
            except ServiceConnectionError:
                self.mark_dead(self._backends[target])
                continue
            with self._lock:
                if not (200 <= status < 300):
                    # Deterministic rejection (the body registered before,
                    # so this is exceptional): never retry the same pair,
                    # or the worker would spin forever.
                    self._restore_failed.add((record.fingerprint, target))
                    continue
                if not self._backends[target].dead and target not in record.locations:
                    record.locations.append(target)
                    self._rereplications += 1

    def _fallback_locked(self) -> str:
        """The first live shard (for requests the router cannot key)."""
        for name in sorted(self._backends):
            if not self._backends[name].dead:
                return name
        raise NoLiveShardsError("no live shards")

    def _placement_locked(self, fingerprint: str | None) -> list[str] | None:
        """The live placement for ``fingerprint``, primary first (lock held).

        Registered content answers from its recorded placement (which
        failover keeps live and background restore tops up); content the
        router has not seen yet gets the ring plan: the owner plus its
        ``K-1`` distinct successors.  ``None`` means the caller must fall
        back to the first live shard.
        """
        if fingerprint is None:
            return None
        record = self._by_fingerprint.get(fingerprint)
        if record is not None:
            live = [
                name for name in record.locations if not self._backends[name].dead
            ]
            if live:
                return live
        if len(self.ring):
            return list(self.ring.nodes_for(fingerprint, self.replicas))
        return None

    def _target_for(self, fingerprint: str | None, key: str | None) -> str:
        """Pick the shard for one request: warm key, placement, fallback.

        Warm keys on replicated datasets round-robin across the live
        replicas (the read-scaling path: a replica seeing the key for the
        first time computes it cold once, byte-identically, and is warm
        from then on).  With ``K=1`` a warm key routes straight to its
        single holder and cold keys to the ring owner -- the PR-6 paths,
        byte-identical.
        """
        with TRACER.span("router.route", key=key) as span:
            with self._lock:
                placement = self._placement_locked(fingerprint)
                if key is not None:
                    holders = [
                        name
                        for name in self.warm_keys.holders(key)
                        if not self._backends[name].dead
                    ]
                    if holders:
                        self._warm_hits += 1
                        if placement is not None and len(placement) > 1:
                            cursor = self._read_cursors.get(fingerprint, 0)
                            self._read_cursors[fingerprint] = cursor + 1
                            self._replica_reads += 1
                            target = placement[cursor % len(placement)]
                            span.set(policy="warm_balanced", shard=target)
                            return target
                        span.set(policy="warm", shard=holders[0])
                        return holders[0]
                if placement is not None:
                    span.set(policy="placement", shard=placement[0])
                    return placement[0]
                target = self._fallback_locked()
                span.set(policy="fallback", shard=target)
                return target

    def _forward_spec(
        self, path: str, raw: bytes, fingerprint: str | None, key: str | None
    ) -> tuple[int, bytes, str]:
        """Forward one keyed request, failing over past dead shards.

        Returns ``(status, verbatim body, shard name)``; successful
        responses record ``key`` in the warm map so duplicates route to
        the holder.
        """
        with self._lock:
            self._requests += 1
        for _ in range(len(self._backends) + 1):
            target = self._target_for(fingerprint, key)
            try:
                with TRACER.span("router.forward", path=path, shard=target):
                    status, payload = self._clients[target].request_bytes(path, raw)
            except ServiceConnectionError:
                self.mark_dead(self._backends[target])
                continue
            if 200 <= status < 300 and key is not None:
                self._record_warm(key, target)
            return status, payload, target
        raise NoLiveShardsError("no live shards")  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    # Local endpoints (answered without touching a shard)
    # ------------------------------------------------------------------

    def handle_datasets(self) -> tuple[int, bytes]:
        """``GET /v2/datasets`` from the router's registration records.

        Byte-identical to a single process's catalog (same canonical
        serialization over the same fields) and available even while a
        shard is down.  With ``replicas > 1`` each entry additionally
        carries its live ``replicas`` placement (primary first) -- the
        field is *omitted entirely* at ``K=1`` so the unreplicated
        catalog stays byte-identical to a single process.
        """
        with self._lock:
            datasets: dict[str, dict[str, object]] = {}
            for record in self._registrations.values():
                entry: dict[str, object] = {
                    "fingerprint": record.fingerprint,
                    "columns": list(record.columns),
                    "n_rows": record.n_rows,
                }
                if self.replicas > 1:
                    entry["replicas"] = [
                        name
                        for name in record.locations
                        if not self._backends[name].dead
                    ]
                datasets[record.name] = entry
        return 200, canonical_json_bytes({"status": "ok", "datasets": datasets})

    def handle_stats(self) -> tuple[int, bytes]:
        """``GET /stats``: router counters plus each live shard's stats."""
        shards: dict[str, object] = {}
        for name in sorted(self._backends):
            backend = self._backends[name]
            if backend.dead:
                shards[name] = None
                continue
            try:
                status, payload = self._clients[name].request_bytes(
                    "/stats", timeout=10.0
                )
                shards[name] = json.loads(payload) if status == 200 else None
            except (ServiceConnectionError, ValueError):
                shards[name] = None
        with self._lock:
            router = {
                "uptime_seconds": time.time() - self.started_at,
                "shards": len(self._backends),
                "live_shards": sorted(self.ring.nodes),
                "requests": self._requests,
                "warm_hits": self._warm_hits,
                "v1_requests": self._v1_requests,
                "failovers": self._failovers,
                "warm_keys": len(self.warm_keys),
                "datasets": len(self._registrations),
                "replicas": self.replicas,
                "replica_reads": self._replica_reads,
                "rereplications": self._rereplications,
                "routed_jobs": len(self._jobs),
                "job_failovers": self._job_failovers,
                "rejoins": self._rejoins,
                "cluster": {
                    "enabled": self.cluster_token is not None,
                    "epoch": self.cluster_epoch,
                    "remote_nodes": len(self._membership),
                    "joins": self._joins,
                    "join_rejects": self._join_rejects,
                    "heartbeats": self._heartbeats,
                    "gossip_events": len(self._gossip),
                },
            }
            if self._journal is not None:
                router["journal"] = self._journal.stats()
        return 200, canonical_json_bytes({"router": router, "shards": shards})

    def describe(self) -> dict[str, object]:
        """Topology summary for the CLI banner."""
        with self._lock:
            return {
                "shards": {
                    name: self._backends[name].url for name in sorted(self._backends)
                },
                "live": sorted(self.ring.nodes),
                "datasets": len(self._registrations),
                "replicas": self.replicas,
            }

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def handle_register(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /register``: fingerprint locally, fan out to K replicas.

        The router builds the table itself *only to fingerprint it* (the
        ring keys on content, and the owner must be chosen before any
        shard has seen the data); the verbatim body then goes to the ring
        owner -- whose response is spliced back untouched -- and, with
        ``replicas > 1``, is replayed verbatim to the owner's ``K-1``
        distinct ring successors before the call returns, so the
        placement is complete by the time the client can issue a read.
        Content the router has already placed (an alias name for the same
        bytes) replays to the *existing* placement instead, keeping every
        name of a dataset answerable by the same replica set.  Bodies the
        router cannot parse are forwarded to the fallback shard, which
        produces the byte-identical error a single process would.
        """
        body = parse_json_body(raw)
        table = None
        fingerprint = None
        try:
            table = build_table(
                columns=body.get("columns"),
                rows=body.get("rows"),
                column_names=body.get("column_names"),
                csv_path=body.get("csv_path"),
            )
            fingerprint = fingerprint_table(table)
        except Exception:
            # Malformed source: let a shard answer (byte-identical 400).
            fingerprint = None
        for _ in range(len(self._backends) + 1):
            with self._lock:
                placement = self._placement_locked(fingerprint)
                if placement is None:
                    placement = [self._fallback_locked()]
            owner = placement[0]
            try:
                status, payload = self._clients[owner].request_bytes("/register", raw)
            except ServiceConnectionError:
                self.mark_dead(self._backends[owner])
                continue
            if not (200 <= status < 300) or fingerprint is None:
                return status, payload
            locations = [owner]
            for replica in placement[1:]:
                try:
                    replica_status, _ = self._clients[replica].request_bytes(
                        "/register", raw
                    )
                except ServiceConnectionError:
                    self.mark_dead(self._backends[replica])
                    continue
                if 200 <= replica_status < 300:
                    locations.append(replica)
            name = str(body.get("name", ""))
            with self._lock:
                existing = self._by_fingerprint.get(fingerprint)
                if existing is not None and any(
                    not self._backends[where].dead for where in existing.locations
                ):
                    # Same content, new name: share the placement list so
                    # failover and restore keep every alias in sync.
                    locations = existing.locations
                record = RegisteredDataset(
                    name=name,
                    fingerprint=fingerprint,
                    columns=tuple(table.columns),
                    n_rows=table.n_rows,
                    body=raw,
                    locations=locations,
                )
                self._registrations[name] = record
                self._by_fingerprint[fingerprint] = record
            if self._journal is not None:
                self._journal.record_dataset(
                    name,
                    fingerprint,
                    list(record.columns),
                    record.n_rows,
                    raw,
                    list(record.locations),
                )
                self._journal.maybe_compact()
            return status, payload
        raise NoLiveShardsError("no live shards")  # pragma: no cover - defensive

    def _lookup(self, dataset: str) -> RegisteredDataset | None:
        with self._lock:
            return self._registrations.get(dataset)

    # ------------------------------------------------------------------
    # Read requests (v1 spec endpoints, jobs, batches)
    # ------------------------------------------------------------------

    def handle_v1_spec(self, path: str, raw: bytes) -> tuple[int, bytes]:
        """One deprecated v1 read (``/analyze`` etc.): key and forward."""
        with self._lock:
            self._v1_requests += 1
        fingerprint, key = self._spec_routing(_V1_SPECS[path], parse_json_body(raw))
        status, payload, _ = self._forward_spec(path, raw, fingerprint, key)
        return status, payload

    def handle_submit(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /v2/jobs``: forward, then namespace the job id."""
        body = parse_json_body(raw)
        fingerprint = key = None
        try:
            spec = spec_from_dict(dict(body))
        except Exception:
            spec = None  # the shard will produce the byte-identical 400
        if spec is not None:
            record = self._lookup(spec.dataset)
            if record is not None:
                fingerprint = record.fingerprint
                key = spec.request_key(fingerprint)
        status, payload, target = self._forward_spec("/v2/jobs", raw, fingerprint, key)
        if status == 202:
            data = json.loads(payload)
            local_id = data["job_id"]
            public_id = f"{target}.{local_id}"
            data["job_id"] = public_id
            payload = canonical_json_bytes(data)
            with self._lock:
                self._jobs[public_id] = RoutedJob(
                    public_id=public_id,
                    body=raw,
                    fingerprint=fingerprint,
                    key=key,
                    shard=target,
                    local_id=local_id,
                )
                self._job_homes[(target, local_id)] = public_id
                self._prune_jobs_locked()
            if self._journal is not None:
                self._journal.record_job(
                    public_id, raw, fingerprint, key, target, local_id
                )
                self._journal.maybe_compact()
        return status, payload

    def handle_job_get(self, job_id: str, query: str) -> tuple[int, bytes]:
        """``GET /v2/jobs/<id>``: follow the job to its current home.

        ``?wait=`` is forwarded verbatim, so long-polls block on the
        owning shard's condition variable.  Ids the router handed out
        are resolved through the routed-job table, so a read finds the
        job even after failover moved it: a dead (or 404ing) home
        triggers a re-submission of the recorded body to a live shard
        -- warm off a surviving replica, or a byte-identical cold
        recompute -- and the read retries against the new home.  The
        public id is stable across all of this.  Ids the router does
        not know (evicted, or minted by a shard directly) fall back to
        the namespace-prefix route.
        """
        with self._lock:
            entry = self._jobs.get(job_id)
        if entry is None:
            return self._job_get_by_namespace(job_id, query)
        for _ in range(len(self._backends) + 2):
            with self._lock:
                shard, local_id = entry.shard, entry.local_id
                home = self._backends.get(shard)
                if home is None or home.dead:
                    # Dead -- or recovered from a journal that references
                    # a shard this topology does not know: re-home it.
                    if not self._failover_job_locked(entry):
                        break
                    continue
            path = f"/v2/jobs/{local_id}" + (f"?{query}" if query else "")
            try:
                status, payload = self._clients[shard].request_bytes(path)
            except ServiceConnectionError:
                self.mark_dead(self._backends[shard])
                continue
            if status == 404:
                # The home shard no longer knows the job (pruned, or a
                # respawned process under the same name): resurrect it
                # from the recorded body and re-read.
                with self._lock:
                    if (entry.shard, entry.local_id) != (shard, local_id):
                        continue  # another thread already re-homed it
                    if not self._failover_job_locked(entry):
                        break
                continue
            if status == 200:
                data = json.loads(payload)
                job = self._public_job_ids(data["job"], shard)
                job["id"] = entry.public_id
                if job.get("status") in ("done", "error", "cancelled"):
                    if not entry.terminal and self._journal is not None:
                        self._journal.record_job_terminal(entry.public_id)
                        self._journal.maybe_compact()
                    entry.terminal = True
                payload = b'{"status":"ok","job":' + canonical_json_bytes(job)
                if "result" in data:
                    # Canonical re-encode is byte-stable for canonical
                    # input, so the result bytes survive the id rewrite
                    # untouched.
                    payload += b',"result":' + canonical_json_bytes(data["result"])
                payload += b"}"
            return status, payload
        return 404, _unknown_job(job_id)

    def _job_get_by_namespace(self, job_id: str, query: str) -> tuple[int, bytes]:
        """Read a job the routed table does not track (legacy path)."""
        shard, separator, local_id = job_id.partition(".")
        backend = self._backends.get(shard) if separator else None
        if backend is None or backend.dead:
            return 404, _unknown_job(job_id)
        path = f"/v2/jobs/{local_id}" + (f"?{query}" if query else "")
        try:
            status, payload = self._clients[shard].request_bytes(path)
        except ServiceConnectionError:
            self.mark_dead(backend)
            return 404, _unknown_job(job_id)
        if status == 200:
            data = json.loads(payload)
            job = self._public_job_ids(data["job"], shard)
            payload = b'{"status":"ok","job":' + canonical_json_bytes(job)
            if "result" in data:
                payload += b',"result":' + canonical_json_bytes(data["result"])
            payload += b"}"
        elif status == 404:
            # The shard knows only the local id; report the routed one.
            payload = _unknown_job(job_id)
        return status, payload

    def _public_job_ids(self, snapshot: dict, shard: str) -> dict:
        """Rewrite a shard-local snapshot's ids to the public (routed) ids.

        The routed table wins (it survives failover re-homing); ids the
        table does not track fall back to the birthplace prefix.
        """
        with self._lock:
            snapshot["id"] = self._job_homes.get(
                (shard, snapshot["id"]), f"{shard}.{snapshot['id']}"
            )
            coalesced = snapshot.get("coalesced_into")
            if coalesced is not None:
                snapshot["coalesced_into"] = self._job_homes.get(
                    (shard, coalesced), f"{shard}.{coalesced}"
                )
        return snapshot

    def handle_job_list(self, query: str) -> tuple[int, bytes]:
        """``GET /v2/jobs``: merge every live shard's listing.

        Snapshots are id-namespaced, merged oldest-first by submission
        time, and trimmed to ``limit`` (each shard already returns its
        own most recent ``limit``, and the global tail is a subset of the
        per-shard tails).  Dead or unreachable shards are skipped --
        their unfinished jobs have already been re-homed onto live
        shards by failover, so they appear in the merged listing under
        their stable public ids.
        """
        parameters = parse_qs(query)
        dataset = parameters.get("dataset", [None])[0]
        limit_text = parameters.get("limit", ["100"])[0]
        try:
            limit = int(limit_text)
        except ValueError:
            raise ValueError(f"limit must be an integer, got {limit_text!r}") from None
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        forwarded = {"limit": str(limit)}
        if dataset is not None:
            forwarded["dataset"] = dataset
        merged: list[dict] = []
        for name in sorted(self._backends):
            backend = self._backends[name]
            if backend.dead:
                continue
            try:
                status, payload = self._clients[name].request_bytes(
                    f"/v2/jobs?{urlencode(forwarded)}"
                )
            except ServiceConnectionError:
                self.mark_dead(backend)
                continue
            if status != 200:
                continue
            for snapshot in json.loads(payload)["jobs"]:
                merged.append(self._public_job_ids(snapshot, name))
        merged.sort(key=lambda snapshot: snapshot["submitted_at"])
        merged = merged[-limit:] if limit else []
        return 200, canonical_json_bytes({"status": "ok", "jobs": merged})

    def handle_batch_v1(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /batch`` (v1, sequential): route item by item.

        Each item is forwarded as a single v1 request to its warm/ring
        shard *in submission order*, and the response envelopes are
        spliced into the v1 batch body verbatim -- duplicates keep the
        pinned ``[cold, cached]`` flag sequence because the duplicate
        routes to the shard that just cached the leader's bytes.  Any
        item error aborts the batch with that shard's error body, exactly
        like the single-process sequential loop.
        """
        with self._lock:
            self._v1_requests += 1
        body = parse_json_body(raw)
        requests = body.get("requests", [])
        plan = self._route_items(requests)
        if plan is None:
            # Unroutable shape: one shard replays the whole batch and
            # produces the byte-identical error mid-sequence.
            status, payload, _ = self._forward_spec("/batch", raw, None, None)
            return status, payload
        parts: list[bytes] = []
        for item, fingerprint, key in plan:
            item_body = dict(item)
            kind = item_body.pop("kind")
            item_raw = json.dumps(item_body).encode("utf-8")
            status, payload, _ = self._forward_spec(
                f"/{kind}", item_raw, fingerprint, key
            )
            if status != 200:
                return status, payload
            parts.append(payload)
        return 200, b'{"status":"ok","results":[' + b",".join(parts) + b"]}"

    def handle_batch_v2(self, raw: bytes) -> tuple[int, bytes]:
        """``POST /v2/batch``: fan the plan out shard-parallel.

        Specs are grouped by their dataset's *primary replica* (which is
        the fingerprint's ring owner until failover reshapes a placement)
        and each sub-batch runs through that shard's planner
        concurrently.  The per-shard plan summaries sum to exactly the
        single-process plan (request keys embed the fingerprint, so dedup
        never crosses groups) and results are re-assembled in submission
        order.  Grouping by placement rather than the raw ring means a
        batch never lands on a shard still waiting for background
        re-replication to hand it the dataset.
        """
        body = parse_json_body(raw)
        requests = body.get("requests", [])
        plan = self._route_items(requests, spec_builder=spec_from_dict)
        if plan is None:
            # Unroutable (bad shape, unknown dataset, malformed spec):
            # one shard produces the byte-identical 400/404 up front.
            status, payload, _ = self._forward_spec("/v2/batch", raw, None, None)
            return status, payload
        for _ in range(len(self._backends) + 1):
            with self._lock:
                if not len(self.ring):
                    raise NoLiveShardsError("no live shards")
                groups: dict[str, list[int]] = {}
                for index, (_, fingerprint, _) in enumerate(plan):
                    placement = self._placement_locked(fingerprint)
                    target = (
                        placement[0] if placement else self._fallback_locked()
                    )
                    groups.setdefault(target, []).append(index)
            if len(groups) == 1:
                # Single-owner batch: the common case forwards verbatim.
                ((target, _),) = groups.items()
                try:
                    status, payload = self._clients[target].request_bytes(
                        "/v2/batch", raw
                    )
                except ServiceConnectionError:
                    self.mark_dead(self._backends[target])
                    continue
                if status == 200:
                    self._record_batch_keys(plan, range(len(plan)), target)
                return status, payload
            outcome = self._fan_out_batch(requests, plan, groups)
            if outcome is not None:
                return outcome
            # A shard died mid-fan-out: it is retired, surviving shards
            # kept their sub-results cached, re-plan on the new ring.
        raise NoLiveShardsError("no live shards")  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    # Batch internals
    # ------------------------------------------------------------------

    def _spec_routing(self, spec_type, body: dict) -> tuple[str | None, str | None]:
        """(fingerprint, request key) for one spec body, or ``(None, None)``.

        ``None`` means "cannot key this request" -- it goes to the
        fallback shard, which answers (or errors) byte-identically.
        """
        try:
            spec = spec_type.from_dict(dict(body))
        except Exception:
            return None, None
        record = self._lookup(spec.dataset)
        if record is None:
            return None, None
        return record.fingerprint, spec.request_key(record.fingerprint)

    def _route_items(
        self, requests, spec_builder=None
    ) -> list[tuple[dict, str, str]] | None:
        """Resolve every batch item to (item, fingerprint, key), or ``None``.

        ``None`` means some item cannot be routed (malformed, unknown
        kind, unknown dataset) and the whole batch should be replayed on
        one shard for a byte-identical error.
        """
        if not isinstance(requests, list):
            return None
        plan: list[tuple[dict, str, str]] = []
        for item in requests:
            if not isinstance(item, dict):
                return None
            try:
                if spec_builder is not None:
                    spec = spec_builder(dict(item))
                else:
                    spec = SPEC_TYPES[item["kind"]].from_dict(
                        {k: v for k, v in item.items() if k != "kind"}
                    )
            except Exception:
                return None
            record = self._lookup(spec.dataset)
            if record is None:
                return None
            plan.append((item, record.fingerprint, spec.request_key(record.fingerprint)))
        return plan

    def _record_batch_keys(self, plan, indices, target: str) -> None:
        for index in indices:
            self._record_warm(plan[index][2], target)

    def _fan_out_batch(
        self,
        requests: list,
        plan: list[tuple[dict, str, str]],
        groups: dict[str, list[int]],
    ) -> tuple[int, bytes] | None:
        """One shard-parallel round; ``None`` means a shard died (re-plan)."""
        outcomes: dict[str, tuple[int, bytes] | None] = {}

        def _call(target: str, indices: list[int]) -> None:
            sub_raw = json.dumps(
                {"requests": [requests[index] for index in indices]}
            ).encode("utf-8")
            try:
                outcomes[target] = self._clients[target].request_bytes(
                    "/v2/batch", sub_raw
                )
            except ServiceConnectionError:
                outcomes[target] = None

        threads = [
            threading.Thread(target=_call, args=(target, indices), daemon=True)
            for target, indices in groups.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        died = [target for target, outcome in outcomes.items() if outcome is None]
        if died:
            for target in died:
                self.mark_dead(self._backends[target])
            return None
        # Any shard-level error aborts the whole batch, reported from the
        # group holding the earliest submitted spec (deterministic).
        for target, _ in sorted(groups.items(), key=lambda pair: min(pair[1])):
            status, payload = outcomes[target]
            if status != 200:
                return status, payload
        summary = {"specs": 0, "datasets": 0, "warm": 0, "cold": 0, "deduplicated": 0}
        slots: list[bytes | None] = [None] * len(plan)
        for target, indices in groups.items():
            _, payload = outcomes[target]
            data = json.loads(payload)
            for field in summary:
                summary[field] += data["plan"][field]
            for position, index in enumerate(indices):
                slots[index] = reencode_envelope(data["results"][position])
            self._record_batch_keys(plan, indices, target)
        return 200, (
            b'{"status":"ok","plan":'
            + canonical_json_bytes(summary)
            + b',"results":['
            + b",".join(slots)
            + b"]}"
        )


# ----------------------------------------------------------------------
# Byte-splicing helpers
# ----------------------------------------------------------------------


def reencode_envelope(item: dict) -> bytes:
    """Re-emit one result envelope in the exact single-process format.

    The envelope layout (fixed key order, canonical ``result`` bytes)
    matches :func:`repro.service.http.envelope_bytes`; both the rounded
    ``elapsed_seconds`` float and the canonical payload survive a JSON
    parse/re-emit byte-for-byte (``repr`` round-trip), so reassembled
    batch bodies splice shard results without drift.
    """
    head = (
        f'{{"status":"ok","kind":{json.dumps(item["kind"])},'
        f'"cached":{"true" if item["cached"] else "false"},'
        f'"elapsed_seconds":{json.dumps(item["elapsed_seconds"])},'
        f'"result":'
    )
    return head.encode("utf-8") + canonical_json_bytes(item["result"]) + b"}"


def _unknown_job(job_id: str) -> bytes:
    return canonical_json_bytes(
        {"status": "error", "error": f"unknown job {job_id!r}"}
    )


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class RouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared router instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], router: ShardRouter) -> None:
        super().__init__(address, _RouterHandler)
        self.router = router


class _RouterHandler(JSONRequestHandler):
    """The router's public surface: same paths, bodies, and error bytes
    as the single-process handler; computation happens on the shards."""

    server: RouterHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        from urllib.parse import urlsplit

        parts = urlsplit(self.path)
        router = self.server.router
        handle = self._begin_trace()
        try:
            with TRACER.span("http.dispatch", method="GET", path=parts.path):
                try:
                    if parts.path == "/health":
                        self._send(200, canonical_json_bytes({"status": "ok"}))
                    elif parts.path == "/stats":
                        self._send(*router.handle_stats())
                    elif parts.path == "/metrics":
                        status, payload = router.handle_metrics()
                        self._send(
                            status, payload, content_type=PROMETHEUS_CONTENT_TYPE
                        )
                    elif parts.path == "/v2/datasets":
                        self._send(*router.handle_datasets())
                    elif parts.path == "/v2/jobs":
                        self._send(*router.handle_job_list(parts.query))
                    elif parts.path == "/v2/cluster":
                        self._send(*router.handle_cluster_get())
                    elif parts.path.startswith("/v2/jobs/"):
                        job_id = parts.path[len("/v2/jobs/"):]
                        self._send(*router.handle_job_get(job_id, parts.query))
                    else:
                        self._send_error(404, f"unknown path {self.path!r}")
                except NoLiveShardsError as error:
                    self._send_error(
                        503,
                        str(error),
                        headers=(("Retry-After", str(RETRY_AFTER_SECONDS)),),
                    )
                except (TypeError, ValueError) as error:
                    self._send_error(400, _message(error))
                except Exception as error:  # pragma: no cover - defensive 500
                    self._send_error(500, f"{type(error).__name__}: {error}")
        finally:
            TRACER.finish(handle)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            raw = self._read_raw()
        except ValueError as error:
            self._send_error(400, str(error))
            return
        router = self.server.router
        handle = self._begin_trace()
        try:
            with TRACER.span("http.dispatch", method="POST", path=self.path):
                try:
                    if self.path == "/register":
                        self._send(*router.handle_register(raw))
                    elif self.path == "/batch":
                        status, payload = router.handle_batch_v1(raw)
                        self._send(
                            status,
                            payload,
                            headers=v1_deprecation_headers(self.path),
                        )
                    elif self.path == "/v2/jobs":
                        self._send(*router.handle_submit(raw))
                    elif self.path == "/v2/batch":
                        self._send(*router.handle_batch_v2(raw))
                    elif self.path == "/v2/cluster/join":
                        self._send(*router.handle_cluster_join(raw))
                    elif self.path == "/v2/cluster/heartbeat":
                        self._send(*router.handle_cluster_heartbeat(raw))
                    elif self.path == "/v2/cluster/leave":
                        self._send(*router.handle_cluster_leave(raw))
                    elif self.path in _V1_SPECS:
                        status, payload = router.handle_v1_spec(self.path, raw)
                        self._send(
                            status,
                            payload,
                            headers=v1_deprecation_headers(self.path),
                        )
                    else:
                        self._send_error(404, f"unknown path {self.path!r}")
                except NoLiveShardsError as error:
                    self._send_error(
                        503,
                        str(error),
                        headers=(("Retry-After", str(RETRY_AFTER_SECONDS)),),
                    )
                except (TypeError, ValueError) as error:
                    self._send_error(400, _message(error))
                except Exception as error:  # pragma: no cover - defensive 500
                    self._send_error(500, f"{type(error).__name__}: {error}")
        finally:
            TRACER.finish(handle)


def make_router_server(
    router: ShardRouter, host: str = "127.0.0.1", port: int = 0
) -> RouterHTTPServer:
    """Bind the router to an HTTP server (``port=0`` picks a free port)."""
    return RouterHTTPServer((host, port), router)
