"""The consistent-hash ring: dataset fingerprints -> shard ownership.

Classic Karger-style consistent hashing: every shard contributes
``replicas`` virtual points on a ring of 64-bit hash positions, and a
key is owned by the first point clockwise from its own hash.  Two
properties make this the right router primitive:

* **stability** -- adding or removing one shard remaps only the keys in
  the arcs that shard's points cover, ~``1/N`` of the space (pinned by
  ``tests/service/test_shard_ring.py``), so scale-out and failover
  never cold-start the whole fleet's caches;
* **determinism** -- ownership is a pure function of the membership set
  and the key, so the router, tests, and any future peer can compute it
  independently and agree.

Keys are dataset content fingerprints (already uniformly distributed
SHA-256 hex), but the ring hashes them again so *any* string key is
placed uniformly.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right


def _position(text: str) -> int:
    """A stable 64-bit ring position for ``text``."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named shard nodes.

    Parameters
    ----------
    nodes:
        Initial node names (e.g. ``("s0", "s1")``).
    replicas:
        Virtual points per node.  More points -> smoother balance
        between nodes at the cost of a larger (still tiny) ring; 64
        keeps the max/mean load skew low for single-digit shard counts.
    """

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        self._positions: list[int] = []  # parallel array for bisect
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node``'s virtual points to the ring (idempotent)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._replicas):
            self._points.append((_position(f"{node}#{replica}"), node))
        self._rebuild()

    def remove(self, node: str) -> None:
        """Drop ``node`` from the ring (no-op when absent).

        Keys it owned fall through to their next clockwise point -- the
        *successor* arcs -- which is exactly where failover re-registers
        a dead shard's datasets.
        """
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]
        self._rebuild()

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise from its hash)."""
        if not self._points:
            raise RuntimeError("hash ring is empty: no live shards")
        index = bisect_right(self._positions, _position(key))
        if index == len(self._points):  # wrap past 2**64
            index = 0
        return self._points[index][1]

    def nodes_for(self, key: str, count: int) -> tuple[str, ...]:
        """The owner of ``key`` plus its distinct ring successors.

        Walks clockwise from the key's hash collecting the first
        ``count`` *distinct* nodes (virtual points of a node already
        collected are skipped), so ``nodes_for(key, 1) == (node_for(key),)``
        and larger counts extend the same walk.  This is the replica
        placement primitive: a dataset replicated to its K successors
        stays reachable when its owner dies, because the post-removal
        ring owner is by construction the next distinct successor --
        i.e. always one of the surviving replicas.

        Returns fewer than ``count`` nodes when the ring has fewer
        members (the walk is exhausted, never an error).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._points:
            raise RuntimeError("hash ring is empty: no live shards")
        start = bisect_right(self._positions, _position(key))
        n_points = len(self._points)
        nodes: list[str] = []
        for step in range(n_points):
            node = self._points[(start + step) % n_points][1]
            if node not in nodes:
                nodes.append(node)
                if len(nodes) == count:
                    break
        return tuple(nodes)

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """Live node names, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _rebuild(self) -> None:
        self._points.sort()
        self._positions = [position for position, _ in self._points]
