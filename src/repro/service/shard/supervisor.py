"""Shard supervision: spawn, health-check, and watch N worker processes.

Each shard worker is a whole single-process deployment -- an
:class:`~repro.service.core.AnalysisService` behind the stdlib HTTP
server -- started in its own process with its own registry, result
cache, entropy memos, and dataset plane.  The supervisor owns their
lifecycle:

* **spawn** -- workers bind an ephemeral port and report it back over a
  pipe, so N shards come up in parallel with no port bookkeeping;
* **health** -- ``/health`` probes with a short timeout (plus the
  cheaper ``Process.is_alive`` liveness bit);
* **watch** -- an optional daemon thread that polls health and reports
  deaths to a callback (the router's failover hook).  Death is
  *degradation, not failure*: datasets replicated to surviving shards
  (``--replicas K > 1``) keep answering warm from them while the router
  re-replicates in the background; unreplicated datasets are
  re-registered on their successor ring nodes from the router's own
  registration records -- caches start cold there, but every answer
  stays byte-identical.
* **heal** (``--heal``) -- the watch loop additionally *respawns* dead
  workers: a fresh process under the same shard name (new port), handed
  back to the router's :meth:`~repro.service.shard.router.ShardRouter.
  rejoin`, which re-adds it to the ring, replays register bodies where
  needed, and lets background re-replication rebuild the K target -- the
  cluster converges back to N live shards with no operator action.

Workers are started with the ``spawn`` method: a clean interpreter per
shard (no inherited locks from a threaded parent), exactly what a
TCP-addressable multi-node deployment would look like.  ``spawn`` also
copies the parent's environment, which is how the deterministic fault
plans of :mod:`repro.service.faults` (``REPRO_FAULTS``) reach the
workers; each worker scopes itself under its shard name.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.service.client import ServiceClient, ServiceError


def _shard_main(
    connection,
    name: str,
    host: str,
    jobs: int,
    cache_entries: int,
    disk_cache: str | None,
    job_workers: int,
    job_journal: str | None,
    trace_log: str | None = None,
) -> None:  # pragma: no cover - runs in a child process
    """Worker entry point: one full service on an ephemeral port."""
    from repro.engine import resolve_engine
    from repro.obs.trace import TRACER
    from repro.service import faults
    from repro.service.core import AnalysisService
    from repro.service.http import make_server

    faults.set_scope(name)
    TRACER.configure(log_dir=trace_log, scope=name)
    service = AnalysisService(
        engine=resolve_engine(jobs),
        max_cache_entries=cache_entries,
        disk_cache=disk_cache,
        job_workers=job_workers,
        job_journal=job_journal,
    )
    server = make_server(service, host=host, port=0)
    if job_journal is not None:
        # Resume journaled work before the port is announced, so the
        # router never observes a shard that has not replayed its log.
        # (Jobs whose dataset is not re-registered yet are skipped but
        # stay journaled; router-level job failover covers them.)
        service.recover_jobs()
    connection.send(server.server_address[1])
    connection.close()
    try:
        # A terminal Ctrl-C signals the whole foreground process group;
        # exit quietly instead of spraying one traceback per shard.
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()


@dataclass
class ShardBackend:
    """One shard worker: its ring name, base URL, and process handle.

    Remote cluster nodes (joined over TCP, never spawned here) are
    backends with ``process=None``: the router's ring, replication, and
    failover machinery treats them identically; only *liveness* differs
    (heartbeats instead of process polls).
    """

    name: str
    url: str
    process: multiprocessing.Process | None = None
    #: Flipped by the router's failover path; never routed to while set.
    #: Cleared again only by ``ShardRouter.rejoin`` after the supervisor
    #: heals (respawns) the worker under the same name.
    dead: bool = False
    started_at: float = field(default_factory=time.time)

    def process_alive(self) -> bool:
        """The cheap liveness bit (no network round-trip)."""
        return self.process is not None and self.process.is_alive()


class ShardSupervisor:
    """Spawn and watch ``shards`` worker processes on localhost.

    Parameters
    ----------
    shards:
        Worker process count (each gets ``1/N`` of the fingerprint
        ring).  ``0`` is a valid fleet for a *cluster* router
        (``--cluster-token``): no local workers are spawned and every
        backend arrives over the ``/v2/cluster/join`` handshake instead
        (see :mod:`repro.service.shard.cluster`); the watch loop then
        has nothing local to poll -- remote liveness is heartbeat-driven
        and owned by the router's reaper.
    jobs:
        Execution-engine worker count *inside each shard* (multiplies
        with the shard count: ``--shards 4 --jobs 2`` uses up to 8
        cores for statistical work).
    cache_entries / disk_cache / job_workers:
        Forwarded to each shard's :class:`AnalysisService`.  A shared
        ``disk_cache`` directory is safe (atomic same-bytes writes) and
        lets a failover successor reuse the dead shard's disk entries.
    job_journal:
        Optional job-journal root; each shard journals under its own
        subdirectory (``<dir>/<name>``) and replays it on (re)spawn.
    trace_log:
        Optional request-trace JSONL directory; each shard appends to
        its own scoped file (``trace-<name>-<pid>.jsonl``), so a shared
        directory across the fleet is safe.
    start_timeout:
        Seconds to wait for all workers to report their ports.
    """

    def __init__(
        self,
        shards: int,
        jobs: int = 1,
        cache_entries: int = 256,
        disk_cache: str | None = None,
        job_workers: int = 2,
        host: str = "127.0.0.1",
        start_timeout: float = 60.0,
        health_timeout: float = 5.0,
        job_journal: str | None = None,
        trace_log: str | None = None,
    ) -> None:
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.shards = shards
        self.jobs = jobs
        self.cache_entries = cache_entries
        self.disk_cache = disk_cache
        self.job_workers = job_workers
        self.job_journal = job_journal
        self.trace_log = trace_log
        self.host = host
        self.start_timeout = start_timeout
        self.health_timeout = health_timeout
        self.backends: list[ShardBackend] = []
        self.respawns = 0
        self._context = multiprocessing.get_context("spawn")
        self._watcher: threading.Thread | None = None
        self._stop_watching = threading.Event()

    # ------------------------------------------------------------------

    def _spawn(self, name: str) -> tuple[multiprocessing.Process, object]:
        """Start one worker process; returns (process, port pipe end)."""
        journal = (
            os.path.join(self.job_journal, name)
            if self.job_journal is not None
            else None
        )
        parent_end, child_end = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_shard_main,
            args=(
                child_end,
                name,
                self.host,
                self.jobs,
                self.cache_entries,
                self.disk_cache,
                self.job_workers,
                journal,
                self.trace_log,
            ),
            name=f"hypdb-shard-{name}",
            daemon=True,
        )
        process.start()
        child_end.close()
        return process, parent_end

    def start(self) -> list[ShardBackend]:
        """Spawn every worker, wait for their ports, return the backends."""
        if self.backends:
            raise RuntimeError("supervisor already started")
        pending: list[tuple[str, multiprocessing.Process, object]] = []
        for index in range(self.shards):
            name = f"s{index}"
            process, parent_end = self._spawn(name)
            pending.append((name, process, parent_end))
        deadline = time.monotonic() + self.start_timeout
        try:
            for name, process, parent_end in pending:
                remaining = max(0.0, deadline - time.monotonic())
                if not parent_end.poll(remaining):
                    raise TimeoutError(
                        f"shard {name} did not report a port within "
                        f"{self.start_timeout}s"
                    )
                port = parent_end.recv()
                parent_end.close()
                self.backends.append(
                    ShardBackend(
                        name=name, url=f"http://{self.host}:{port}", process=process
                    )
                )
        except BaseException:
            for _, process, _ in pending:
                process.terminate()
            raise
        return self.backends

    def respawn(self, backend: ShardBackend) -> ShardBackend:
        """Start a replacement worker for a dead backend (same name).

        Mutates the existing :class:`ShardBackend` in place -- process
        handle, URL (fresh ephemeral port), start time -- so every
        reference the router holds stays valid.  The ``dead`` flag is
        **not** cleared here: the respawned shard is empty (or holds
        only its replayed journal) until the router's ``rejoin`` re-adds
        it to the ring under the topology lock.
        """
        if backend.process_alive():
            raise RuntimeError(f"shard {backend.name} is still alive")
        if backend.process is not None:
            backend.process.join(timeout=10)
            if hasattr(backend.process, "close"):
                backend.process.close()
        process, parent_end = self._spawn(backend.name)
        if not parent_end.poll(self.start_timeout):
            process.terminate()
            raise TimeoutError(
                f"respawned shard {backend.name} did not report a port within "
                f"{self.start_timeout}s"
            )
        port = parent_end.recv()
        parent_end.close()
        backend.process = process
        backend.url = f"http://{self.host}:{port}"
        backend.started_at = time.time()
        self.respawns += 1
        return backend

    # ------------------------------------------------------------------

    def backend(self, name: str) -> ShardBackend:
        """The backend named ``name`` (``KeyError`` when unknown)."""
        for backend in self.backends:
            if backend.name == name:
                return backend
        raise KeyError(f"unknown shard {name!r}")

    def kill(self, name: str) -> ShardBackend:
        """Hard-kill one worker process (failover drills) and return it.

        Only terminates the process -- the router learns of the death
        from its watch callback or the next connection failure, exactly
        as with a real crash.
        """
        backend = self.backend(name)
        if backend.process is not None and backend.process.is_alive():
            backend.process.terminate()
            backend.process.join(timeout=10)
        return backend

    # ------------------------------------------------------------------

    def healthy(self, backend: ShardBackend) -> bool:
        """One ``/health`` probe (process liveness first -- it's free)."""
        if backend.dead or not backend.process_alive():
            return False
        client = ServiceClient(backend.url, timeout=self.health_timeout, retries=0)
        try:
            return client.health().get("status") == "ok"
        except ServiceError:
            return False

    def watch(
        self,
        on_death: Callable[[ShardBackend], None],
        interval: float = 1.0,
        heal: bool = False,
        on_respawn: Callable[[ShardBackend], None] | None = None,
    ) -> None:
        """Start a daemon thread reporting shard deaths to ``on_death``.

        The callback fires at most once per backend (the ``dead`` flag is
        checked, and the router's failover is idempotent anyway); request
        -path detection in the router covers the window between polls.

        With ``heal=True`` the loop also *repairs* what it reports: a
        backend that is marked dead and whose process has exited is
        respawned under the same name, then handed to ``on_respawn``
        (the router's ``rejoin``) to re-enter the ring.  A respawn that
        fails (e.g. port timeout) is retried on the next poll tick.
        """
        if self._watcher is not None:
            raise RuntimeError("watcher already running")

        def _poll() -> None:
            while not self._stop_watching.wait(interval):
                for backend in self.backends:
                    if not backend.dead and not self.healthy(backend):
                        on_death(backend)
                    if heal and backend.dead and not backend.process_alive():
                        try:
                            self.respawn(backend)
                        except Exception:
                            continue
                        if on_respawn is not None:
                            on_respawn(backend)

        self._watcher = threading.Thread(
            target=_poll, name="hypdb-shard-watch", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop watching and terminate every worker process."""
        self._stop_watching.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5)
            self._watcher = None
        for backend in self.backends:
            if backend.process is not None and backend.process.is_alive():
                backend.process.terminate()
        for backend in self.backends:
            if backend.process is not None:
                backend.process.join(timeout=10)
                # close() releases the Process's pipe handles promptly
                # (Python >= 3.7); guard for exotic Process stand-ins.
                if hasattr(backend.process, "close"):
                    backend.process.close()
                backend.process = None

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
