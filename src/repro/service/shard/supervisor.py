"""Shard supervision: spawn, health-check, and watch N worker processes.

Each shard worker is a whole single-process deployment -- an
:class:`~repro.service.core.AnalysisService` behind the stdlib HTTP
server -- started in its own process with its own registry, result
cache, entropy memos, and dataset plane.  The supervisor owns their
lifecycle:

* **spawn** -- workers bind an ephemeral port and report it back over a
  pipe, so N shards come up in parallel with no port bookkeeping;
* **health** -- ``/health`` probes with a short timeout (plus the
  cheaper ``Process.is_alive`` liveness bit);
* **watch** -- an optional daemon thread that polls health and reports
  deaths to a callback (the router's failover hook).  Death is
  *degradation, not failure*: datasets replicated to surviving shards
  (``--replicas K > 1``) keep answering warm from them while the router
  re-replicates in the background; unreplicated datasets are
  re-registered on their successor ring nodes from the router's own
  registration records -- caches start cold there, but every answer
  stays byte-identical.

Workers are started with the ``spawn`` method: a clean interpreter per
shard (no inherited locks from a threaded parent), exactly what a
TCP-addressable multi-node deployment would look like.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.service.client import ServiceClient, ServiceError


def _shard_main(
    connection,
    host: str,
    jobs: int,
    cache_entries: int,
    disk_cache: str | None,
    job_workers: int,
) -> None:  # pragma: no cover - runs in a child process
    """Worker entry point: one full service on an ephemeral port."""
    from repro.engine import resolve_engine
    from repro.service.core import AnalysisService
    from repro.service.http import make_server

    service = AnalysisService(
        engine=resolve_engine(jobs),
        max_cache_entries=cache_entries,
        disk_cache=disk_cache,
        job_workers=job_workers,
    )
    server = make_server(service, host=host, port=0)
    connection.send(server.server_address[1])
    connection.close()
    try:
        # A terminal Ctrl-C signals the whole foreground process group;
        # exit quietly instead of spraying one traceback per shard.
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()


@dataclass
class ShardBackend:
    """One shard worker: its ring name, base URL, and process handle."""

    name: str
    url: str
    process: multiprocessing.Process | None = None
    #: Flipped (once) by the router's failover path; a dead backend is
    #: never routed to again in this supervisor's lifetime.
    dead: bool = False
    started_at: float = field(default_factory=time.time)

    def process_alive(self) -> bool:
        """The cheap liveness bit (no network round-trip)."""
        return self.process is not None and self.process.is_alive()


class ShardSupervisor:
    """Spawn and watch ``shards`` worker processes on localhost.

    Parameters
    ----------
    shards:
        Worker process count (each gets ``1/N`` of the fingerprint ring).
    jobs:
        Execution-engine worker count *inside each shard* (multiplies
        with the shard count: ``--shards 4 --jobs 2`` uses up to 8
        cores for statistical work).
    cache_entries / disk_cache / job_workers:
        Forwarded to each shard's :class:`AnalysisService`.  A shared
        ``disk_cache`` directory is safe (atomic same-bytes writes) and
        lets a failover successor reuse the dead shard's disk entries.
    start_timeout:
        Seconds to wait for all workers to report their ports.
    """

    def __init__(
        self,
        shards: int,
        jobs: int = 1,
        cache_entries: int = 256,
        disk_cache: str | None = None,
        job_workers: int = 2,
        host: str = "127.0.0.1",
        start_timeout: float = 60.0,
        health_timeout: float = 5.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.jobs = jobs
        self.cache_entries = cache_entries
        self.disk_cache = disk_cache
        self.job_workers = job_workers
        self.host = host
        self.start_timeout = start_timeout
        self.health_timeout = health_timeout
        self.backends: list[ShardBackend] = []
        self._context = multiprocessing.get_context("spawn")
        self._watcher: threading.Thread | None = None
        self._stop_watching = threading.Event()

    # ------------------------------------------------------------------

    def start(self) -> list[ShardBackend]:
        """Spawn every worker, wait for their ports, return the backends."""
        if self.backends:
            raise RuntimeError("supervisor already started")
        pending: list[tuple[str, multiprocessing.Process, object]] = []
        for index in range(self.shards):
            parent_end, child_end = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_shard_main,
                args=(
                    child_end,
                    self.host,
                    self.jobs,
                    self.cache_entries,
                    self.disk_cache,
                    self.job_workers,
                ),
                name=f"hypdb-shard-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
            pending.append((f"s{index}", process, parent_end))
        deadline = time.monotonic() + self.start_timeout
        try:
            for name, process, parent_end in pending:
                remaining = max(0.0, deadline - time.monotonic())
                if not parent_end.poll(remaining):
                    raise TimeoutError(
                        f"shard {name} did not report a port within "
                        f"{self.start_timeout}s"
                    )
                port = parent_end.recv()
                parent_end.close()
                self.backends.append(
                    ShardBackend(
                        name=name, url=f"http://{self.host}:{port}", process=process
                    )
                )
        except BaseException:
            for _, process, _ in pending:
                process.terminate()
            raise
        return self.backends

    # ------------------------------------------------------------------

    def backend(self, name: str) -> ShardBackend:
        """The backend named ``name`` (``KeyError`` when unknown)."""
        for backend in self.backends:
            if backend.name == name:
                return backend
        raise KeyError(f"unknown shard {name!r}")

    def kill(self, name: str) -> ShardBackend:
        """Hard-kill one worker process (failover drills) and return it.

        Only terminates the process -- the router learns of the death
        from its watch callback or the next connection failure, exactly
        as with a real crash.
        """
        backend = self.backend(name)
        if backend.process is not None and backend.process.is_alive():
            backend.process.terminate()
            backend.process.join(timeout=10)
        return backend

    # ------------------------------------------------------------------

    def healthy(self, backend: ShardBackend) -> bool:
        """One ``/health`` probe (process liveness first -- it's free)."""
        if backend.dead or not backend.process_alive():
            return False
        client = ServiceClient(backend.url, timeout=self.health_timeout, retries=0)
        try:
            return client.health().get("status") == "ok"
        except ServiceError:
            return False

    def watch(
        self, on_death: Callable[[ShardBackend], None], interval: float = 1.0
    ) -> None:
        """Start a daemon thread reporting shard deaths to ``on_death``.

        The callback fires at most once per backend (the ``dead`` flag is
        checked, and the router's failover is idempotent anyway); request
        -path detection in the router covers the window between polls.
        """
        if self._watcher is not None:
            raise RuntimeError("watcher already running")

        def _poll() -> None:
            while not self._stop_watching.wait(interval):
                for backend in self.backends:
                    if not backend.dead and not self.healthy(backend):
                        on_death(backend)

        self._watcher = threading.Thread(
            target=_poll, name="hypdb-shard-watch", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop watching and terminate every worker process."""
        self._stop_watching.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5)
            self._watcher = None
        for backend in self.backends:
            if backend.process is not None and backend.process.is_alive():
                backend.process.terminate()
        for backend in self.backends:
            if backend.process is not None:
                backend.process.join(timeout=10)
                # close() releases the Process's pipe handles promptly
                # (Python >= 3.7); guard for exotic Process stand-ins.
                if hasattr(backend.process, "close"):
                    backend.process.close()
                backend.process = None

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
