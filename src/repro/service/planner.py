"""The batch planner: group, order, and de-duplicate a list of specs.

``POST /v2/batch`` accepts N request specs and, instead of the v1
sequential loop, plans the batch before executing it:

* **group by dataset fingerprint** -- all specs over one table content run
  consecutively under an engine *pin*, so the table (and the grouped
  contingency tensors its tests derive) is published to the dataset plane
  once per batch, not once per request;
* **order cache-hits first** -- warm specs are answered before any cold
  computation starts, so a batch mixing cheap and expensive requests
  streams its cheap answers out of the result store immediately;
* **de-duplicate by request key** -- identical specs execute once; the
  duplicates attach to the leader's result (the batch-level twin of the
  service's single-flight) and receive the same canonical bytes.

Execution goes through :meth:`AnalysisService.execute` spec by spec --
the planner never touches seeds or engines, so every result is
bit-identical to the one-shot synchronous path for the same spec.
Results are returned in submission order regardless of execution order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import Any

from repro.obs.trace import TRACER
from repro.service.core import AnalysisService, ServiceResult
from repro.service.registry import DatasetEntry
from repro.service.spec import RequestSpec


@dataclass
class PlanItem:
    """One spec's slot in a batch plan."""

    index: int  # position in the submitted batch (result order)
    spec: RequestSpec
    key: str
    warm: bool = False  # result bytes already in the cache at plan time
    leader: "PlanItem | None" = None  # set on duplicates of an earlier item


@dataclass
class PlanGroup:
    """All distinct specs of one batch that share a dataset content."""

    fingerprint: str
    entry: DatasetEntry
    warm: list[PlanItem] = field(default_factory=list)
    cold: list[PlanItem] = field(default_factory=list)

    @property
    def items(self) -> list[PlanItem]:
        """Execution order within the group: cache hits first."""
        return self.warm + self.cold


@dataclass
class BatchPlan:
    """The planned batch: groups in first-appearance order plus duplicates."""

    items: list[PlanItem]
    groups: list[PlanGroup]
    duplicates: list[PlanItem]

    def describe(self) -> dict[str, Any]:
        """JSON-ready plan summary (returned in the v2 batch envelope)."""
        return {
            "specs": len(self.items),
            "datasets": len(self.groups),
            "warm": sum(len(group.warm) for group in self.groups),
            "cold": sum(len(group.cold) for group in self.groups),
            "deduplicated": len(self.duplicates),
        }


def plan_batch(service: AnalysisService, specs: Sequence[RequestSpec]) -> BatchPlan:
    """Plan ``specs`` against the service's registry and result cache.

    Raises :class:`~repro.service.registry.UnknownDatasetError` when any
    spec names an unregistered dataset -- the whole batch is rejected up
    front rather than failing midway through execution.
    """
    items: list[PlanItem] = []
    groups: dict[str, PlanGroup] = {}
    duplicates: list[PlanItem] = []
    leaders: dict[str, PlanItem] = {}
    with TRACER.span("batch.plan", specs=len(specs)) as span:
        for index, spec in enumerate(specs):
            entry = service.registry.get(spec.dataset)
            key = spec.request_key(entry.fingerprint)
            item = PlanItem(index=index, spec=spec, key=key)
            items.append(item)
            leader = leaders.get(key)
            if leader is not None:
                item.leader = leader
                duplicates.append(item)
                continue
            leaders[key] = item
            item.warm = service.cache.peek(key) is not None
            group = groups.get(entry.fingerprint)
            if group is None:
                group = groups[entry.fingerprint] = PlanGroup(
                    fingerprint=entry.fingerprint, entry=entry
                )
            (group.warm if item.warm else group.cold).append(item)
        span.set(groups=len(groups), duplicates=len(duplicates))
    return BatchPlan(items=items, groups=list(groups.values()), duplicates=duplicates)


def execute_plan(service: AnalysisService, plan: BatchPlan) -> list[ServiceResult]:
    """Run a plan; results come back in the batch's submission order."""
    results: list[ServiceResult | None] = [None] * len(plan.items)
    for group in plan.groups:
        # Pin the group's table: every publication the specs trigger --
        # the table for fan-outs, grouped tensors for tests -- lands on
        # one refcounted plane entry for the whole group.
        with TRACER.span(
            "batch.group",
            fingerprint=group.fingerprint,
            warm=len(group.warm),
            cold=len(group.cold),
        ):
            pinned = service.engine.pin(group.entry.table)
            try:
                for item in group.items:
                    results[item.index] = service.execute(item.spec)
            finally:
                service.engine.unpin(pinned)
    for item in plan.duplicates:
        leader_result = results[item.leader.index]
        # The duplicate never executed: it shares the leader's canonical
        # bytes, flagged like a coalesced single-flight follower.
        results[item.index] = replace(leader_result, cached=True, coalesced=True)
    return results


def run_batch(
    service: AnalysisService, specs: Sequence[RequestSpec]
) -> tuple[list[ServiceResult], dict[str, Any]]:
    """Plan and execute in one call; returns (results, plan summary)."""
    plan = plan_batch(service, specs)
    return execute_plan(service, plan), plan.describe()
