"""The async job manager: submit a spec now, poll for the bytes later.

A synchronous ``analyze`` holds its HTTP thread for the whole pipeline;
the jobs API decouples submission from execution.  ``POST /v2/jobs``
returns 202 with a job id immediately, a bounded worker-thread pool
drains the queue through :meth:`AnalysisService.execute` (the threads
only *coordinate* -- the statistical work still fans across cores via the
service's execution engine), and ``GET /v2/jobs/<id>`` reads status and,
once done, the result -- the *identical canonical bytes* the synchronous
path produces, because both run the same spec through the same engine
and cache.  Reads long-poll with ``?wait=<seconds>``: the handler blocks
on the manager's condition variable (:meth:`JobManager.wait_for`) until
the job turns terminal or the window elapses, so waiting costs one
blocked thread instead of a request per poll interval.

Work sharing happens at two levels.  Submitting a spec whose result is
already cached completes the job synchronously (no worker round-trip).
Submitting a spec equal to one that is still queued or running does not
enqueue a second computation: the new job *coalesces* onto the active
one (``coalesced_into``) and mirrors its lifecycle -- the job-level twin
of the service's single-flight, but visible before execution even
starts, so a burst of identical submissions occupies one worker slot,
not N.

With a :class:`~repro.service.journal.JobJournal` attached, every
lifecycle transition is also written ahead to an append-only JSONL log,
and :meth:`JobManager.recover` replays it on startup: unfinished jobs
resubmit under their original ids (warm specs complete instantly off
the result cache; cold ones recompute byte-identically -- results are
deterministic), failed jobs restore their terminal error state without
recompute, and replaying twice changes nothing because already-present
ids are skipped.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.trace import TRACER
from repro.service.journal import FAILED as JOURNAL_FAILED
from repro.service.journal import JobJournal
from repro.service.registry import UnknownDatasetError
from repro.service.spec import RequestSpec, SpecError, spec_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only (core imports jobs lazily)
    from repro.service.core import AnalysisService, ServiceResult

#: Job lifecycle states (terminal: ``done``, ``error``, ``cancelled``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

_TERMINAL = (DONE, ERROR, CANCELLED)


class UnknownJobError(KeyError):
    """Lookup of a job id that does not exist (HTTP maps this to 404)."""


@dataclass
class Job:
    """One submitted spec and its lifecycle.

    A coalesced job holds a reference to its primary (the job actually
    executing the shared spec) and mirrors the primary's state through
    :meth:`snapshot`; it owns only its identity and submission time.
    """

    id: str
    spec: RequestSpec
    key: str
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: "ServiceResult | None" = None
    error: str | None = None
    error_status: int = 500
    primary: "Job | None" = None
    future: Future | None = None
    #: Trace id active at submission; the worker re-opens a trace under
    #: it so the async execution joins the submitting request's trace.
    #: Never surfaced by :meth:`snapshot` (response bodies stay pinned).
    trace_id: str | None = None

    # -- views ----------------------------------------------------------

    def _effective(self) -> "Job":
        return self.primary if self.primary is not None else self

    def finished(self) -> bool:
        """Whether the job reached a terminal state (done/failed)."""
        return self._effective().status in _TERMINAL

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready job metadata (without the result payload)."""
        source = self._effective()
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "dataset": self.spec.dataset,
            "status": source.status,
            "submitted_at": self.submitted_at,
            "started_at": source.started_at,
            "finished_at": source.finished_at,
            "coalesced_into": self.primary.id if self.primary is not None else None,
            "error": source.error,
            "error_status": source.error_status if source.status == ERROR else None,
            "cached": source.result.cached if source.result is not None else None,
            "spec": self.spec.to_dict(),
        }

    def service_result(self) -> "ServiceResult | None":
        """The finished result (``None`` until the job is done)."""
        return self._effective().result


class JobManager:
    """Bounded worker pool executing specs through one service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.core.AnalysisService` owning the
        registry, caches, and execution engine.
    workers:
        Worker threads draining the queue.  Each running job occupies one
        thread; the statistical work inside still parallelizes through
        the service's (process-level) execution engine.
    max_finished:
        Finished jobs retained for polling; the oldest finished jobs are
        evicted past this bound (active jobs are never evicted).
    journal:
        Optional :class:`~repro.service.journal.JobJournal`; when set,
        every transition is journaled and :meth:`recover` resumes work
        after a restart.
    """

    def __init__(
        self,
        service: "AnalysisService",
        workers: int = 2,
        max_finished: int = 1024,
        journal: JobJournal | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.service = service
        self.workers = workers
        self.max_finished = max_finished
        self.journal = journal
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="hypdb-job"
        )
        # A Condition so readers can *block* on terminal transitions
        # (long-poll) instead of burning one request per poll interval;
        # every state change under the lock notifies the waiters.
        self._lock = threading.Condition()
        self._jobs: dict[str, Job] = {}  # insertion order = submission order
        self._active: dict[str, Job] = {}  # request key -> primary job
        self._ids = itertools.count(1)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        self._recovered = 0
        self._replay_skipped = 0
        #: Finished jobs silently dropped by the ``max_finished`` bound
        #: (no-silent-caps: the cap is visible on ``GET /metrics``).
        self._finished_evicted = 0
        self._closed = False
        self._register_metrics()

    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        """Expose the job counters on the owning service's ``/metrics``.

        Callback-backed views over the plain ints this manager already
        keeps under its condition lock -- the ``/stats`` shape stays
        untouched and nothing is double-counted.  Registration is
        idempotent with latest-callback-wins, so a rebuilt manager
        (journal recovery tests) re-binds the families to itself.
        """
        metrics = getattr(self.service, "metrics", None)
        if metrics is None:  # pragma: no cover - stub services in tests
            return
        counters = {
            "repro_jobs_submitted_total": ("jobs submitted", "_submitted"),
            "repro_jobs_completed_total": ("jobs completed", "_completed"),
            "repro_jobs_failed_total": ("jobs failed", "_failed"),
            "repro_jobs_coalesced_total": (
                "submissions coalesced onto an active job",
                "_coalesced",
            ),
            "repro_jobs_recovered_total": (
                "jobs resumed from the journal",
                "_recovered",
            ),
            "repro_jobs_replay_skipped_total": (
                "journal records skipped on replay",
                "_replay_skipped",
            ),
            "repro_jobs_finished_evicted_total": (
                "finished jobs evicted past the max_finished bound",
                "_finished_evicted",
            ),
        }
        for name, (help_text, attribute) in counters.items():
            metrics.counter(
                name,
                f"Job manager: {help_text}.",
                callback=(
                    lambda attribute=attribute: float(getattr(self, attribute))
                ),
            )
        metrics.gauge(
            "repro_jobs_retained",
            "Job manager: job records currently retained.",
            callback=lambda: float(len(self._jobs)),
        )

    def submit(
        self, spec: RequestSpec, job_id: str | None = None, record: bool = True
    ) -> Job:
        """Queue one spec; returns the job record immediately.

        Raises :class:`~repro.service.registry.UnknownDatasetError` when
        the spec names an unregistered dataset (the submit-time check
        keeps addressing mistakes synchronous and 404-able).  A spec
        equal to an active job's coalesces onto it; a spec whose result
        is already cached completes without touching the worker pool.

        ``job_id`` pins the id (journal replay resubmits under original
        ids; an already-present id returns the existing job, which is
        what makes replay idempotent).  ``record=False`` suppresses the
        journal's ``submitted`` record -- replay must not re-append what
        it is replaying.
        """
        entry = self.service.registry.get(spec.dataset)
        key = spec.request_key(entry.fingerprint)
        cached = self.service.cache.peek(key)
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is closed")
            if job_id is not None and job_id in self._jobs:
                return self._jobs[job_id]
            if job_id is None:
                job_id = f"j{next(self._ids):08d}"
                while job_id in self._jobs:  # replayed ids may be interleaved
                    job_id = f"j{next(self._ids):08d}"
            self._submitted += 1
            job = Job(id=job_id, spec=spec, key=key, trace_id=TRACER.current_id())
            self._jobs[job.id] = job
            if self.journal is not None and record:
                # Journaled under the lock so the WAL's submission order
                # matches id assignment order.
                self.journal.record_submitted(job.id, spec.to_dict())
            primary = self._active.get(key)
            if primary is not None:
                job.primary = primary
                self._coalesced += 1
            elif cached is None:
                self._active[key] = job
                job.future = self._executor.submit(self._run, job)
            self._prune()
        if primary is None and cached is not None:
            # Warm path: serve through the normal read path (counting the
            # request, promoting disk entries) and finish synchronously --
            # no worker round-trip for a result that already exists.
            self._run(job)
        return job

    def get(self, job_id: str) -> Job:
        """The job record for ``job_id`` (:class:`UnknownJobError` if none)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def list(self, dataset: str | None = None, limit: int = 100) -> list[dict[str, Any]]:
        """Snapshots of the most recent ``limit`` jobs, oldest first.

        ``dataset`` filters on the spec's dataset name.
        """
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        with self._lock:
            jobs = list(self._jobs.values())
        if dataset is not None:
            jobs = [job for job in jobs if job.spec.dataset == dataset]
        return [job.snapshot() for job in jobs[-limit:]] if limit else []

    def wait_for(self, job_id: str, wait_seconds: float) -> Job:
        """Block up to ``wait_seconds`` for a terminal state (long-poll).

        Returns the job either way -- the caller inspects
        :meth:`Job.finished`.  Waiters sleep on the manager's condition
        variable and are woken by terminal transitions, so a long-poll
        costs one blocked thread, not a request per poll interval.
        Coalesced followers finish when their primary does: the primary's
        transition notifies every waiter, and ``finished()`` reads
        through the ``primary`` reference.
        """
        job = self.get(job_id)
        deadline = time.monotonic() + max(0.0, wait_seconds)
        with self._lock:
            while not job.finished():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
        return job

    def wait(self, job_id: str, timeout: float = 600.0, poll_interval: float = 0.01) -> Job:
        """Block until ``job_id`` reaches a terminal state (test helper).

        ``poll_interval`` is kept for signature compatibility; waiting is
        condition-variable-driven (see :meth:`wait_for`), not polled.
        """
        del poll_interval
        job = self.wait_for(job_id, timeout)
        if not job.finished():
            raise TimeoutError(f"job {job_id} not finished within {timeout}s")
        return job

    def stats(self) -> dict[str, Any]:
        """JSON-ready counters (surfaced under ``/stats``)."""
        with self._lock:
            statuses = [job._effective().status for job in self._jobs.values()]
            counters = {
                "workers": self.workers,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "queued": statuses.count(QUEUED),
                "running": statuses.count(RUNNING),
                "retained": len(self._jobs),
            }
            if self.journal is not None:
                counters["recovered"] = self._recovered
                counters["replay_skipped"] = self._replay_skipped
                counters["journal"] = self.journal.stats()
            return counters

    def recover(self) -> dict[str, int]:
        """Replay the journal: resume unfinished work, restore failures.

        Unfinished (and non-durably-finished) jobs resubmit under their
        original ids -- warm specs complete instantly off the result
        cache, cold ones recompute byte-identically.  ``failed`` records
        restore their terminal error state without recompute.  Job ids
        already present are skipped, so replaying twice changes nothing.
        Records whose dataset is not registered (or whose spec no longer
        parses) are skipped with a counter but stay journaled.
        """
        if self.journal is None:
            return {"resumed": 0, "restored_failed": 0, "skipped": 0, "corrupt": 0}
        state = self.journal.replay()
        highest = 0
        for job_id in state.records:
            match = re.fullmatch(r"j(\d+)", job_id)
            if match:
                highest = max(highest, int(match.group(1)))
        with self._lock:
            if highest:
                # Fresh ids start past every journaled id (collisions are
                # additionally guarded in submit, but gaps beat retries).
                self._ids = itertools.count(highest + 1)
            existing = set(self._jobs)
        resumed = restored = skipped = 0
        for job_id, record in state.records.items():
            if job_id in existing:
                continue
            if record.spec is None:
                skipped += 1
                continue
            try:
                spec = spec_from_dict(record.spec)
            except (SpecError, TypeError, ValueError):
                skipped += 1
                continue
            if record.status == JOURNAL_FAILED:
                job = Job(
                    id=job_id,
                    spec=spec,
                    key=record.key or "",
                    status=ERROR,
                    error=record.error,
                    error_status=record.error_status,
                    finished_at=time.time(),
                )
                with self._lock:
                    self._jobs[job_id] = job
                restored += 1
                continue
            try:
                self.submit(spec, job_id=job_id, record=False)
            except UnknownDatasetError:
                skipped += 1
                continue
            resumed += 1
        with self._lock:
            self._recovered += resumed
            self._replay_skipped += skipped
        return {
            "resumed": resumed,
            "restored_failed": restored,
            "skipped": skipped,
            "corrupt": state.corrupt_lines,
        }

    def close(self) -> None:
        """Stop accepting jobs; cancel what has not started, wait for the rest."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [job for job in self._active.values() if job.future is not None]
        for job in pending:
            if job.future.cancel():
                with self._lock:
                    job.status = CANCELLED
                    job.error = "service shutting down"
                    job.finished_at = time.time()
                    self._deactivate(job)
                    self._lock.notify_all()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------

    def _run(self, job: Job) -> None:
        """Worker body: execute the spec and record the outcome.

        Journal writes happen *outside* the condition lock (they fsync)
        and *before* the terminal transition notifies waiters, so a job
        a client observed as done is always recoverable.  The worker
        re-opens a trace under the submission's trace id, so the async
        execution's spans join the submitting request's distributed
        trace.
        """
        handle = TRACER.begin(job.trace_id)
        try:
            with TRACER.span("jobs.run", job_id=job.id, kind=job.spec.kind):
                self._run_traced(job)
        finally:
            TRACER.finish(handle)

    def _run_traced(self, job: Job) -> None:
        """The actual worker body (see :meth:`_run` for the trace shell)."""
        with self._lock:
            job.status = RUNNING
            job.started_at = time.time()
        if self.journal is not None:
            self.journal.record_started(job.id)
        try:
            result = self.service.execute(job.spec)
        except BaseException as error:  # noqa: BLE001 - recorded on the job
            message, status = _message(error), _error_status(error)
            if self.journal is not None:
                self.journal.record_failed(job.id, message, status)
                self.journal.maybe_compact(self.service.cache.on_disk)
            with self._lock:
                job.status = ERROR
                job.error = message
                job.error_status = status
                job.finished_at = time.time()
                self._failed += 1
                self._deactivate(job)
                self._lock.notify_all()
            return
        if self.journal is not None:
            self.journal.record_finished(job.id, job.key)
            self.journal.maybe_compact(self.service.cache.on_disk)
        with self._lock:
            job.result = result
            job.status = DONE
            job.finished_at = time.time()
            self._completed += 1
            self._deactivate(job)
            self._lock.notify_all()

    def _deactivate(self, job: Job) -> None:
        """Retire ``job`` from the active map (lock held).

        Only removes the entry when it still points at *this* job: a
        warm-path job never registered itself, and popping blindly could
        evict a different primary that claimed the key in the meantime
        (whose followers would then stop coalescing onto it).
        """
        if self._active.get(job.key) is job:
            del self._active[job.key]

    def _prune(self) -> None:
        """Drop the oldest finished jobs past ``max_finished`` (lock held)."""
        finished = [job_id for job_id, job in self._jobs.items() if job.finished()]
        excess = len(finished) - self.max_finished
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]
            self._finished_evicted += 1


def _error_status(error: BaseException) -> int:
    """Map an execution error onto the HTTP status the sync path would use."""
    if isinstance(error, (UnknownDatasetError, UnknownJobError)):
        return 404
    if isinstance(error, (SpecError, ValueError, TypeError)):
        return 400
    return 500


def _message(error: BaseException) -> str:
    if error.args and isinstance(error.args[0], str):
        return error.args[0]
    return f"{type(error).__name__}: {error}"
