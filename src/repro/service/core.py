"""The analysis service: request handlers over the registry and caches.

:class:`AnalysisService` is transport-independent -- the HTTP layer
(:mod:`repro.service.http`) and in-process callers (tests, benchmarks) go
through the same methods.  Every read request follows one shape:

1. resolve the dataset (registry -- shared tables, shared entropy caches);
2. derive the request key (fingerprint + kind + canonical params + seed);
3. serve from the result cache when possible (memory, then disk);
4. otherwise compute through the library with the service's execution
   engine, serialize canonically, store, and return.

Responses are :class:`ServiceResult` objects carrying the *bytes* of the
canonical JSON payload.  Because results are deterministic for a fixed
seed (engine- and worker-count-invariant), a cache hit returns exactly the
bytes the cold computation produced.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery
from repro.core.report import canonical_json_bytes, discovery_to_dict, json_value
from repro.engine import ExecutionEngine, resolve_engine
from repro.relation.groupby import group_by_average
from repro.relation.table import Table
from repro.service.cache import ResultCache
from repro.service.fingerprint import request_key
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.stats.base import DEFAULT_ALPHA, CITest
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest

#: Request kinds served through the result cache.
CACHED_KINDS = ("analyze", "query", "discover", "whatif")


def make_test(name: str, seed: int, engine: ExecutionEngine | None = None) -> CITest:
    """Build a conditional-independence test by CLI/service name."""
    if name == "chi2":
        return ChiSquaredTest()
    if name == "mit":
        return PermutationTest(
            n_permutations=1000, group_sampling="log", seed=seed, engine=engine
        )
    if name == "hymit":
        return HybridTest(n_permutations=1000, seed=seed, engine=engine)
    raise ValueError(f"unknown test {name!r}; expected one of hymit, chi2, mit")


@dataclass(frozen=True)
class ServiceResult:
    """One response: the canonical payload bytes plus cache provenance."""

    kind: str
    cached: bool
    payload: bytes
    elapsed_seconds: float

    @property
    def result(self) -> Any:
        """The payload parsed back into Python objects."""
        return json.loads(self.payload)


class AnalysisService:
    """Registry + result cache + execution engine behind one request API.

    Parameters
    ----------
    engine:
        Execution engine (or job count) shared by every request; a single
        service process fans statistical work across cores while threads
        handle concurrent clients.
    max_cache_entries:
        Capacity of the in-memory result-cache layer.
    disk_cache:
        Optional directory for the persistent result-cache layer.
    """

    def __init__(
        self,
        engine: ExecutionEngine | int | None = None,
        max_cache_entries: int = 256,
        disk_cache: str | None = None,
    ) -> None:
        self.engine = resolve_engine(engine)
        self.registry = DatasetRegistry()
        self.cache = ResultCache(max_entries=max_cache_entries, disk_dir=disk_cache)
        self.started_at = time.time()
        self._requests = 0
        self._requests_lock = threading.Lock()

    def close(self) -> None:
        """Shut the execution engine's worker pool down."""
        self.engine.close()

    # ------------------------------------------------------------------
    # Dataset registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        columns: Mapping[str, Sequence[Any]] | None = None,
        rows: Sequence[Sequence[Any]] | None = None,
        column_names: Sequence[str] | None = None,
        csv_path: str | None = None,
    ) -> dict[str, Any]:
        """Register a dataset from columns, rows, or a CSV file.

        Exactly one source must be given: ``columns`` (name -> values),
        ``rows`` with ``column_names``, or ``csv_path`` (server-local).
        Content identical to an already-registered table shares that
        table's instance -- and therefore its warm entropy caches.
        """
        sources = [columns is not None, rows is not None, csv_path is not None]
        if sum(sources) != 1:
            raise ValueError("provide exactly one of columns, rows, or csv_path")
        if columns is not None:
            table = Table.from_columns({str(k): list(v) for k, v in columns.items()})
        elif rows is not None:
            if column_names is None:
                raise ValueError("rows requires column_names")
            table = Table.from_rows(tuple(column_names), rows)
        else:
            table = Table.from_csv(csv_path)
        entry, reused = self.registry.register(name, table)
        return {
            "dataset": entry.name,
            "fingerprint": entry.fingerprint,
            "n_rows": entry.table.n_rows,
            "columns": list(entry.table.columns),
            "reused": reused,
        }

    # ------------------------------------------------------------------
    # Read requests (cached)
    # ------------------------------------------------------------------

    def analyze(
        self,
        dataset: str,
        sql: str,
        treatment: str | None = None,
        covariates: Sequence[str] | None = None,
        mediators: Sequence[str] | None = None,
        top_k: int = 2,
        explain_top_attributes: int = 2,
        compute_direct: bool = True,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """The full detect / explain / resolve pipeline for one query."""
        entry = self.registry.get(dataset)
        query = GroupByQuery.from_sql(sql, treatment=treatment)
        params = {
            "query": repr(query),
            "covariates": list(covariates) if covariates is not None else None,
            "mediators": list(mediators) if mediators is not None else None,
            "top_k": top_k,
            "explain_top_attributes": explain_top_attributes,
            "compute_direct": compute_direct,
            "alpha": alpha,
            "test": test,
        }

        def compute() -> dict[str, Any]:
            db = self._hypdb(entry, alpha=alpha, test=test, seed=seed)
            report = db.analyze(
                query,
                covariates=covariates,
                mediators=mediators,
                top_k=top_k,
                explain_top_attributes=explain_top_attributes,
                compute_direct=compute_direct,
            )
            return report.to_dict()

        return self._respond(entry, "analyze", params, seed, compute)

    def query(self, dataset: str, sql: str) -> ServiceResult:
        """Evaluate the (possibly biased) group-by-average query only."""
        entry = self.registry.get(dataset)
        query = GroupByQuery.from_sql(sql)
        params = {"query": repr(query)}

        def compute() -> dict[str, Any]:
            answer = group_by_average(
                entry.table, query.group_by_columns(), query.outcomes, where=query.where
            )
            return {
                "group_columns": list(answer.group_columns),
                "value_columns": list(answer.value_columns),
                "rows": [
                    {
                        "key": [json_value(value) for value in row.key],
                        "averages": [json_value(average) for average in row.averages],
                        "count": row.count,
                    }
                    for row in answer.rows
                ],
            }

        return self._respond(entry, "query", params, None, compute)

    def discover(
        self,
        dataset: str,
        treatment: str,
        outcome: str | None = None,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """Covariate discovery (the CD algorithm) for one treatment."""
        entry = self.registry.get(dataset)
        params = {"treatment": treatment, "outcome": outcome, "alpha": alpha, "test": test}

        def compute() -> dict[str, Any]:
            db = self._hypdb(entry, alpha=alpha, test=test, seed=seed)
            result = db.discoverer.discover(entry.table, treatment, outcome=outcome)
            return discovery_to_dict(result)

        return self._respond(entry, "discover", params, seed, compute)

    def whatif(
        self,
        dataset: str,
        treatment: str,
        outcome: str,
        covariates: Sequence[str] | None = None,
        where_sql: str | None = None,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """Interventional averages ``E[Y | do(T = t), where]`` (Sec. 8).

        ``where_sql`` is an optional SQL WHERE expression restricting the
        subpopulation, e.g. ``"Airport IN ('COS','MFE')"``.
        """
        entry = self.registry.get(dataset)
        where = _parse_where(where_sql, treatment, outcome)
        params = {
            "treatment": treatment,
            "outcome": outcome,
            "covariates": list(covariates) if covariates is not None else None,
            "where": where_sql,
            "alpha": alpha,
            "test": test,
        }

        def compute() -> dict[str, Any]:
            db = self._hypdb(entry, alpha=alpha, test=test, seed=seed)
            answer = db.what_if(treatment, outcome, covariates=covariates, where=where)
            return answer.to_dict()

        return self._respond(entry, "whatif", params, seed, compute)

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> list[ServiceResult]:
        """Run several read requests in order and return all results.

        Each item is ``{"kind": <analyze|query|discover|whatif>, ...}``
        with that kind's parameters.  Requests share the warm caches, so a
        batch repeating a (dataset, params, seed) triple pays once.
        """
        handlers: dict[str, Callable[..., ServiceResult]] = {
            "analyze": self.analyze,
            "query": self.query,
            "discover": self.discover,
            "whatif": self.whatif,
        }
        results: list[ServiceResult] = []
        for index, request in enumerate(requests):
            arguments = dict(request)
            kind = arguments.pop("kind", None)
            handler = handlers.get(kind)
            if handler is None:
                raise ValueError(
                    f"batch item {index}: unknown kind {kind!r}; "
                    f"expected one of {sorted(handlers)}"
                )
            results.append(handler(**arguments))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-ready service statistics (``/stats`` endpoint)."""
        with self._requests_lock:
            requests = self._requests
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": requests,
            "engine": type(self.engine).__name__,
            "jobs": getattr(self.engine, "jobs", 1),
            "datasets": self.registry.describe(),
            "filter_memo_entries": self.registry.filter_memo_size,
            "result_cache": self.cache.describe(),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _hypdb(self, entry: DatasetEntry, alpha: float, test: str, seed: int) -> HypDB:
        """A fresh HypDB bound to the shared table.

        Fresh per request so the RNG state depends only on the request's
        seed (never on request order); bound to the registry's table
        instance so entropy memos accumulate across requests.  WHERE
        views come from the registry's fingerprint-memoizing factory, so
        a repeated clause republishes on the dataset plane without the
        O(n) content re-hash.
        """
        return HypDB(
            entry.table,
            test=make_test(test, seed, self.engine),
            alpha=alpha,
            seed=seed,
            engine=self.engine,
            filter_source=lambda predicate: self.registry.filtered_table(
                entry, predicate
            ),
        )

    def _respond(
        self,
        entry: DatasetEntry,
        kind: str,
        params: Mapping[str, Any],
        seed: int | None,
        compute: Callable[[], Any],
    ) -> ServiceResult:
        with self._requests_lock:
            self._requests += 1
        key = request_key(entry.fingerprint, kind, params, seed)
        start = time.perf_counter()
        payload = self.cache.get(key)
        if payload is not None:
            return ServiceResult(
                kind=kind,
                cached=True,
                payload=payload,
                elapsed_seconds=time.perf_counter() - start,
            )
        payload = canonical_json_bytes(compute())
        self.cache.put(key, payload)
        return ServiceResult(
            kind=kind,
            cached=False,
            payload=payload,
            elapsed_seconds=time.perf_counter() - start,
        )


def _parse_where(where_sql: str | None, treatment: str, outcome: str):
    """Parse a bare SQL WHERE expression into a Predicate (or ``None``)."""
    if where_sql is None or not where_sql.strip():
        return None
    wrapped = (
        f"SELECT {treatment}, avg({outcome}) FROM t "
        f"WHERE {where_sql} GROUP BY {treatment}"
    )
    return GroupByQuery.from_sql(wrapped).where
