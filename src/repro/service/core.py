"""The analysis service: spec execution over the registry and caches.

:class:`AnalysisService` is transport-independent -- the HTTP layer
(:mod:`repro.service.http`), the async job manager
(:mod:`repro.service.jobs`), the batch planner
(:mod:`repro.service.planner`), and in-process callers (tests,
benchmarks) all go through :meth:`AnalysisService.execute` with a typed
:class:`~repro.service.spec.RequestSpec`.  Every read request follows
one shape:

1. resolve the dataset (registry -- shared tables, shared entropy caches);
2. derive the request key from the spec (fingerprint + kind + canonical
   params + seed);
3. serve from the result cache when possible (memory, then disk);
4. otherwise compute through the library with the service's execution
   engine -- *single-flight*: concurrent identical cold requests attach
   to one in-flight computation instead of racing it -- serialize
   canonically, store, and return.

Responses are :class:`ServiceResult` objects carrying the *bytes* of the
canonical JSON payload.  Because results are deterministic for a fixed
seed (engine- and worker-count-invariant), a cache hit -- and every
coalesced follower of an in-flight computation -- returns exactly the
bytes the cold computation produced.

The keyword methods (:meth:`analyze`, :meth:`query`, :meth:`discover`,
:meth:`whatif`) remain as thin shims that build the corresponding spec;
they are the v1 surface and keep their exact pre-spec semantics.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.hypdb import HypDB
from repro.core.report import canonical_json_bytes, discovery_to_dict, json_value
from repro.engine import ExecutionEngine, resolve_engine
from repro.engine.dataplane import PLANE_STATS
from repro.obs.metrics import GLOBAL_REGISTRY, MetricsRegistry, render_many
from repro.obs.trace import TRACER
from repro.relation.groupby import group_by_average
from repro.relation.table import KERNEL_COUNTERS, Table
from repro.service import faults
from repro.service.cache import ResultCache
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.service.spec import (
    SPEC_TYPES,
    AnalyzeSpec,
    DiscoverSpec,
    QuerySpec,
    RequestSpec,
    WhatIfSpec,
    parse_where,
)
from repro.stats.base import DEFAULT_ALPHA, CITest
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (jobs imports core)
    from repro.service.jobs import JobManager

#: Request kinds served through the result cache.
CACHED_KINDS = tuple(sorted(SPEC_TYPES))

#: Backwards-compatible alias (the helper moved to ``service.spec``).
_parse_where = parse_where


def build_table(
    columns: Mapping[str, Sequence[Any]] | None = None,
    rows: Sequence[Sequence[Any]] | None = None,
    column_names: Sequence[str] | None = None,
    csv_path: str | None = None,
) -> Table:
    """Build a :class:`Table` from one registration source.

    Exactly one of ``columns`` (name -> values), ``rows`` with
    ``column_names``, or ``csv_path`` (server-local) must be given.
    Shared by :meth:`AnalysisService.register` and the shard router
    (which fingerprints the table locally to pick the owning shard
    before forwarding the registration).
    """
    sources = [columns is not None, rows is not None, csv_path is not None]
    if sum(sources) != 1:
        raise ValueError("provide exactly one of columns, rows, or csv_path")
    if columns is not None:
        return Table.from_columns({str(k): list(v) for k, v in columns.items()})
    if rows is not None:
        if column_names is None:
            raise ValueError("rows requires column_names")
        return Table.from_rows(tuple(column_names), rows)
    return Table.from_csv(csv_path)


def make_test(name: str, seed: int, engine: ExecutionEngine | None = None) -> CITest:
    """Build a conditional-independence test by CLI/service name."""
    if name == "chi2":
        return ChiSquaredTest()
    if name == "mit":
        return PermutationTest(
            n_permutations=1000, group_sampling="log", seed=seed, engine=engine
        )
    if name == "hymit":
        return HybridTest(n_permutations=1000, seed=seed, engine=engine)
    raise ValueError(f"unknown test {name!r}; expected one of hymit, chi2, mit")


@dataclass(frozen=True)
class ServiceResult:
    """One response: the canonical payload bytes plus cache provenance.

    ``coalesced`` marks responses that attached to another request's
    in-flight computation (single-flight) -- the bytes are identical to
    that computation's; only the provenance differs.
    """

    kind: str
    cached: bool
    payload: bytes
    elapsed_seconds: float
    coalesced: bool = False

    @property
    def result(self) -> Any:
        """The payload parsed back into Python objects."""
        return json.loads(self.payload)


class _Flight:
    """One in-flight cold computation other threads can attach to."""

    __slots__ = ("done", "error", "payload")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload: bytes | None = None
        self.error: BaseException | None = None


class AnalysisService:
    """Registry + result cache + execution engine behind one request API.

    Parameters
    ----------
    engine:
        Execution engine (or job count) shared by every request; a single
        service process fans statistical work across cores while threads
        handle concurrent clients.
    max_cache_entries:
        Capacity of the in-memory result-cache layer.
    disk_cache:
        Optional directory for the persistent result-cache layer.
    job_workers:
        Worker threads of the async job manager (v2 jobs API); the
        manager itself is created lazily on first use, so synchronous
        callers never pay for it.
    max_jobs:
        Finished-job retention bound of the job manager.
    job_journal:
        Optional directory for the append-only job journal
        (``hypdb serve --job-journal``); restarts against the same
        directory resume unfinished jobs via :meth:`recover_jobs`.
    """

    def __init__(
        self,
        engine: ExecutionEngine | int | None = None,
        max_cache_entries: int = 256,
        disk_cache: str | None = None,
        job_workers: int = 2,
        max_jobs: int = 1024,
        job_journal: str | None = None,
    ) -> None:
        self.engine = resolve_engine(engine)
        self.registry = DatasetRegistry()
        # The instance metrics registry: per-service families live here
        # (shared with the result cache), process-wide families stay in
        # GLOBAL_REGISTRY; GET /metrics renders both.
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(
            max_entries=max_cache_entries, disk_dir=disk_cache, metrics=self.metrics
        )
        self.started_at = time.time()
        self._requests_total = self.metrics.counter(
            "repro_service_requests_total", "Requests served (all kinds)."
        )
        self._coalesced_total = self.metrics.counter(
            "repro_service_coalesced_total",
            "Requests that attached to another request's in-flight compute.",
        )
        self._v1_requests_total = self.metrics.counter(
            "repro_service_v1_requests_total",
            "Requests served through the deprecated v1 surface.",
        )
        self._request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "Service-side request latency by request kind.",
            labels=("kind",),
        )
        self.metrics.gauge(
            "repro_service_uptime_seconds",
            "Seconds since this service started.",
            callback=lambda: time.time() - self.started_at,
        )
        self.metrics.gauge(
            "repro_datasets",
            "Datasets currently registered.",
            callback=lambda: float(len(self.registry)),
        )
        self.metrics.gauge(
            "repro_filter_memo_entries",
            "Entries in the filtered-fingerprint memo.",
            callback=lambda: float(self.registry.filter_memo_size),
        )
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._job_workers = job_workers
        self._max_jobs = max_jobs
        self._job_journal = job_journal
        self._job_manager: JobManager | None = None
        self._job_manager_lock = threading.Lock()
        self._closed = False

    def close(self) -> None:
        """Shut the job manager and the execution engine's pool down."""
        with self._job_manager_lock:
            manager, self._job_manager = self._job_manager, None
            self._closed = True
        if manager is not None:
            manager.close()
        self.engine.close()

    @property
    def job_manager(self) -> "JobManager":
        """The async job manager (v2 jobs API), created on first use."""
        with self._job_manager_lock:
            if self._closed:
                # A request racing shutdown must not resurrect a manager
                # (leaked worker threads against a closed engine).
                raise RuntimeError("service is closed")
            if self._job_manager is None:
                from repro.service.jobs import JobManager
                from repro.service.journal import JobJournal

                journal = (
                    JobJournal(self._job_journal) if self._job_journal else None
                )
                self._job_manager = JobManager(
                    self,
                    workers=self._job_workers,
                    max_finished=self._max_jobs,
                    journal=journal,
                )
            return self._job_manager

    def recover_jobs(self) -> dict[str, int]:
        """Replay the job journal (no-op without ``job_journal``).

        Returns the :meth:`~repro.service.jobs.JobManager.recover`
        summary: resumed / restored_failed / skipped / corrupt counts.
        """
        if self._job_journal is None:
            return {"resumed": 0, "restored_failed": 0, "skipped": 0, "corrupt": 0}
        return self.job_manager.recover()

    # ------------------------------------------------------------------
    # Dataset registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        columns: Mapping[str, Sequence[Any]] | None = None,
        rows: Sequence[Sequence[Any]] | None = None,
        column_names: Sequence[str] | None = None,
        csv_path: str | None = None,
    ) -> dict[str, Any]:
        """Register a dataset from columns, rows, or a CSV file.

        Exactly one source must be given: ``columns`` (name -> values),
        ``rows`` with ``column_names``, or ``csv_path`` (server-local).
        Content identical to an already-registered table shares that
        table's instance -- and therefore its warm entropy caches.
        """
        table = build_table(
            columns=columns, rows=rows, column_names=column_names, csv_path=csv_path
        )
        entry, reused = self.registry.register(name, table)
        return {
            "dataset": entry.name,
            "fingerprint": entry.fingerprint,
            "n_rows": entry.table.n_rows,
            "columns": list(entry.table.columns),
            "reused": reused,
        }

    # ------------------------------------------------------------------
    # Spec execution (the one read path)
    # ------------------------------------------------------------------

    def execute(self, spec: RequestSpec) -> ServiceResult:
        """Run one spec: cache lookup, single-flight, or cold compute."""
        entry = self.registry.get(spec.dataset)
        return self._respond(entry, spec)

    # -- v1 keyword shims ----------------------------------------------

    def analyze(
        self,
        dataset: str,
        sql: str,
        treatment: str | None = None,
        covariates: Sequence[str] | None = None,
        mediators: Sequence[str] | None = None,
        top_k: int = 2,
        explain_top_attributes: int = 2,
        compute_direct: bool = True,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """The full detect / explain / resolve pipeline for one query."""
        return self.execute(
            AnalyzeSpec(
                dataset=dataset,
                sql=sql,
                treatment=treatment,
                covariates=covariates,
                mediators=mediators,
                top_k=top_k,
                explain_top_attributes=explain_top_attributes,
                compute_direct=compute_direct,
                alpha=alpha,
                test=test,
                seed=seed,
            )
        )

    def query(self, dataset: str, sql: str) -> ServiceResult:
        """Evaluate the (possibly biased) group-by-average query only."""
        return self.execute(QuerySpec(dataset=dataset, sql=sql))

    def discover(
        self,
        dataset: str,
        treatment: str,
        outcome: str | None = None,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """Covariate discovery (the CD algorithm) for one treatment."""
        return self.execute(
            DiscoverSpec(
                dataset=dataset,
                treatment=treatment,
                outcome=outcome,
                alpha=alpha,
                test=test,
                seed=seed,
            )
        )

    def whatif(
        self,
        dataset: str,
        treatment: str,
        outcome: str,
        covariates: Sequence[str] | None = None,
        where_sql: str | None = None,
        alpha: float = DEFAULT_ALPHA,
        test: str = "hymit",
        seed: int = 0,
    ) -> ServiceResult:
        """Interventional averages ``E[Y | do(T = t), where]`` (Sec. 8).

        ``where_sql`` is an optional SQL WHERE expression restricting the
        subpopulation, e.g. ``"Airport IN ('COS','MFE')"``.
        """
        return self.execute(
            WhatIfSpec(
                dataset=dataset,
                treatment=treatment,
                outcome=outcome,
                covariates=covariates,
                where_sql=where_sql,
                alpha=alpha,
                test=test,
                seed=seed,
            )
        )

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> list[ServiceResult]:
        """Run several read requests in order and return all results.

        Each item is ``{"kind": <analyze|query|discover|whatif>, ...}``
        with that kind's parameters.  This is the v1 surface: strictly
        sequential, in submission order (the v2 planner in
        :mod:`repro.service.planner` adds grouping, ordering, and
        dedup).  Requests share the warm caches, so a batch repeating a
        (dataset, params, seed) triple pays once.
        """
        results: list[ServiceResult] = []
        for index, request in enumerate(requests):
            arguments = dict(request)
            kind = arguments.pop("kind", None)
            spec_type = SPEC_TYPES.get(kind)
            if spec_type is None:
                raise ValueError(
                    f"batch item {index}: unknown kind {kind!r}; "
                    f"expected one of {sorted(SPEC_TYPES)}"
                )
            results.append(self.execute(spec_type.from_dict(arguments)))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def datasets(self) -> dict[str, Any]:
        """The dataset catalog (``GET /v2/datasets`` payload)."""
        return self.registry.catalog()

    def note_v1_request(self) -> None:
        """Count one request served through the deprecated v1 surface.

        The HTTP layer calls this from the v1 dispatch so operators can
        watch ``/stats``'s ``v1_requests`` settle to zero before dropping
        the deprecated endpoints.
        """
        self._v1_requests_total.inc()

    def render_metrics(self) -> str:
        """The Prometheus-text exposition (``GET /metrics`` endpoint).

        Concatenates this service's instance registry (requests, cache,
        jobs) with the process-global one (kernel counters, dataset
        plane) -- together they cover everything ``/stats`` reports,
        plus the request-latency histogram ``/stats`` cannot express.
        """
        return render_many([self.metrics, GLOBAL_REGISTRY])

    def stats(self) -> dict[str, Any]:
        """JSON-ready service statistics (``/stats`` endpoint)."""
        requests = int(self._requests_total.value())
        coalesced = int(self._coalesced_total.value())
        v1_requests = int(self._v1_requests_total.value())
        with self._job_manager_lock:
            manager = self._job_manager
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": requests,
            "coalesced": coalesced,
            "v1_requests": v1_requests,
            "engine": type(self.engine).__name__,
            "jobs": getattr(self.engine, "jobs", 1),
            "datasets": self.registry.describe(),
            "filter_memo_entries": self.registry.filter_memo_size,
            "result_cache": self.cache.describe(),
            "dataset_plane": PLANE_STATS.as_dict(),
            "job_manager": manager.stats() if manager is not None else None,
            # Process-local counting-kernel passes: lets a cluster test
            # assert "this shard answered warm" (counters unchanged)
            # without reaching into a spawned process.
            "kernel_counters": {
                "joint_counts_scans": KERNEL_COUNTERS.joint_counts_scans,
                "grouped_passes": KERNEL_COUNTERS.grouped_passes,
                "total": KERNEL_COUNTERS.total(),
            },
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _hypdb(self, entry: DatasetEntry, alpha: float, test: str, seed: int) -> HypDB:
        """A fresh HypDB bound to the shared table.

        Fresh per request so the RNG state depends only on the request's
        seed (never on request order); bound to the registry's table
        instance so entropy memos accumulate across requests.  WHERE
        views come from the registry's fingerprint-memoizing factory, so
        a repeated clause republishes on the dataset plane without the
        O(n) content re-hash.
        """
        return HypDB(
            entry.table,
            test=make_test(test, seed, self.engine),
            alpha=alpha,
            seed=seed,
            engine=self.engine,
            filter_source=lambda predicate: self.registry.filtered_table(
                entry, predicate
            ),
        )

    def _compute(self, spec: RequestSpec, entry: DatasetEntry) -> Any:
        """Cold computation of one spec through the library."""
        if isinstance(spec, AnalyzeSpec):
            db = self._hypdb(entry, alpha=spec.alpha, test=spec.test, seed=spec.seed)
            report = db.analyze(
                spec.query(),
                covariates=spec.covariates,
                mediators=spec.mediators,
                top_k=spec.top_k,
                explain_top_attributes=spec.explain_top_attributes,
                compute_direct=spec.compute_direct,
            )
            return report.to_dict()
        if isinstance(spec, QuerySpec):
            query = spec.query()
            answer = group_by_average(
                entry.table, query.group_by_columns(), query.outcomes, where=query.where
            )
            return {
                "group_columns": list(answer.group_columns),
                "value_columns": list(answer.value_columns),
                "rows": [
                    {
                        "key": [json_value(value) for value in row.key],
                        "averages": [json_value(average) for average in row.averages],
                        "count": row.count,
                    }
                    for row in answer.rows
                ],
            }
        if isinstance(spec, DiscoverSpec):
            db = self._hypdb(entry, alpha=spec.alpha, test=spec.test, seed=spec.seed)
            result = db.discoverer.discover(
                entry.table, spec.treatment, outcome=spec.outcome
            )
            return discovery_to_dict(result)
        if isinstance(spec, WhatIfSpec):
            db = self._hypdb(entry, alpha=spec.alpha, test=spec.test, seed=spec.seed)
            answer = db.what_if(
                spec.treatment,
                spec.outcome,
                covariates=spec.covariates,
                where=spec.where(),
            )
            return answer.to_dict()
        raise ValueError(f"unsupported spec type {type(spec).__name__}")

    def _respond(self, entry: DatasetEntry, spec: RequestSpec) -> ServiceResult:
        self._requests_total.inc()
        key = spec.request_key(entry.fingerprint)
        with TRACER.span(
            "service.execute", kind=spec.kind, dataset=spec.dataset, key=key
        ) as span:
            passes_before = KERNEL_COUNTERS.total()
            result = self._respond_inner(entry, spec, key)
            span.set(
                cached=result.cached,
                coalesced=result.coalesced,
                # Cached/coalesced answers by definition ran zero kernel
                # passes; a cold answer reports the process-wide delta
                # (concurrent requests can inflate it, never deflate it).
                kernel_passes=(
                    0 if result.cached else KERNEL_COUNTERS.total() - passes_before
                ),
            )
            self._request_seconds.observe(result.elapsed_seconds, kind=spec.kind)
            return result

    def _respond_inner(
        self, entry: DatasetEntry, spec: RequestSpec, key: str
    ) -> ServiceResult:
        start = time.perf_counter()
        payload = self.cache.get(key)
        if payload is not None:
            return ServiceResult(
                kind=spec.kind,
                cached=True,
                payload=payload,
                elapsed_seconds=time.perf_counter() - start,
            )
        # Single-flight: the first thread to miss becomes the leader and
        # computes; concurrent identical requests attach to its flight and
        # receive the same canonical bytes without touching the engine.
        with self._flights_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            flight.done.wait()
            self._coalesced_total.inc()
            if flight.error is not None:
                raise flight.error
            return ServiceResult(
                kind=spec.kind,
                cached=True,
                payload=flight.payload,
                elapsed_seconds=time.perf_counter() - start,
                coalesced=True,
            )
        # Recheck the cache after winning leadership: a thread that missed
        # while another flight for this key was landing would otherwise
        # redo the whole cold computation the moment that flight retired.
        payload = self.cache.get(key)
        if payload is not None:
            flight.payload = payload
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.done.set()
            return ServiceResult(
                kind=spec.kind,
                cached=True,
                payload=payload,
                elapsed_seconds=time.perf_counter() - start,
            )
        try:
            # Fault site for the chaos tests: a `slow` rule pins this
            # request mid-compute; a `kill` rule crashes the process here.
            faults.crash_point("service.compute", kind=spec.kind, dataset=spec.dataset)
            payload = canonical_json_bytes(self._compute(spec, entry))
            self.cache.put(key, payload)
            flight.payload = payload
        except BaseException as error:
            # Followers re-raise the identical error; an error is not
            # cached, so the next non-concurrent request retries.
            flight.error = error
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.done.set()
        return ServiceResult(
            kind=spec.kind,
            cached=False,
            payload=payload,
            elapsed_seconds=time.perf_counter() - start,
        )
