"""The job journal: an append-only JSONL write-ahead log for async jobs.

Async jobs were process-local state — a restart (or a shard crash)
silently forgot every queued and running job.  The journal makes the
jobs API durable with the same discipline as the disk result cache
(`service/cache.py`): every state transition is one self-contained JSON
line appended with flush + ``fsync``, compaction rewrites through a
pid/thread-unique temp file and ``os.replace`` so readers never see a
half-written file, and I/O errors degrade (counted, not raised) rather
than failing the request path.

Record grammar, one JSON object per line, keyed by job id::

    {"type": "submitted", "job_id": "j00000001", "spec": {…}}
    {"type": "started",   "job_id": "j00000001"}
    {"type": "finished",  "job_id": "j00000001", "key": "<request key>"}
    {"type": "failed",    "job_id": "j00000001", "error": "…", "error_status": 500}

Replay (:meth:`JobJournal.replay`) folds the lines into the last state
per job id; it is a pure function of the file bytes, so replaying twice
changes nothing (pinned by ``tests/service/test_durable_jobs.py``).
Corrupt or truncated lines — a torn final write from a crash, or
interleaved partial records — are skipped and counted, never fatal, and
:meth:`_heal_tail` terminates a torn trailing line on open so the next
append starts a fresh record instead of gluing onto garbage.

Compaction drops records that no longer carry information: failed jobs
and finished jobs **whose result bytes are durably in the disk result
cache**.  A finished record whose bytes never reached disk (the write
was torn or errored) is kept so a restart re-runs the spec — results
are deterministic, so the recompute is byte-identical.

:class:`RouterJournal` applies the same discipline (fsync'd JSONL
appends, tail healing, pure-fold replay, atomic compaction) to the
*router's* state: cluster membership, dataset registrations, and the
routed-job id table, so a restarted router resolves every public job id
it ever handed out — see the record grammar on the class.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.service import faults

#: Record types, in lifecycle order.
SUBMITTED = "submitted"
STARTED = "started"
FINISHED = "finished"
FAILED = "failed"

_TYPES = (SUBMITTED, STARTED, FINISHED, FAILED)
_TERMINAL = (FINISHED, FAILED)


@dataclass
class JournalRecord:
    """The folded (last-known) journal state of one job id."""

    job_id: str
    spec: dict | None
    status: str = SUBMITTED
    key: str | None = None
    error: str | None = None
    error_status: int = 500


@dataclass
class JournalState:
    """The result of a replay: per-job records plus corruption counters."""

    records: dict[str, JournalRecord] = field(default_factory=dict)
    corrupt_lines: int = 0

    @property
    def unfinished(self) -> list[JournalRecord]:
        """Records whose jobs never reached a terminal state."""
        return [
            record
            for record in self.records.values()
            if record.status not in _TERMINAL
        ]


class JobJournal:
    """Append-only JSONL journal under ``directory`` (file ``jobs.jsonl``).

    Thread-safe: appends and compactions serialize on one lock.  All
    I/O failures degrade to counters (``write_errors``) so the journal
    can never fail a request — durability weakens, results do not.

    Parameters
    ----------
    directory:
        Journal directory; created if missing.
    compact_every:
        Terminal records between automatic compactions (via
        :meth:`maybe_compact`).
    """

    def __init__(self, directory: str | os.PathLike, compact_every: int = 256) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._path = self._dir / "jobs.jsonl"
        self._lock = threading.Lock()
        self._compact_every = max(1, compact_every)
        self._terminal_since_compact = 0
        self.appended = 0
        self.compactions = 0
        self.write_errors = 0
        self.corrupt_skipped = 0  # corrupt lines seen by the last replay
        self._heal_tail()

    @property
    def path(self) -> Path:
        """The journal file path (``<directory>/jobs.jsonl``)."""
        return self._path

    # -- appends -------------------------------------------------------

    def record_submitted(self, job_id: str, spec_dict: dict) -> None:
        """Journal a submission (the spec travels with it, for replay)."""
        self._append({"type": SUBMITTED, "job_id": job_id, "spec": spec_dict})

    def record_started(self, job_id: str) -> None:
        """Journal the queued -> running transition."""
        self._append({"type": STARTED, "job_id": job_id})

    def record_finished(self, job_id: str, key: str) -> None:
        """Journal completion, carrying the result-cache request key."""
        self._append({"type": FINISHED, "job_id": job_id, "key": key})
        with self._lock:
            self._terminal_since_compact += 1

    def record_failed(self, job_id: str, error: str, error_status: int) -> None:
        """Journal a terminal failure with its message and HTTP status."""
        self._append(
            {
                "type": FAILED,
                "job_id": job_id,
                "error": error,
                "error_status": error_status,
            }
        )
        with self._lock:
            self._terminal_since_compact += 1

    def _append(self, record: dict) -> None:
        """One atomic-enough append: single write, flush, fsync.

        A crash can tear the trailing line (the fault harness simulates
        exactly that via the ``journal.append`` site); replay skips the
        partial record and :meth:`_heal_tail` re-terminates the file.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        data, _ = faults.torn_write("journal.append", line.encode("utf-8"))
        with self._lock:
            try:
                with open(self._path, "ab") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                self.write_errors += 1
                return
            self.appended += 1

    def _heal_tail(self) -> None:
        """Terminate a torn trailing line left by a previous process.

        Without this, the first append after a crash would glue onto the
        partial record and corrupt *itself* too; with it, exactly the
        torn line is lost (skipped + counted by replay).
        """
        try:
            if not self._path.exists() or self._path.stat().st_size == 0:
                return
            with open(self._path, "rb+") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            self.write_errors += 1

    # -- replay --------------------------------------------------------

    def replay(self) -> JournalState:
        """Fold the journal into the last-known state per job id.

        Pure function of the file bytes: unparseable lines, unknown
        record types, and transitions for ids whose ``submitted`` record
        was lost are all skipped and counted in ``corrupt_lines``.
        """
        with self._lock:
            state = self._replay_locked()
        self.corrupt_skipped = state.corrupt_lines
        return state

    def _lines(self) -> Iterator[tuple[dict, bool]]:
        """Yield ``(parsed, corrupt)`` per journal line, tolerating a torn tail."""
        try:
            raw = self._path.read_bytes()
        except OSError:
            return
        for index, line in enumerate(raw.split(b"\n")):
            if not line:
                continue
            # A final line without a newline terminator is a torn write.
            torn_tail = index == raw.count(b"\n") and not raw.endswith(b"\n")
            try:
                parsed = json.loads(line)
            except ValueError:
                yield {}, True
                continue
            if torn_tail or not isinstance(parsed, dict):
                yield {}, True
                continue
            yield parsed, False

    # -- compaction ----------------------------------------------------

    def maybe_compact(self, durable: Callable[[str], bool] | None = None) -> bool:
        """Compact when enough terminal records accumulated; returns whether."""
        with self._lock:
            due = self._terminal_since_compact >= self._compact_every
        if due:
            self.compact(durable)
        return due

    def compact(self, durable: Callable[[str], bool] | None = None) -> dict:
        """Rewrite the journal down to its informative records, atomically.

        Keeps every non-terminal job (submitted + started records) and —
        the retention-vs-durability fix — every *finished* job whose
        result bytes ``durable(key)`` cannot vouch for: dropping those
        would lose the only remaining path back to the result.  Failed
        and durably-finished jobs compact away, mirroring the in-memory
        retention bound.  With no ``durable`` probe, finished records
        are conservatively kept.
        """
        with self._lock:
            state = self._replay_locked()
            lines: list[str] = []
            dropped = 0
            for record in state.records.values():
                if record.status == FAILED:
                    dropped += 1
                    continue
                if record.status == FINISHED:
                    safe = (
                        durable is not None
                        and record.key is not None
                        and durable(record.key)
                    )
                    if safe:
                        dropped += 1
                        continue
                lines.append(
                    json.dumps(
                        {"type": SUBMITTED, "job_id": record.job_id, "spec": record.spec},
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
                if record.status == STARTED:
                    lines.append(
                        json.dumps(
                            {"type": STARTED, "job_id": record.job_id},
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                    )
                elif record.status == FINISHED:
                    lines.append(
                        json.dumps(
                            {
                                "type": FINISHED,
                                "job_id": record.job_id,
                                "key": record.key,
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                    )
            payload = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
            temporary = self._dir / f".jobs.{os.getpid()}.{threading.get_ident()}.tmp"
            try:
                with open(temporary, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temporary, self._path)
            except OSError:
                self.write_errors += 1
                try:
                    temporary.unlink()
                except OSError:
                    pass
                return {"kept": len(state.records), "dropped": 0, "written": False}
            self.compactions += 1
            self._terminal_since_compact = 0
            return {
                "kept": len(state.records) - dropped,
                "dropped": dropped,
                "written": True,
            }

    def _replay_locked(self) -> JournalState:
        """Replay under the lock (compaction needs a stable snapshot)."""
        state = JournalState()
        for parsed, corrupt in self._lines():
            if corrupt:
                state.corrupt_lines += 1
                continue
            kind = parsed.get("type")
            job_id = parsed.get("job_id")
            if kind not in _TYPES or not isinstance(job_id, str):
                state.corrupt_lines += 1
                continue
            record = state.records.get(job_id)
            if kind == SUBMITTED:
                spec = parsed.get("spec")
                if not isinstance(spec, dict):
                    state.corrupt_lines += 1
                    continue
                if record is None:
                    state.records[job_id] = JournalRecord(job_id=job_id, spec=spec)
                else:
                    record.spec = spec
                continue
            if record is None:
                state.corrupt_lines += 1
                continue
            record.status = kind
            if kind == FINISHED:
                record.key = parsed.get("key")
            elif kind == FAILED:
                record.error = parsed.get("error")
                status = parsed.get("error_status")
                record.error_status = status if isinstance(status, int) else 500
        return state

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Journal counters for ``GET /stats``."""
        return {
            "path": str(self._path),
            "appended": self.appended,
            "compactions": self.compactions,
            "write_errors": self.write_errors,
            "corrupt_skipped": self.corrupt_skipped,
        }


# ----------------------------------------------------------------------
# The router journal
# ----------------------------------------------------------------------

#: Router-journal record types.
MEMBER = "member"
MEMBER_LEFT = "member_left"
DATASET = "dataset"
JOB = "job"
JOB_TERMINAL = "job_terminal"

_ROUTER_TYPES = (MEMBER, MEMBER_LEFT, DATASET, JOB, JOB_TERMINAL)


@dataclass
class RouterJournalState:
    """The folded router-journal state: members, datasets, routed jobs."""

    members: dict[str, str] = field(default_factory=dict)  # node -> url
    datasets: dict[str, dict] = field(default_factory=dict)  # name -> record
    jobs: dict[str, dict] = field(default_factory=dict)  # public id -> record
    corrupt_lines: int = 0


class RouterJournal:
    """Durable router state: membership, registrations, the job id table.

    Same write-ahead discipline as :class:`JobJournal` — one
    self-contained JSON line per event, appended with flush + ``fsync``
    under a lock, torn tails healed on open, replay a pure fold, atomic
    compaction — applied to the router tier, closing the last
    restart-amnesia gap: a restarted router recovers its cluster
    members, its dataset catalog (with verbatim register bodies for
    re-registration), and every ``RoutedJob`` it handed a public id
    for, so ``GET /v2/jobs/<id>`` keeps resolving byte-identically
    across a router restart.

    Record grammar, one JSON object per line::

        {"type": "member",       "node": "n1", "url": "http://…"}
        {"type": "member_left",  "node": "n1"}
        {"type": "dataset",      "name": …, "fingerprint": …, "columns": […],
                                 "n_rows": N, "body": "<verbatim register JSON>",
                                 "locations": […]}
        {"type": "job",          "public_id": …, "body": "<verbatim submit JSON>",
                                 "fingerprint": …, "key": …, "shard": …, "local_id": …}
        {"type": "job_terminal", "public_id": …}

    A re-homed job (failover) re-appends its ``job`` record with the new
    home; replay keeps the last one.  Bodies are stored as UTF-8 text of
    the verbatim request bytes — the resurrection recipes survive the
    round-trip byte-for-byte because they are JSON text already.
    """

    def __init__(self, directory: str | os.PathLike, compact_every: int = 512) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._path = self._dir / "router.jsonl"
        self._lock = threading.Lock()
        self._compact_every = max(1, compact_every)
        self._since_compact = 0
        self.appended = 0
        self.compactions = 0
        self.write_errors = 0
        self.corrupt_skipped = 0
        self._heal_tail()

    @property
    def path(self) -> Path:
        """The journal file path (``<directory>/router.jsonl``)."""
        return self._path

    # -- appends -------------------------------------------------------

    def record_member(self, node: str, url: str) -> None:
        """Journal an admitted (or re-admitted, URL-changed) member."""
        self._append({"type": MEMBER, "node": node, "url": url})

    def record_member_left(self, node: str) -> None:
        """Journal a graceful leave (the member is forgotten on replay)."""
        self._append({"type": MEMBER_LEFT, "node": node})

    def record_dataset(
        self,
        name: str,
        fingerprint: str,
        columns: list[str],
        n_rows: int,
        body: bytes,
        locations: list[str],
    ) -> None:
        """Journal one registration: catalog fields + the verbatim body."""
        self._append(
            {
                "type": DATASET,
                "name": name,
                "fingerprint": fingerprint,
                "columns": list(columns),
                "n_rows": n_rows,
                "body": body.decode("utf-8"),
                "locations": list(locations),
            }
        )

    def record_job(
        self,
        public_id: str,
        body: bytes,
        fingerprint: str | None,
        key: str | None,
        shard: str,
        local_id: str,
    ) -> None:
        """Journal one routed job's current home (re-appended on failover)."""
        self._append(
            {
                "type": JOB,
                "public_id": public_id,
                "body": body.decode("utf-8"),
                "fingerprint": fingerprint,
                "key": key,
                "shard": shard,
                "local_id": local_id,
            }
        )

    def record_job_terminal(self, public_id: str) -> None:
        """Journal that a job's last observed snapshot was terminal."""
        self._append({"type": JOB_TERMINAL, "public_id": public_id})

    def _append(self, record: dict) -> None:
        """One fsync'd append (same contract as :meth:`JobJournal._append`)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        data, _ = faults.torn_write("journal.append", line.encode("utf-8"))
        with self._lock:
            try:
                with open(self._path, "ab") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                self.write_errors += 1
                return
            self.appended += 1
            self._since_compact += 1

    def _heal_tail(self) -> None:
        """Terminate a torn trailing line left by a crashed process."""
        try:
            if not self._path.exists() or self._path.stat().st_size == 0:
                return
            with open(self._path, "rb+") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            self.write_errors += 1

    # -- replay --------------------------------------------------------

    def replay(self) -> RouterJournalState:
        """Fold the journal into the last-known router state (pure)."""
        with self._lock:
            state = self._replay_locked()
        self.corrupt_skipped = state.corrupt_lines
        return state

    def _lines(self) -> Iterator[tuple[dict, bool]]:
        """Yield ``(parsed, corrupt)`` per line, tolerating a torn tail."""
        try:
            raw = self._path.read_bytes()
        except OSError:
            return
        for index, line in enumerate(raw.split(b"\n")):
            if not line:
                continue
            torn_tail = index == raw.count(b"\n") and not raw.endswith(b"\n")
            try:
                parsed = json.loads(line)
            except ValueError:
                yield {}, True
                continue
            if torn_tail or not isinstance(parsed, dict):
                yield {}, True
                continue
            yield parsed, False

    def _replay_locked(self) -> RouterJournalState:
        state = RouterJournalState()
        for parsed, corrupt in self._lines():
            if corrupt:
                state.corrupt_lines += 1
                continue
            kind = parsed.get("type")
            if kind == MEMBER:
                node, url = parsed.get("node"), parsed.get("url")
                if not isinstance(node, str) or not isinstance(url, str):
                    state.corrupt_lines += 1
                    continue
                state.members[node] = url
            elif kind == MEMBER_LEFT:
                node = parsed.get("node")
                if not isinstance(node, str):
                    state.corrupt_lines += 1
                    continue
                state.members.pop(node, None)
            elif kind == DATASET:
                name = parsed.get("name")
                if not isinstance(name, str) or not isinstance(
                    parsed.get("body"), str
                ):
                    state.corrupt_lines += 1
                    continue
                state.datasets[name] = parsed
            elif kind == JOB:
                public_id = parsed.get("public_id")
                if not isinstance(public_id, str) or not isinstance(
                    parsed.get("body"), str
                ):
                    state.corrupt_lines += 1
                    continue
                terminal = state.jobs.get(public_id, {}).get("terminal", False)
                record = dict(parsed)
                record["terminal"] = terminal
                state.jobs[public_id] = record
            elif kind == JOB_TERMINAL:
                public_id = parsed.get("public_id")
                record = (
                    state.jobs.get(public_id)
                    if isinstance(public_id, str)
                    else None
                )
                if record is None:
                    state.corrupt_lines += 1
                    continue
                record["terminal"] = True
            else:
                state.corrupt_lines += 1
        return state

    # -- compaction ----------------------------------------------------

    def maybe_compact(self) -> bool:
        """Compact once enough appends accumulated; returns whether."""
        with self._lock:
            due = self._since_compact >= self._compact_every
        if due:
            self.compact()
        return due

    def compact(self) -> dict:
        """Rewrite the journal down to the folded state, atomically.

        One ``member`` line per current member, one ``dataset`` line per
        catalog entry, one ``job`` line (plus a ``job_terminal`` marker
        where observed) per routed job — superseded re-homes, left
        members, and replaced registrations compact away.
        """
        with self._lock:
            state = self._replay_locked()
            before = state.corrupt_lines + sum(
                (
                    len(state.members),
                    len(state.datasets),
                    len(state.jobs),
                    sum(1 for job in state.jobs.values() if job["terminal"]),
                )
            )
            lines: list[str] = []
            for node, url in state.members.items():
                lines.append(_compact_line({"type": MEMBER, "node": node, "url": url}))
            for record in state.datasets.values():
                lines.append(
                    _compact_line({key: record[key] for key in record if key != "terminal"})
                )
            for record in state.jobs.values():
                terminal = record.get("terminal", False)
                lines.append(
                    _compact_line(
                        {key: record[key] for key in record if key != "terminal"}
                    )
                )
                if terminal:
                    lines.append(
                        _compact_line(
                            {"type": JOB_TERMINAL, "public_id": record["public_id"]}
                        )
                    )
            payload = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
            temporary = (
                self._dir / f".router.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            try:
                with open(temporary, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temporary, self._path)
            except OSError:
                self.write_errors += 1
                try:
                    temporary.unlink()
                except OSError:
                    pass
                return {"kept": before, "written": False}
            self.compactions += 1
            self._since_compact = 0
            return {"kept": len(lines), "written": True}

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Journal counters for ``GET /stats``."""
        return {
            "path": str(self._path),
            "appended": self.appended,
            "compactions": self.compactions,
            "write_errors": self.write_errors,
            "corrupt_skipped": self.corrupt_skipped,
        }


def _compact_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))
