"""The dataset registry: load once, fingerprint, share entropy caches.

Every request names a registered dataset.  The registry deduplicates by
content fingerprint: registering the same data twice (under the same or a
different name) binds both names to one :class:`Table` *instance*, so the
entropy memos that instance accumulates (paper Sec. 6, "Caching entropy")
serve every alias and every subsequent request.  This is the service's
first cache level -- below the result cache, above the raw data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import TRACER
from repro.relation.table import Table
from repro.service.fingerprint import fingerprint_table


class UnknownDatasetError(KeyError):
    """Lookup of a dataset name that was never registered.

    Subclasses ``KeyError`` for callers doing dict-style handling, but
    gives the HTTP layer a precise type to map to 404 (a bare ``KeyError``
    from deeper library code is a server bug, not a client error).
    """


@dataclass
class DatasetEntry:
    """One registered dataset: a named, fingerprinted table."""

    name: str
    fingerprint: str
    table: Table
    registered_at: float = field(default_factory=time.time)

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (``/stats`` endpoint)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "n_rows": self.table.n_rows,
            "columns": list(self.table.columns),
            "entropy_cache_sizes": self.table.entropy_cache_sizes(),
        }


#: Bound on the (parent fingerprint, predicate) -> child fingerprint memo:
#: entries are ~100 B each, the bound only exists so a service fed an
#: unbounded stream of distinct WHERE clauses cannot grow without limit.
FILTER_MEMO_LIMIT = 1024


class DatasetRegistry:
    """Thread-safe name -> table registry with content deduplication."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, DatasetEntry] = {}
        self._by_fingerprint: dict[str, Table] = {}
        # (parent fingerprint, predicate) -> child fingerprint.  Predicates
        # are frozen dataclasses with value equality, so a repeated WHERE
        # clause re-derives its filtered view's fingerprint without the
        # O(n) re-hash -- republication on the dataset plane becomes O(1).
        self._filtered_fingerprints: dict[tuple, str] = {}

    def register(self, name: str, table: Table) -> tuple[DatasetEntry, bool]:
        """Register ``table`` under ``name``; returns ``(entry, reused)``.

        ``reused`` is true when a table with identical content was already
        registered -- the new name is bound to the *existing* instance so
        its warm entropy caches keep serving.  Re-registering a name with
        different content simply rebinds the name (the old table stays
        reachable through any other names or cache entries it has).
        """
        if not name:
            raise ValueError("dataset name must be non-empty")
        with TRACER.span("registry.fingerprint", dataset=name):
            fingerprint = fingerprint_table(table)
        with self._lock:
            shared = self._by_fingerprint.get(fingerprint)
            reused = shared is not None
            if shared is None:
                self._by_fingerprint[fingerprint] = table
                shared = table
            entry = DatasetEntry(name=name, fingerprint=fingerprint, table=shared)
            self._by_name[name] = entry
            # Rebinding a name can orphan its old table; drop tables no
            # name references so a long-lived service doesn't leak them.
            live = {item.fingerprint for item in self._by_name.values()}
            self._by_fingerprint = {
                print_: table_
                for print_, table_ in self._by_fingerprint.items()
                if print_ in live
            }
            return entry, reused

    def get(self, name: str) -> DatasetEntry:
        """Look up a dataset by name (:class:`UnknownDatasetError` if not)."""
        with self._lock:
            try:
                return self._by_name[name]
            except KeyError:
                known = sorted(self._by_name)
                raise UnknownDatasetError(
                    f"unknown dataset {name!r}; registered datasets: {known}"
                ) from None

    def filtered_table(self, entry: DatasetEntry, predicate) -> Table:
        """``entry.table.where(predicate)`` with a memoized fingerprint.

        The WHERE-filtered view is rebuilt per request (tables are
        immutable; the row selection itself is one vectorized gather), but
        its content fingerprint -- the expensive O(n) SHA-256 the dataset
        plane and the result cache key on -- is memoized under
        ``(parent fingerprint, predicate)``.  A repeated clause therefore
        republishes in O(1): the first request pays the hash, every later
        one seeds the fresh view's memo slot and skips it.

        Safe because the predicate fully determines the child's rows given
        the parent's content, and the memo keys on the parent's *content*
        fingerprint, not its name.
        """
        if predicate is None:
            return entry.table
        child = entry.table.where(predicate)
        if child is entry.table:
            return child
        key = (entry.fingerprint, predicate)
        with self._lock:
            known = self._filtered_fingerprints.get(key)
        if known is not None:
            child.set_fingerprint(known)
            return child
        with TRACER.span("registry.filter_fingerprint", dataset=entry.name):
            fingerprint = child.fingerprint()
        with self._lock:
            self._filtered_fingerprints[key] = fingerprint
            while len(self._filtered_fingerprints) > FILTER_MEMO_LIMIT:
                # dicts iterate in insertion order: drop the oldest entry.
                self._filtered_fingerprints.pop(
                    next(iter(self._filtered_fingerprints))
                )
        return child

    @property
    def filter_memo_size(self) -> int:
        """Entries in the filtered-fingerprint memo (instrumentation)."""
        with self._lock:
            return len(self._filtered_fingerprints)

    def catalog(self) -> dict[str, dict[str, Any]]:
        """Name -> ``{fingerprint, columns, n_rows}`` for every dataset.

        The ``GET /v2/datasets`` payload: enough for a client to see what
        a server holds and for the shard router to key its ring routing
        and failover re-registration on content fingerprints.  Lighter
        than :meth:`describe` (no entropy-cache introspection), so it is
        cheap to serve on every catalog poll.
        """
        with self._lock:
            entries = list(self._by_name.values())
        return {
            entry.name: {
                "fingerprint": entry.fingerprint,
                "columns": list(entry.table.columns),
                "n_rows": entry.table.n_rows,
            }
            for entry in entries
        }

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._by_name)

    @property
    def n_tables(self) -> int:
        """Distinct table instances currently held (<= number of names)."""
        with self._lock:
            return len(self._by_fingerprint)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_name)

    def describe(self) -> list[dict[str, Any]]:
        """JSON-ready summary of every registered dataset."""
        with self._lock:
            entries = list(self._by_name.values())
        return [entry.describe() for entry in sorted(entries, key=lambda e: e.name)]
