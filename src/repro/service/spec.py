"""Typed request specs: the declarative *what* of every service request.

A spec is a frozen dataclass describing one read request -- dataset name,
parameters, seed -- with validation at construction, lossless
``from_dict`` / ``to_dict`` round-trips, and canonicalization onto the
result-cache key of :func:`repro.service.fingerprint.request_key`.  The
same spec object flows through every execution surface: the synchronous
v1 endpoints (thin shims that build a spec from the request body), the
async v2 jobs API, the v2 batch planner, the Python client, and the CLI's
``submit`` verb.  Separating the *what* (this module) from the *how* and
*when* (:mod:`repro.service.core`, :mod:`repro.service.jobs`,
:mod:`repro.service.planner`) is what lets identical requests coalesce
and batches share work: two specs are the same request exactly when
their cache keys are equal.

Canonicalization is pinned to the pre-spec service layer:
:meth:`RequestSpec.cache_params` builds byte-for-byte the params dict the
v1 handlers used to build inline, so cache entries (memory and disk) are
shared between v1 and v2 and across upgrades.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.query import GroupByQuery
from repro.service.fingerprint import request_key
from repro.stats.base import DEFAULT_ALPHA

#: Test names accepted by the service (see ``service.core.make_test``).
KNOWN_TESTS = ("hymit", "chi2", "mit")


class SpecError(ValueError):
    """A request spec that fails validation (HTTP layer maps this to 400)."""


#: Sentinel distinguishing "never parsed" from a legitimately-``None``
#: parse result (a WhatIfSpec with no WHERE clause).
_UNSET = object()


def _memoized(spec: Any, slot: str, build):
    """Parse-once memo on a frozen spec (derived state, not a field).

    Specs are immutable, so parses are pure; stashing them via
    ``object.__setattr__`` keeps the hot read path (validation, cache
    keys, execution all need the parse) from re-running the SQL parser.
    Dataclass equality/hash ignore non-field attributes, so memoized and
    fresh specs stay interchangeable.
    """
    value = spec.__dict__.get(slot, _UNSET)
    if value is _UNSET:
        value = build()
        object.__setattr__(spec, slot, value)
    return value


def _require_str(field: str, value: Any, optional: bool = False) -> str | None:
    if value is None and optional:
        return None
    if not isinstance(value, str) or not value:
        raise SpecError(f"{field} must be a non-empty string, got {value!r}")
    return value


def _require_names(field: str, value: Any) -> tuple[str, ...] | None:
    """Coerce an optional sequence of column names to a tuple."""
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise SpecError(f"{field} must be a list of column names, got {value!r}")
    names = tuple(value)
    for name in names:
        if not isinstance(name, str):
            raise SpecError(f"{field} entries must be strings, got {name!r}")
    return names


def _require_int(field: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{field} must be an integer, got {value!r}")
    return value


def _require_bool(field: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{field} must be a boolean, got {value!r}")
    return value


def _require_alpha(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"alpha must be a number in (0, 1), got {value!r}")
    if not 0.0 < value < 1.0:
        raise SpecError(f"alpha must be in (0, 1), got {value!r}")
    return value


def _require_test(value: Any) -> str:
    if value not in KNOWN_TESTS:
        raise SpecError(
            f"unknown test {value!r}; expected one of hymit, chi2, mit"
        )
    return value


@dataclass(frozen=True)
class RequestSpec:
    """Base of all request specs: one dataset-scoped read request.

    Subclasses declare ``kind`` (the dispatch discriminator, also the
    request-kind component of the cache key) and implement
    :meth:`cache_params`.  Instances are immutable and hashable, so they
    can key coalescing maps directly.
    """

    kind: ClassVar[str] = "abstract"
    dataset: str

    # -- construction ---------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RequestSpec":
        """Build a spec from a JSON-shaped mapping, rejecting unknown keys.

        An optional ``"kind"`` entry is accepted when it matches the
        class (so ``to_dict`` output round-trips); use
        :func:`spec_from_dict` to dispatch on it instead.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(f"request spec must be a JSON object, got {payload!r}")
        data = dict(payload)
        kind = data.pop("kind", cls.kind)
        if kind != cls.kind:
            raise SpecError(f"expected kind {cls.kind!r}, got {kind!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown {cls.kind} fields: {unknown}")
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; ``from_dict(to_dict(s)) == s`` for every spec.

        ``None``-valued fields are dropped (they mean "use the default",
        and :func:`repro.service.fingerprint.canonical_params` drops them
        from cache keys for the same reason); tuples become lists.
        """
        payload: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is None:
                continue
            payload[field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    # -- canonicalization ----------------------------------------------

    def cache_params(self) -> dict[str, Any]:
        """The canonical request-parameter dict (cache-key material).

        Pinned byte-for-byte to what the pre-spec v1 handlers built, so
        v1 and v2 share one result cache.
        """
        raise NotImplementedError

    def cache_seed(self) -> int | None:
        """The seed component of the cache key (``None`` = deterministic)."""
        return getattr(self, "seed", None)

    def request_key(self, fingerprint: str) -> str:
        """The result-cache key of this spec against one dataset content."""
        return request_key(fingerprint, self.kind, self.cache_params(), self.cache_seed())

    def _validate_common(self) -> None:
        _require_str("dataset", self.dataset)


@dataclass(frozen=True)
class AnalyzeSpec(RequestSpec):
    """The full detect / explain / resolve pipeline for one query."""

    kind: ClassVar[str] = "analyze"
    sql: str = ""
    treatment: str | None = None
    covariates: tuple[str, ...] | None = None
    mediators: tuple[str, ...] | None = None
    top_k: int = 2
    explain_top_attributes: int = 2
    compute_direct: bool = True
    alpha: float = DEFAULT_ALPHA
    test: str = "hymit"
    seed: int = 0

    def __post_init__(self) -> None:
        self._validate_common()
        _require_str("sql", self.sql)
        _require_str("treatment", self.treatment, optional=True)
        object.__setattr__(self, "covariates", _require_names("covariates", self.covariates))
        object.__setattr__(self, "mediators", _require_names("mediators", self.mediators))
        _require_int("top_k", self.top_k)
        _require_int("explain_top_attributes", self.explain_top_attributes)
        _require_bool("compute_direct", self.compute_direct)
        _require_alpha(self.alpha)
        _require_test(self.test)
        _require_int("seed", self.seed)
        self.query()  # surface SQL parse errors at construction time

    def query(self) -> GroupByQuery:
        """The parsed group-by-average query this spec analyzes (memoized)."""
        return _memoized(
            self, "_query", lambda: GroupByQuery.from_sql(self.sql, treatment=self.treatment)
        )

    def cache_params(self) -> dict[str, Any]:
        """Byte-pinned v1 ``analyze`` cache-key parameters."""
        return {
            "query": repr(self.query()),
            "covariates": list(self.covariates) if self.covariates is not None else None,
            "mediators": list(self.mediators) if self.mediators is not None else None,
            "top_k": self.top_k,
            "explain_top_attributes": self.explain_top_attributes,
            "compute_direct": self.compute_direct,
            "alpha": self.alpha,
            "test": self.test,
        }


@dataclass(frozen=True)
class QuerySpec(RequestSpec):
    """Evaluate the (possibly biased) group-by-average query only."""

    kind: ClassVar[str] = "query"
    sql: str = ""

    def __post_init__(self) -> None:
        self._validate_common()
        _require_str("sql", self.sql)
        self.query()

    def query(self) -> GroupByQuery:
        """The parsed group-by-average query (memoized)."""
        return _memoized(self, "_query", lambda: GroupByQuery.from_sql(self.sql))

    def cache_params(self) -> dict[str, Any]:
        """Byte-pinned v1 ``query`` cache-key parameters."""
        return {"query": repr(self.query())}

    def cache_seed(self) -> None:
        """``None``: query answers are seed-free."""
        return None


@dataclass(frozen=True)
class DiscoverSpec(RequestSpec):
    """Covariate discovery (the CD algorithm) for one treatment."""

    kind: ClassVar[str] = "discover"
    treatment: str = ""
    outcome: str | None = None
    alpha: float = DEFAULT_ALPHA
    test: str = "hymit"
    seed: int = 0

    def __post_init__(self) -> None:
        self._validate_common()
        _require_str("treatment", self.treatment)
        _require_str("outcome", self.outcome, optional=True)
        _require_alpha(self.alpha)
        _require_test(self.test)
        _require_int("seed", self.seed)

    def cache_params(self) -> dict[str, Any]:
        """Byte-pinned v1 ``discover`` cache-key parameters."""
        return {
            "treatment": self.treatment,
            "outcome": self.outcome,
            "alpha": self.alpha,
            "test": self.test,
        }


@dataclass(frozen=True)
class WhatIfSpec(RequestSpec):
    """Interventional averages ``E[Y | do(T = t), where]`` (paper Sec. 8)."""

    kind: ClassVar[str] = "whatif"
    treatment: str = ""
    outcome: str = ""
    covariates: tuple[str, ...] | None = None
    where_sql: str | None = None
    alpha: float = DEFAULT_ALPHA
    test: str = "hymit"
    seed: int = 0

    def __post_init__(self) -> None:
        self._validate_common()
        _require_str("treatment", self.treatment)
        _require_str("outcome", self.outcome)
        object.__setattr__(self, "covariates", _require_names("covariates", self.covariates))
        if self.where_sql is not None and not isinstance(self.where_sql, str):
            raise SpecError(f"where_sql must be a string, got {self.where_sql!r}")
        _require_alpha(self.alpha)
        _require_test(self.test)
        _require_int("seed", self.seed)
        self.where()  # surface WHERE parse errors at construction time

    def where(self):
        """The parsed WHERE predicate (``None`` = whole table, memoized)."""
        return _memoized(
            self,
            "_where",
            lambda: parse_where(self.where_sql, self.treatment, self.outcome),
        )

    def cache_params(self) -> dict[str, Any]:
        """Byte-pinned v1 ``whatif`` cache-key parameters."""
        return {
            "treatment": self.treatment,
            "outcome": self.outcome,
            "covariates": list(self.covariates) if self.covariates is not None else None,
            "where": self.where_sql,
            "alpha": self.alpha,
            "test": self.test,
        }


#: kind -> spec class; the dispatch table shared by ``spec_from_dict``,
#: the v1 shims, the batch planner, and the jobs API.
SPEC_TYPES: dict[str, type[RequestSpec]] = {
    cls.kind: cls for cls in (AnalyzeSpec, QuerySpec, DiscoverSpec, WhatIfSpec)
}


def spec_from_dict(payload: Mapping[str, Any]) -> RequestSpec:
    """Build the right spec for a ``{"kind": ..., ...}`` mapping."""
    if not isinstance(payload, Mapping):
        raise SpecError(f"request spec must be a JSON object, got {payload!r}")
    kind = payload.get("kind")
    spec_type = SPEC_TYPES.get(kind)
    if spec_type is None:
        raise SpecError(
            f"unknown kind {kind!r}; expected one of {sorted(SPEC_TYPES)}"
        )
    return spec_type.from_dict(payload)


def parse_where(where_sql: str | None, treatment: str, outcome: str):
    """Parse a bare SQL WHERE expression into a Predicate (or ``None``)."""
    if where_sql is None or not where_sql.strip():
        return None
    wrapped = (
        f"SELECT {treatment}, avg({outcome}) FROM t "
        f"WHERE {where_sql} GROUP BY {treatment}"
    )
    return GroupByQuery.from_sql(wrapped).where
