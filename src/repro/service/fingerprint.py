"""Content fingerprints for tables and canonical keys for requests.

A dataset fingerprint is a SHA-256 over the table's schema (column names,
in order), every column's domain, and the raw bytes of every code array.
Two tables with identical content -- regardless of how or when they were
loaded -- fingerprint identically, which is what lets the registry
deduplicate registrations and share entropy caches, and what makes result
-cache entries transferable across service restarts (the disk layer).

A request key extends the fingerprint with the request kind, the
canonicalized parameters (sorted-key JSON, so dict ordering never splits
the cache), and the seed.  Anything that can change the answer is in the
key; anything that cannot (transport, timing, engine parallelism -- results
are engine-invariant by the PR-1 seeding discipline) is not.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any

from repro.relation.table import FINGERPRINT_VERSION, Table

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_params",
    "fingerprint_table",
    "request_key",
]


def fingerprint_table(table: Table) -> str:
    """SHA-256 content fingerprint of a table (hex digest).

    Covers column order, per-column domains, and the code arrays
    themselves.  Selections / projections of a table fingerprint
    differently from their parent (their row sets or schemas differ), and
    equal-content tables built through different constructors fingerprint
    identically (codes are canonical: domains are sorted at encode time).

    The recipe lives on :meth:`Table.fingerprint` (memoized per instance)
    so the dataset plane and the registry hash a given table once; this
    wrapper remains the service-facing entry point.
    """
    return table.fingerprint()


def canonical_params(params: Mapping[str, Any]) -> str:
    """Render request parameters as canonical JSON text.

    ``None``-valued entries are dropped so "parameter omitted" and
    "parameter explicitly null" key identically (they mean the same
    default); non-JSON values fall back to ``repr``.
    """
    pruned = {name: value for name, value in params.items() if value is not None}
    return json.dumps(pruned, sort_keys=True, separators=(",", ":"), default=repr)


def request_key(
    fingerprint: str, kind: str, params: Mapping[str, Any], seed: int | None
) -> str:
    """The result-cache key for one request (SHA-256 hex digest).

    Hex digests are safe as file names, so the same key addresses both the
    in-memory LRU and the disk layer.
    """
    material = "\x00".join(
        (fingerprint, kind, canonical_params(params), repr(seed))
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
