"""Long-running analysis service with multi-level result caching.

The paper positions HypDB *inside* the query lifecycle -- detect / explain
/ resolve requests arrive interactively, and Fig. 6(c) shows that cached
entropies are what make repeated analyses tractable.  This package turns
the library into that long-lived system:

* :mod:`repro.service.fingerprint` -- content fingerprints for tables and
  canonical cache keys for requests;
* :mod:`repro.service.registry` -- the dataset registry: tables are loaded
  once, deduplicated by fingerprint, and share their entropy caches across
  every subsequent request;
* :mod:`repro.service.cache` -- the result cache: an in-memory LRU with an
  optional disk-backed layer, keyed by (dataset fingerprint, request kind,
  canonical parameters, seed);
* :mod:`repro.service.core` -- :class:`AnalysisService`, the transport-
  independent request handlers bridging onto the execution-engine layer
  (``HypDB(engine=...)``);
* :mod:`repro.service.http` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (register / analyze / query / discover / whatif / batch);
* :mod:`repro.service.client` -- a stdlib ``urllib`` client helper.
"""

from __future__ import annotations

from repro.service.cache import CacheStats, ResultCache
from repro.service.core import AnalysisService, ServiceResult
from repro.service.fingerprint import fingerprint_table, request_key
from repro.service.http import make_server
from repro.service.registry import DatasetEntry, DatasetRegistry

__all__ = [
    "AnalysisService",
    "CacheStats",
    "DatasetEntry",
    "DatasetRegistry",
    "ResultCache",
    "ServiceResult",
    "fingerprint_table",
    "make_server",
    "request_key",
]
