"""Long-running analysis service with multi-level result caching.

The paper positions HypDB *inside* the query lifecycle -- detect / explain
/ resolve requests arrive interactively, and Fig. 6(c) shows that cached
entropies are what make repeated analyses tractable.  This package turns
the library into that long-lived system:

* :mod:`repro.service.fingerprint` -- content fingerprints for tables and
  canonical cache keys for requests;
* :mod:`repro.service.spec` -- typed request specs: the declarative,
  validated *what* of every request, shared by all execution surfaces;
* :mod:`repro.service.registry` -- the dataset registry: tables are loaded
  once, deduplicated by fingerprint, and share their entropy caches across
  every subsequent request;
* :mod:`repro.service.cache` -- the result cache: an in-memory LRU with an
  optional disk-backed layer, keyed by (dataset fingerprint, request kind,
  canonical parameters, seed);
* :mod:`repro.service.core` -- :class:`AnalysisService`, the transport-
  independent spec executor with single-flight coalescing, bridging onto
  the execution-engine layer (``HypDB(engine=...)``);
* :mod:`repro.service.jobs` -- the async job manager behind the v2 jobs
  API (submit now, poll for the canonical bytes later);
* :mod:`repro.service.planner` -- the v2 batch planner: group by dataset
  fingerprint, order cache-hits first, de-duplicate, publish once;
* :mod:`repro.service.http` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (v1 one-shot endpoints plus ``/v2/jobs`` and ``/v2/batch``);
* :mod:`repro.service.client` -- a stdlib ``urllib`` client with typed
  errors, bounded retries, and async job helpers.
"""

from __future__ import annotations

from repro.service.cache import CacheStats, ResultCache
from repro.service.core import AnalysisService, ServiceResult
from repro.service.fingerprint import fingerprint_table, request_key
from repro.service.http import make_server
from repro.service.jobs import Job, JobManager, UnknownJobError
from repro.service.planner import BatchPlan, execute_plan, plan_batch, run_batch
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.service.spec import (
    SPEC_TYPES,
    AnalyzeSpec,
    DiscoverSpec,
    QuerySpec,
    RequestSpec,
    SpecError,
    WhatIfSpec,
    spec_from_dict,
)

__all__ = [
    "SPEC_TYPES",
    "AnalysisService",
    "AnalyzeSpec",
    "BatchPlan",
    "CacheStats",
    "DatasetEntry",
    "DatasetRegistry",
    "DiscoverSpec",
    "Job",
    "JobManager",
    "QuerySpec",
    "RequestSpec",
    "ResultCache",
    "ServiceResult",
    "SpecError",
    "UnknownJobError",
    "WhatIfSpec",
    "execute_plan",
    "fingerprint_table",
    "make_server",
    "plan_batch",
    "request_key",
    "run_batch",
    "spec_from_dict",
]
