"""Stdlib HTTP JSON API over :class:`AnalysisService`.

``ThreadingHTTPServer`` gives one thread per connection while the shared
:class:`~repro.service.core.AnalysisService` fans statistical work across
cores through its execution engine -- a single process serving concurrent
clients (no third-party framework, per the repo's no-new-deps rule).

Endpoints (all bodies JSON):

==============  ======  ====================================================
path            method  body / response
==============  ======  ====================================================
/health         GET     liveness probe
/stats          GET     registry, cache, engine, and job statistics
/register       POST    ``{"name", "columns" | "rows"+"column_names" | "csv_path"}``
/analyze        POST    ``{"dataset", "sql", ...}`` -> full bias report
/query          POST    ``{"dataset", "sql"}`` -> group-by-average answer
/discover       POST    ``{"dataset", "treatment", ...}`` -> CD result
/whatif         POST    ``{"dataset", "treatment", "outcome", ...}``
/batch          POST    ``{"requests": [{"kind", ...}, ...]}`` (v1: sequential)
/v2/jobs        POST    one spec ``{"kind", ...}`` -> 202 + job id
/v2/jobs        GET     ``?dataset=&limit=`` -> job listing
/v2/jobs/<id>   GET     job status; spliced result bytes once done
/v2/batch       POST    ``{"requests": [...]}`` -> planned execution
==============  ======  ====================================================

The v1 read endpoints are thin shims over the typed request specs of
:mod:`repro.service.spec` -- same canonical payload bytes as before the
spec layer existed.  v2 adds the asynchronous jobs API (202-accepted,
poll for the result) and the work-sharing batch planner; see
:mod:`repro.service.jobs` and :mod:`repro.service.planner`.

Read responses are the envelope ``{"status": "ok", "kind", "cached",
"elapsed_seconds", "result": ...}`` where the ``result`` value is spliced
in as the service's canonical payload bytes -- the HTTP body carries the
result byte-for-byte as the direct API would serialize it.  Finished-job
responses splice the same bytes under ``"result"``.

Errors: 400 for malformed requests, 404 for unknown datasets, jobs, or
paths, 500 for unexpected failures; all carry ``{"status": "error",
"error"}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.report import canonical_json_bytes
from repro.service.core import AnalysisService, ServiceResult
from repro.service.jobs import Job, UnknownJobError
from repro.service.planner import run_batch
from repro.service.registry import UnknownDatasetError
from repro.service.spec import SPEC_TYPES, spec_from_dict

#: Request bodies above this size are rejected (sanity bound, ~256 MiB).
MAX_BODY_BYTES = 1 << 28

#: v1 path -> spec type (the "thin shim" dispatch table).
_V1_SPECS = {f"/{kind}": spec_type for kind, spec_type in SPEC_TYPES.items()}


def envelope_bytes(result: ServiceResult) -> bytes:
    """Build the response envelope around the canonical payload bytes."""
    head = (
        f'{{"status":"ok","kind":{json.dumps(result.kind)},'
        f'"cached":{"true" if result.cached else "false"},'
        f'"elapsed_seconds":{json.dumps(round(result.elapsed_seconds, 6))},'
        f'"result":'
    )
    return head.encode("utf-8") + result.payload + b"}"


def job_bytes(job: Job) -> bytes:
    """The ``GET /v2/jobs/<id>`` body: metadata plus spliced result bytes."""
    body = b'{"status":"ok","job":' + canonical_json_bytes(job.snapshot())
    result = job.service_result()
    if result is not None:
        body += b',"result":' + result.payload
    return body + b"}"


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for the attribute access below
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = urlsplit(self.path)
        try:
            if parts.path == "/health":
                self._send(200, canonical_json_bytes({"status": "ok"}))
            elif parts.path == "/stats":
                self._send(200, canonical_json_bytes(self.server.service.stats()))
            elif parts.path == "/v2/jobs":
                self._send_job_list(parts.query)
            elif parts.path.startswith("/v2/jobs/"):
                job_id = parts.path[len("/v2/jobs/"):]
                self._send(200, job_bytes(self.server.service.job_manager.get(job_id)))
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except (UnknownJobError, UnknownDatasetError) as error:
            self._send_error(404, _message(error))
        except (TypeError, ValueError) as error:
            self._send_error(400, _message(error))
        except Exception as error:  # pragma: no cover - defensive 500
            self._send_error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            body = self._read_body()
        except ValueError as error:
            self._send_error(400, str(error))
            return
        service = self.server.service
        try:
            if self.path == "/register":
                arguments = {
                    field: body.pop(field, None)
                    for field in ("columns", "rows", "column_names", "csv_path")
                }
                name = body.pop("name", "")
                _reject_extras(body)  # validate before mutating the registry
                summary = service.register(name=name, **arguments)
                self._send(
                    200, canonical_json_bytes({"status": "ok", "result": summary})
                )
            elif self.path == "/batch":
                results = service.batch(body.get("requests", []))
                parts = b",".join(envelope_bytes(result) for result in results)
                self._send(200, b'{"status":"ok","results":[' + parts + b"]}")
            elif self.path == "/v2/jobs":
                job = service.job_manager.submit(spec_from_dict(body))
                self._send(
                    202,
                    canonical_json_bytes(
                        {
                            "status": "accepted",
                            "job_id": job.id,
                            "job_status": job.snapshot()["status"],
                            "coalesced": job.primary is not None,
                        }
                    ),
                )
            elif self.path == "/v2/batch":
                specs = _batch_specs(body)
                results, summary = run_batch(service, specs)
                parts = b",".join(envelope_bytes(result) for result in results)
                self._send(
                    200,
                    b'{"status":"ok","plan":'
                    + canonical_json_bytes(summary)
                    + b',"results":['
                    + parts
                    + b"]}",
                )
            elif self.path in _V1_SPECS:
                spec = _V1_SPECS[self.path].from_dict(body)
                self._send(200, envelope_bytes(service.execute(spec)))
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except (UnknownDatasetError, UnknownJobError) as error:
            self._send_error(404, _message(error))
        except (TypeError, ValueError) as error:
            self._send_error(400, _message(error))
        except Exception as error:  # pragma: no cover - defensive 500
            # Includes bare KeyError from deep library code: that is a
            # server bug, not a client addressing mistake.
            self._send_error(500, f"{type(error).__name__}: {error}")

    # -- v2 helpers ----------------------------------------------------

    def _send_job_list(self, query: str) -> None:
        parameters = parse_qs(query)
        dataset = parameters.get("dataset", [None])[0]
        limit_text = parameters.get("limit", ["100"])[0]
        try:
            limit = int(limit_text)
        except ValueError:
            raise ValueError(f"limit must be an integer, got {limit_text!r}") from None
        jobs = self.server.service.job_manager.list(dataset=dataset, limit=limit)
        self._send(200, canonical_json_bytes({"status": "ok", "jobs": jobs}))

    # -- plumbing ------------------------------------------------------

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would desynchronize a keep-alive connection
            # (the next "request line" would be body bytes) -- drop it.
            self.close_connection = True
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _send(self, status: int, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, canonical_json_bytes({"status": "error", "error": message}))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the CLI flips ``server.verbose`` on."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


def _batch_specs(body: dict) -> list:
    """Parse a v2 batch body into specs with index-tagged errors."""
    requests = body.get("requests", [])
    if not isinstance(requests, list):
        raise ValueError("requests must be a JSON array of request specs")
    specs = []
    for index, item in enumerate(requests):
        try:
            specs.append(spec_from_dict(item))
        except ValueError as error:
            raise ValueError(f"batch item {index}: {_message(error)}") from None
    return specs


def _reject_extras(body: dict) -> None:
    if body:
        raise ValueError(f"unexpected register fields: {sorted(body)}")


def _message(error: BaseException) -> str:
    """Unwrap exception args (KeyError repr-quotes its message)."""
    if error.args and isinstance(error.args[0], str):
        return error.args[0]
    return str(error)


def make_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the service to an HTTP server (``port=0`` picks a free port)."""
    return ServiceHTTPServer((host, port), service)
