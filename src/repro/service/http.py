"""Stdlib HTTP JSON API over :class:`AnalysisService`.

``ThreadingHTTPServer`` gives one thread per connection while the shared
:class:`~repro.service.core.AnalysisService` fans statistical work across
cores through its execution engine -- a single process serving concurrent
clients (no third-party framework, per the repo's no-new-deps rule).

Endpoints (all bodies JSON):

==============  ======  ====================================================
path            method  body / response
==============  ======  ====================================================
/health         GET     liveness probe
/stats          GET     registry, cache, engine, and job statistics
/metrics        GET     Prometheus text exposition (not JSON)
/register       POST    ``{"name", "columns" | "rows"+"column_names" | "csv_path"}``
/analyze        POST    ``{"dataset", "sql", ...}`` -> full bias report
/query          POST    ``{"dataset", "sql"}`` -> group-by-average answer
/discover       POST    ``{"dataset", "treatment", ...}`` -> CD result
/whatif         POST    ``{"dataset", "treatment", "outcome", ...}``
/batch          POST    ``{"requests": [{"kind", ...}, ...]}`` (v1: sequential)
/v2/jobs        POST    one spec ``{"kind", ...}`` -> 202 + job id
/v2/jobs        GET     ``?dataset=&limit=`` -> job listing
/v2/jobs/<id>   GET     job status (``?wait=<s>`` long-polls); result bytes once done
/v2/datasets    GET     dataset catalog: name -> {fingerprint, columns, n_rows}
/v2/batch       POST    ``{"requests": [...]}`` -> planned execution
==============  ======  ====================================================

The v1 read endpoints are thin shims over the typed request specs of
:mod:`repro.service.spec` -- same canonical payload bytes as before the
spec layer existed.  They are *deprecation-tagged*: every v1 response
carries ``Deprecation: true`` plus a ``Link: </v2/...>;
rel="successor-version"`` header pair (bodies are untouched -- the bytes
stay pinned), and ``/stats`` counts ``v1_requests`` so operators can see
when the old surface has drained.  v2 adds the asynchronous jobs API
(202-accepted, long-poll for the result), the dataset catalog, and the
work-sharing batch planner; see :mod:`repro.service.jobs` and
:mod:`repro.service.planner`.

Read responses are the envelope ``{"status": "ok", "kind", "cached",
"elapsed_seconds", "result": ...}`` where the ``result`` value is spliced
in as the service's canonical payload bytes -- the HTTP body carries the
result byte-for-byte as the direct API would serialize it.  Finished-job
responses splice the same bytes under ``"result"``.

Errors: 400 for malformed requests, 404 for unknown datasets, jobs, or
paths, 500 for unexpected failures; all carry ``{"status": "error",
"error"}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.report import canonical_json_bytes
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import TRACE_HEADER, TRACER
from repro.service.core import AnalysisService, ServiceResult
from repro.service.jobs import Job, UnknownJobError
from repro.service.planner import run_batch
from repro.service.registry import UnknownDatasetError
from repro.service.spec import SPEC_TYPES, spec_from_dict

#: Request bodies above this size are rejected (sanity bound, ~256 MiB).
MAX_BODY_BYTES = 1 << 28

#: Cap on the ``?wait=`` long-poll window of ``GET /v2/jobs/<id>``; a
#: client wanting to wait longer re-issues the request (each round holds
#: one server thread, so unbounded waits would pin threads forever).
MAX_JOB_WAIT_SECONDS = 60.0

#: v1 path -> spec type (the "thin shim" dispatch table).
_V1_SPECS = {f"/{kind}": spec_type for kind, spec_type in SPEC_TYPES.items()}

#: Deprecated v1 path -> successor v2 path (the ``Link`` header target).
V1_SUCCESSORS = {**{path: "/v2/jobs" for path in _V1_SPECS}, "/batch": "/v2/batch"}


def v1_deprecation_headers(path: str) -> tuple[tuple[str, str], ...]:
    """The header pair tagging a deprecated v1 endpoint's responses.

    RFC 8594-style: ``Deprecation: true`` plus a ``Link`` to the v2
    successor.  Response *bodies* are untouched, so v1 clients keep
    working byte-for-byte while proxies and SDKs can surface the tag.
    """
    successor = V1_SUCCESSORS.get(path)
    if successor is None:
        return ()
    return (
        ("Deprecation", "true"),
        ("Link", f'<{successor}>; rel="successor-version"'),
    )


def envelope_bytes(result: ServiceResult) -> bytes:
    """Build the response envelope around the canonical payload bytes."""
    head = (
        f'{{"status":"ok","kind":{json.dumps(result.kind)},'
        f'"cached":{"true" if result.cached else "false"},'
        f'"elapsed_seconds":{json.dumps(round(result.elapsed_seconds, 6))},'
        f'"result":'
    )
    return head.encode("utf-8") + result.payload + b"}"


def job_bytes(job: Job) -> bytes:
    """The ``GET /v2/jobs/<id>`` body: metadata plus spliced result bytes."""
    body = b'{"status":"ok","job":' + canonical_json_bytes(job.snapshot())
    result = job.service_result()
    if result is not None:
        body += b',"result":' + result.payload
    return body + b"}"


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for JSON-over-HTTP handlers.

    Both the single-process service handler below and the shard router's
    handler (:mod:`repro.service.shard.router`) subclass this: bounded
    body reads that keep keep-alive connections in sync, JSON envelope
    writes with optional extra headers, and quiet logging.
    """

    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def _read_raw(self) -> bytes:
        """The raw request body (bounded; ``b"{}"`` when absent)."""
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would desynchronize a keep-alive connection
            # (the next "request line" would be body bytes) -- drop it.
            self.close_connection = True
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length else b"{}"

    def _read_body(self) -> dict:
        return parse_json_body(self._read_raw())

    def _send(
        self,
        status: int,
        payload: bytes,
        headers: tuple[tuple[str, str], ...] = (),
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        # Telemetry lives in headers only: the trace id is echoed back so
        # clients can correlate, while bodies stay byte-identical with
        # tracing on or off.
        trace_id = TRACER.current_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(
        self,
        status: int,
        message: str,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self._send(
            status,
            canonical_json_bytes({"status": "error", "error": message}),
            headers=headers,
        )

    def _begin_trace(self):
        """Open this request's trace, adopting the inbound header id.

        The router forwards its trace id in ``X-Repro-Trace``, so a
        shard's local trace record joins the distributed trace; a
        request arriving without the header starts a fresh trace.
        """
        return TRACER.begin(self.headers.get(TRACE_HEADER) or None)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the CLI flips ``server.verbose`` on."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


class _Handler(JSONRequestHandler):
    server: ServiceHTTPServer  # narrowed for the attribute access below

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # The dispatch chain stays inside do_GET (the docs test extracts
        # route literals from this function by name); the trace wrapper
        # nests around it.
        parts = urlsplit(self.path)
        handle = self._begin_trace()
        try:
            with TRACER.span("http.dispatch", method="GET", path=parts.path):
                try:
                    if parts.path == "/health":
                        self._send(200, canonical_json_bytes({"status": "ok"}))
                    elif parts.path == "/stats":
                        self._send(
                            200, canonical_json_bytes(self.server.service.stats())
                        )
                    elif parts.path == "/metrics":
                        self._send(
                            200,
                            self.server.service.render_metrics().encode("utf-8"),
                            content_type=PROMETHEUS_CONTENT_TYPE,
                        )
                    elif parts.path == "/v2/datasets":
                        self._send(
                            200,
                            canonical_json_bytes(
                                {
                                    "status": "ok",
                                    "datasets": self.server.service.datasets(),
                                }
                            ),
                        )
                    elif parts.path == "/v2/jobs":
                        self._send_job_list(parts.query)
                    elif parts.path.startswith("/v2/jobs/"):
                        job_id = parts.path[len("/v2/jobs/"):]
                        manager = self.server.service.job_manager
                        wait_seconds = parse_wait_seconds(parts.query)
                        if wait_seconds > 0:
                            job = manager.wait_for(job_id, wait_seconds)
                        else:
                            job = manager.get(job_id)
                        self._send(200, job_bytes(job))
                    else:
                        self._send_error(404, f"unknown path {self.path!r}")
                except (UnknownJobError, UnknownDatasetError) as error:
                    self._send_error(404, _message(error))
                except (TypeError, ValueError) as error:
                    self._send_error(400, _message(error))
                except Exception as error:  # pragma: no cover - defensive 500
                    self._send_error(500, f"{type(error).__name__}: {error}")
        finally:
            TRACER.finish(handle)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            body = self._read_body()
        except ValueError as error:
            self._send_error(400, str(error))
            return
        service = self.server.service
        handle = self._begin_trace()
        try:
            with TRACER.span("http.dispatch", method="POST", path=self.path):
                try:
                    if self.path == "/register":
                        arguments = {
                            field: body.pop(field, None)
                            for field in ("columns", "rows", "column_names", "csv_path")
                        }
                        name = body.pop("name", "")
                        _reject_extras(body)  # validate before mutating the registry
                        summary = service.register(name=name, **arguments)
                        self._send(
                            200,
                            canonical_json_bytes({"status": "ok", "result": summary}),
                        )
                    elif self.path == "/batch":
                        service.note_v1_request()
                        results = service.batch(body.get("requests", []))
                        parts = b",".join(
                            envelope_bytes(result) for result in results
                        )
                        self._send(
                            200,
                            b'{"status":"ok","results":[' + parts + b"]}",
                            headers=v1_deprecation_headers(self.path),
                        )
                    elif self.path == "/v2/jobs":
                        job = service.job_manager.submit(spec_from_dict(body))
                        self._send(
                            202,
                            canonical_json_bytes(
                                {
                                    "status": "accepted",
                                    "job_id": job.id,
                                    "job_status": job.snapshot()["status"],
                                    "coalesced": job.primary is not None,
                                }
                            ),
                        )
                    elif self.path == "/v2/batch":
                        specs = _batch_specs(body)
                        results, summary = run_batch(service, specs)
                        parts = b",".join(
                            envelope_bytes(result) for result in results
                        )
                        self._send(
                            200,
                            b'{"status":"ok","plan":'
                            + canonical_json_bytes(summary)
                            + b',"results":['
                            + parts
                            + b"]}",
                        )
                    elif self.path in _V1_SPECS:
                        service.note_v1_request()
                        spec = _V1_SPECS[self.path].from_dict(body)
                        self._send(
                            200,
                            envelope_bytes(service.execute(spec)),
                            headers=v1_deprecation_headers(self.path),
                        )
                    else:
                        self._send_error(404, f"unknown path {self.path!r}")
                except (UnknownDatasetError, UnknownJobError) as error:
                    self._send_error(404, _message(error))
                except (TypeError, ValueError) as error:
                    self._send_error(400, _message(error))
                except Exception as error:  # pragma: no cover - defensive 500
                    # Includes bare KeyError from deep library code: that is
                    # a server bug, not a client addressing mistake.
                    self._send_error(500, f"{type(error).__name__}: {error}")
        finally:
            TRACER.finish(handle)

    # -- v2 helpers ----------------------------------------------------

    def _send_job_list(self, query: str) -> None:
        parameters = parse_qs(query)
        dataset = parameters.get("dataset", [None])[0]
        limit_text = parameters.get("limit", ["100"])[0]
        try:
            limit = int(limit_text)
        except ValueError:
            raise ValueError(f"limit must be an integer, got {limit_text!r}") from None
        jobs = self.server.service.job_manager.list(dataset=dataset, limit=limit)
        self._send(200, canonical_json_bytes({"status": "ok", "jobs": jobs}))

def parse_json_body(raw: bytes) -> dict:
    """Parse a request body into a JSON object (``ValueError`` -> 400)."""
    try:
        body = json.loads(raw or b"{}")
    except json.JSONDecodeError as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    return body


def parse_wait_seconds(query: str) -> float:
    """The ``?wait=<seconds>`` long-poll window (0 = answer immediately).

    Capped at :data:`MAX_JOB_WAIT_SECONDS`; negative values are treated
    as no wait, malformed values are a 400.
    """
    value = parse_qs(query).get("wait", ["0"])[0]
    try:
        seconds = float(value)
    except ValueError:
        raise ValueError(f"wait must be a number of seconds, got {value!r}") from None
    return max(0.0, min(seconds, MAX_JOB_WAIT_SECONDS))


def _batch_specs(body: dict) -> list:
    """Parse a v2 batch body into specs with index-tagged errors."""
    requests = body.get("requests", [])
    if not isinstance(requests, list):
        raise ValueError("requests must be a JSON array of request specs")
    specs = []
    for index, item in enumerate(requests):
        try:
            specs.append(spec_from_dict(item))
        except ValueError as error:
            raise ValueError(f"batch item {index}: {_message(error)}") from None
    return specs


def typed_error_bytes(message: str, code: str, **fields: object) -> bytes:
    """A machine-readable error body: the standard error envelope + ``code``.

    ``{"status": "error", "error": <message>, "code": <code>, ...}`` --
    the prose stays for humans, the stable ``code`` (plus any extra
    fields, e.g. the expected protocol version) is for clients that must
    branch on the *kind* of rejection, like the cluster join handshake.
    """
    return canonical_json_bytes(
        {"status": "error", "error": message, "code": code, **fields}
    )


def _reject_extras(body: dict) -> None:
    if body:
        raise ValueError(f"unexpected register fields: {sorted(body)}")


def _message(error: BaseException) -> str:
    """Unwrap exception args (KeyError repr-quotes its message)."""
    if error.args and isinstance(error.args[0], str):
        return error.args[0]
    return str(error)


def make_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the service to an HTTP server (``port=0`` picks a free port)."""
    return ServiceHTTPServer((host, port), service)
