"""Stdlib HTTP JSON API over :class:`AnalysisService`.

``ThreadingHTTPServer`` gives one thread per connection while the shared
:class:`~repro.service.core.AnalysisService` fans statistical work across
cores through its execution engine -- a single process serving concurrent
clients (no third-party framework, per the repo's no-new-deps rule).

Endpoints (all bodies JSON):

=========  ======  ====================================================
path       method  body / response
=========  ======  ====================================================
/health    GET     liveness probe
/stats     GET     registry, cache, and engine statistics
/register  POST    ``{"name", "columns" | "rows"+"column_names" | "csv_path"}``
/analyze   POST    ``{"dataset", "sql", ...}`` -> full bias report
/query     POST    ``{"dataset", "sql"}`` -> group-by-average answer
/discover  POST    ``{"dataset", "treatment", ...}`` -> CD result
/whatif    POST    ``{"dataset", "treatment", "outcome", ...}``
/batch     POST    ``{"requests": [{"kind", ...}, ...]}``
=========  ======  ====================================================

Read responses are the envelope ``{"status": "ok", "kind", "cached",
"elapsed_seconds", "result": ...}`` where the ``result`` value is spliced
in as the service's canonical payload bytes -- the HTTP body carries the
result byte-for-byte as the direct API would serialize it.

Errors: 400 for malformed requests, 404 for unknown datasets or paths,
500 for unexpected failures; all carry ``{"status": "error", "error"}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.report import canonical_json_bytes
from repro.service.core import AnalysisService, ServiceResult
from repro.service.registry import UnknownDatasetError

#: Request bodies above this size are rejected (sanity bound, ~256 MiB).
MAX_BODY_BYTES = 1 << 28


def envelope_bytes(result: ServiceResult) -> bytes:
    """Build the response envelope around the canonical payload bytes."""
    head = (
        f'{{"status":"ok","kind":{json.dumps(result.kind)},'
        f'"cached":{"true" if result.cached else "false"},'
        f'"elapsed_seconds":{json.dumps(round(result.elapsed_seconds, 6))},'
        f'"result":'
    )
    return head.encode("utf-8") + result.payload + b"}"


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for the attribute access below
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            if self.path == "/health":
                self._send(200, canonical_json_bytes({"status": "ok"}))
            elif self.path == "/stats":
                self._send(200, canonical_json_bytes(self.server.service.stats()))
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except Exception as error:  # pragma: no cover - defensive 500
            self._send_error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            body = self._read_body()
        except ValueError as error:
            self._send_error(400, str(error))
            return
        service = self.server.service
        try:
            if self.path == "/register":
                arguments = {
                    field: body.pop(field, None)
                    for field in ("columns", "rows", "column_names", "csv_path")
                }
                name = body.pop("name", "")
                _reject_extras(body)  # validate before mutating the registry
                summary = service.register(name=name, **arguments)
                self._send(
                    200, canonical_json_bytes({"status": "ok", "result": summary})
                )
            elif self.path == "/batch":
                results = service.batch(body.get("requests", []))
                parts = b",".join(envelope_bytes(result) for result in results)
                self._send(200, b'{"status":"ok","results":[' + parts + b"]}")
            elif self.path in ("/analyze", "/query", "/discover", "/whatif"):
                handler = getattr(service, self.path[1:])
                self._send(200, envelope_bytes(handler(**body)))
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except UnknownDatasetError as error:
            self._send_error(404, _message(error))
        except (TypeError, ValueError) as error:
            self._send_error(400, _message(error))
        except Exception as error:  # pragma: no cover - defensive 500
            # Includes bare KeyError from deep library code: that is a
            # server bug, not a client addressing mistake.
            self._send_error(500, f"{type(error).__name__}: {error}")

    # -- plumbing ------------------------------------------------------

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would desynchronize a keep-alive connection
            # (the next "request line" would be body bytes) -- drop it.
            self.close_connection = True
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _send(self, status: int, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, canonical_json_bytes({"status": "error", "error": message}))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet by default; the CLI flips ``server.verbose`` on."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


def _reject_extras(body: dict) -> None:
    if body:
        raise ValueError(f"unexpected register fields: {sorted(body)}")


def _message(error: BaseException) -> str:
    """Unwrap exception args (KeyError repr-quotes its message)."""
    if error.args and isinstance(error.args[0], str):
        return error.args[0]
    return str(error)


def make_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the service to an HTTP server (``port=0`` picks a free port)."""
    return ServiceHTTPServer((host, port), service)
