"""Deterministic fault injection for the durability test harness.

The chaos tests (``tests/service/test_durable_jobs.py``,
``test_job_failover.py``, ``test_self_heal.py``) need failures that
happen at an exact point in an exact process — a shard dying *mid
compute*, a journal write torn *mid record* — without sleeping and
hoping.  This module plants named **fault sites** on the hot paths
(``service.compute``, ``journal.append``, ``cache.disk_write``) and
arms them from a :class:`FaultPlan`: a list of rules selecting a site,
an action, and optionally a process scope and a context match.

Actions:

``kill``
    ``os._exit`` the process immediately (a shard crash: the peer sees
    a dropped connection, then refused connections).
``refuse``
    raise :class:`ConnectionRefusedError` at the site.
``error``
    raise :class:`OSError` at the site (e.g. a failed disk write).
``slow``
    sleep ``seconds`` at the site (pins a job in the running state so a
    test can kill its shard deterministically mid-job).
``torn``
    truncate a payload to ``keep_bytes`` bytes (a torn journal write).

Plans cross process boundaries through the environment: the supervisor
spawns shard workers with the parent's ``os.environ``, so setting
``REPRO_FAULTS`` (a JSON list of rule dicts) before ``start()`` arms
the same plan in every child, and each child names itself with
:func:`set_scope` so ``scope``-bearing rules fire only on the intended
shard.  Rules fire a bounded number of times (``times``, default 1)
after an optional warm-up (``after``), so a plan's effect is a pure
function of the call sequence — no randomness, no timing.

With no plan installed and no ``REPRO_FAULTS`` in the environment every
site is a no-op costing one dict lookup, so production paths keep their
behavior and speed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

#: Environment variable holding the JSON-encoded rule list.
ENV_VAR = "REPRO_FAULTS"

#: Environment variable naming this process's scope (set_scope overrides).
SCOPE_VAR = "REPRO_FAULT_SCOPE"

#: Exit code used by the ``kill`` action, distinctive in process status.
KILL_EXIT_CODE = 86

_ACTIONS = ("kill", "refuse", "slow", "torn", "error")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: where it fires, what it does, and how often.

    Parameters
    ----------
    site:
        The fault-site name (e.g. ``"service.compute"``).
    action:
        One of ``kill`` | ``refuse`` | ``slow`` | ``torn`` | ``error``.
    scope:
        Process scope the rule is confined to (a shard name set via
        :func:`set_scope`); ``None`` fires in any process.
    match:
        Context filter: every key must equal the site's keyword context
        (compared as strings), e.g. ``{"dataset": "doomed"}``.
    after:
        Number of qualifying hits to let through before firing.
    times:
        Maximum number of firings (``None`` = unlimited).
    seconds:
        Sleep duration for the ``slow`` action.
    keep_bytes:
        Bytes preserved by the ``torn`` action (the rest is dropped).
    """

    site: str
    action: str
    scope: str | None = None
    match: dict = field(default_factory=dict)
    after: int = 0
    times: int | None = 1
    seconds: float = 0.0
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        """Reject unknown actions early (a typo'd plan must not no-op)."""
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )

    def matches(self, site: str, scope: str | None, context: dict) -> bool:
        """Whether this rule applies to a hit at ``site`` in ``scope``."""
        if self.site != site:
            return False
        if self.scope is not None and self.scope != scope:
            return False
        return all(
            str(context.get(key)) == str(value) for key, value in self.match.items()
        )


class FaultPlan:
    """An armed set of :class:`FaultRule` with per-rule firing counters."""

    def __init__(self, rules: list[FaultRule]) -> None:
        self._rules = list(rules)
        self._hits = [0] * len(self._rules)
        self._fired = [0] * len(self._rules)
        self._lock = threading.Lock()

    @classmethod
    def from_rules(cls, rules: list[dict]) -> FaultPlan:
        """Build a plan from a list of rule dicts (the JSON wire form)."""
        return cls([FaultRule(**rule) for rule in rules])

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        """Parse the ``REPRO_FAULTS`` wire form: a JSON list of rule dicts."""
        rules = json.loads(text)
        if not isinstance(rules, list):
            raise ValueError("fault plan must be a JSON list of rule objects")
        return cls.from_rules(rules)

    def fire(self, site: str, scope: str | None, context: dict) -> FaultRule | None:
        """The rule that fires for this hit, if any (counts both ways)."""
        with self._lock:
            for index, rule in enumerate(self._rules):
                if not rule.matches(site, scope, context):
                    continue
                self._hits[index] += 1
                if self._hits[index] <= rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                self._fired[index] += 1
                return rule
        return None

    def fired(self, site: str | None = None) -> int:
        """Total firings, optionally restricted to one site."""
        with self._lock:
            return sum(
                count
                for rule, count in zip(self._rules, self._fired)
                if site is None or rule.site == site
            )


_state_lock = threading.Lock()
_plan: FaultPlan | None = None
_plan_loaded = False
_scope: str | None = None


def install(plan: FaultPlan | list[dict] | None) -> None:
    """Arm ``plan`` in this process (``None`` disarms; tests use this)."""
    global _plan, _plan_loaded
    with _state_lock:
        if isinstance(plan, list):
            plan = FaultPlan.from_rules(plan)
        _plan = plan
        _plan_loaded = True


def clear() -> None:
    """Disarm any plan and forget the env snapshot (re-reads on next hit)."""
    global _plan, _plan_loaded, _scope
    with _state_lock:
        _plan = None
        _plan_loaded = False
        _scope = None


def set_scope(name: str | None) -> None:
    """Name this process for ``scope``-bearing rules (shards use their name)."""
    global _scope
    with _state_lock:
        _scope = name


def active() -> FaultPlan | None:
    """The armed plan, lazily loaded from ``REPRO_FAULTS`` once per process."""
    global _plan, _plan_loaded
    if _plan_loaded:
        return _plan
    with _state_lock:
        if not _plan_loaded:
            text = os.environ.get(ENV_VAR)
            _plan = FaultPlan.from_json(text) if text else None
            _plan_loaded = True
    return _plan


def _current_scope() -> str | None:
    return _scope if _scope is not None else os.environ.get(SCOPE_VAR)


def crash_point(site: str, **context) -> None:
    """A named fault site: no-op unless an armed rule selects this hit.

    ``kill`` exits the process, ``refuse``/``error`` raise, ``slow``
    sleeps; ``torn`` rules never fire here (they need a payload — see
    :func:`torn_write`).
    """
    plan = active()
    if plan is None:
        return
    rule = plan.fire(site, _current_scope(), context)
    if rule is None or rule.action == "torn":
        return
    if rule.action == "kill":  # pragma: no cover - exits the (child) process
        os._exit(KILL_EXIT_CODE)
    if rule.action == "refuse":
        raise ConnectionRefusedError(f"fault injected at {site}")
    if rule.action == "error":
        raise OSError(f"fault injected at {site}")
    if rule.action == "slow":
        time.sleep(rule.seconds)


def torn_write(site: str, payload: bytes, **context) -> tuple[bytes, bool]:
    """A named write site: returns ``payload`` possibly torn mid-record.

    A firing ``torn`` rule truncates the payload to ``keep_bytes``
    (simulating a crash between ``write`` and completion); any other
    firing action behaves as in :func:`crash_point`.
    """
    plan = active()
    if plan is None:
        return payload, False
    rule = plan.fire(site, _current_scope(), context)
    if rule is None:
        return payload, False
    if rule.action == "torn":
        return payload[: rule.keep_bytes], True
    if rule.action == "kill":  # pragma: no cover - exits the (child) process
        os._exit(KILL_EXIT_CODE)
    if rule.action == "refuse":
        raise ConnectionRefusedError(f"fault injected at {site}")
    if rule.action == "error":
        raise OSError(f"fault injected at {site}")
    if rule.action == "slow":
        time.sleep(rule.seconds)
    return payload, False
