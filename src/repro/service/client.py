"""Stdlib client helper for the analysis service's HTTP JSON API.

Mirrors the endpoints of :mod:`repro.service.http` one method per
endpoint; every method returns the parsed response envelope.  Raises
:class:`ServiceError` (carrying the HTTP status and the server's message)
on any non-2xx response.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from collections.abc import Mapping, Sequence
from typing import Any


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running analysis service.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8000"`` (trailing slash optional).
    timeout:
        Per-request socket timeout in seconds.  Cold analyses compute the
        full pipeline, so the default is generous.
    """

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._get("/health")

    def stats(self) -> dict[str, Any]:
        return self._get("/stats")

    def register(self, name: str, **source: Any) -> dict[str, Any]:
        """Register a dataset (``columns=``, ``rows=``+``column_names=``,
        or ``csv_path=`` -- see ``AnalysisService.register``)."""
        return self._post("/register", {"name": name, **source})

    def analyze(self, dataset: str, sql: str, **params: Any) -> dict[str, Any]:
        return self._post("/analyze", {"dataset": dataset, "sql": sql, **params})

    def query(self, dataset: str, sql: str) -> dict[str, Any]:
        return self._post("/query", {"dataset": dataset, "sql": sql})

    def discover(self, dataset: str, treatment: str, **params: Any) -> dict[str, Any]:
        return self._post(
            "/discover", {"dataset": dataset, "treatment": treatment, **params}
        )

    def whatif(
        self, dataset: str, treatment: str, outcome: str, **params: Any
    ) -> dict[str, Any]:
        return self._post(
            "/whatif",
            {"dataset": dataset, "treatment": treatment, "outcome": outcome, **params},
        )

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        return self._post("/batch", {"requests": list(requests)})

    # -- plumbing ------------------------------------------------------

    def _get(self, path: str) -> dict[str, Any]:
        return self._request(urllib.request.Request(self.base_url + path))

    def _post(self, path: str, body: Mapping[str, Any]) -> dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request)

    def _request(self, request: urllib.request.Request) -> dict[str, Any]:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceError(error.code, message) from None
