"""Stdlib client helper for the analysis service's HTTP JSON API.

Mirrors the endpoints of :mod:`repro.service.http` one method per
endpoint; every method returns the parsed response envelope.  Transport
failures surface as typed exceptions -- :class:`ServiceError` carries the
HTTP status and the server's parsed error payload,
:class:`ServiceConnectionError` wraps connection-level failures after
the bounded retry-with-backoff gives up -- never bare ``urllib`` errors.

The v2 jobs API gets async helpers: :meth:`ServiceClient.submit` queues
a spec and returns immediately with the job id,
:meth:`ServiceClient.wait` *long-polls* (``GET /v2/jobs/<id>?wait=<s>``)
until the job finishes and returns the final snapshot (with the result
spliced in, byte-identical to the synchronous endpoint's payload) -- one
blocked request per server-side wait window instead of a request per
poll interval -- and :meth:`ServiceClient.batch_v2` sends a spec list
through the work-sharing batch planner.  Job reads retry a 404 once (a
router mid-failover answers the retry) before raising the typed
:class:`JobLostError` with the last-known spec, and a 503 carrying
``Retry-After`` (the router's "no live shards" window while the heal
loop respawns shards) pauses bounded-ly and retries.

:meth:`ServiceClient.request_bytes` exposes the retrying transport at
the byte level (status + verbatim body, no JSON parse): the shard
router proxies requests through it so response payloads are spliced
byte-for-byte, never re-serialized.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Mapping, Sequence
from typing import Any

from repro.obs.trace import TRACE_HEADER, TRACER


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Attributes
    ----------
    status:
        The HTTP status code (0 for connection-level failures).
    message:
        The server's ``error`` message (or the raw body).
    payload:
        The parsed JSON error body, when the server sent one.
    """

    def __init__(
        self, status: int, message: str, payload: dict[str, Any] | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload


class ServiceConnectionError(ServiceError):
    """The service could not be reached (after exhausting retries)."""

    def __init__(self, message: str) -> None:
        super().__init__(0, message)


class JobFailedError(ServiceError):
    """A polled job finished in the ``error`` state."""

    def __init__(self, job: dict[str, Any]) -> None:
        status = job.get("error_status") or 500
        super().__init__(status, job.get("error") or "job failed", payload=job)
        self.job = job


class JobLostError(ServiceError):
    """A job id the service no longer knows (404 that survived a retry).

    Carries the last spec this client submitted under that id (``spec``,
    ``None`` for ids submitted elsewhere) so callers can re-submit: the
    result is deterministic, so a re-run returns identical bytes.
    """

    def __init__(
        self,
        job_id: str,
        spec: dict[str, Any] | None = None,
        payload: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(
            404, f"job {job_id!r} was lost; re-submit the spec", payload=payload
        )
        self.job_id = job_id
        self.spec = spec


class ClusterJoinError(ServiceError):
    """A typed rejection of the cluster join/heartbeat handshake.

    Raised for answered 403/409 rejections of ``/v2/cluster/*`` calls --
    bad token, protocol mismatch, name conflict -- and **never retried**:
    the server answered, and re-sending the same credentials cannot
    change a deterministic policy answer.  ``code`` carries the server's
    machine-readable rejection kind (``"bad_token"``,
    ``"protocol_mismatch"``, ``"name_conflict"``, ``"unknown_member"``,
    ``"clustering_disabled"``).
    """

    def __init__(
        self, status: int, message: str, payload: dict[str, Any] | None = None
    ) -> None:
        super().__init__(status, message, payload)
        self.code = (payload or {}).get("code")


class ServiceClient:
    """Talk to a running analysis service.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8000"`` (trailing slash optional).
    timeout:
        Per-request socket timeout in seconds.  Cold analyses compute the
        full pipeline, so the default is generous.
    retries:
        Retries per request for *connection-establishment* failures only
        (refused, reset during connect, DNS): the request never reached
        the server, so resending is always safe.  HTTP errors never
        retry (the server answered), and neither do read timeouts -- the
        server may still be computing (or may have completed), and
        resending a ``/v2/jobs`` submission there would enqueue a
        duplicate orphan job.
    backoff:
        Base of the exponential backoff between retries, in seconds
        (``backoff * 2**attempt``).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        retries: int = 2,
        backoff: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        # Last-known specs by job id (bounded), so a lost job's spec can
        # ride along on JobLostError for transparent re-submission.
        self._submitted_specs: dict[str, dict[str, Any]] = {}

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /health``: liveness probe (``{"status": "ok"}``)."""
        return self._get("/health")

    def stats(self) -> dict[str, Any]:
        """``GET /stats``: service (or router + per-shard) counters."""
        return self._get("/stats")

    def register(self, name: str, **source: Any) -> dict[str, Any]:
        """Register a dataset (``columns=``, ``rows=``+``column_names=``,
        or ``csv_path=`` -- see ``AnalysisService.register``)."""
        return self._post("/register", {"name": name, **source})

    def analyze(self, dataset: str, sql: str, **params: Any) -> dict[str, Any]:
        """``POST /analyze`` (v1): bias-aware analysis of one query."""
        return self._post("/analyze", {"dataset": dataset, "sql": sql, **params})

    def query(self, dataset: str, sql: str) -> dict[str, Any]:
        """``POST /query`` (v1): plain group-by-average, no bias checks."""
        return self._post("/query", {"dataset": dataset, "sql": sql})

    def discover(self, dataset: str, treatment: str, **params: Any) -> dict[str, Any]:
        """``POST /discover`` (v1): covariate discovery for a treatment."""
        return self._post(
            "/discover", {"dataset": dataset, "treatment": treatment, **params}
        )

    def whatif(
        self, dataset: str, treatment: str, outcome: str, **params: Any
    ) -> dict[str, Any]:
        """``POST /whatif`` (v1): counterfactual treatment/outcome query."""
        return self._post(
            "/whatif",
            {"dataset": dataset, "treatment": treatment, "outcome": outcome, **params},
        )

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """``POST /batch`` (v1, sequential); prefer :meth:`batch_v2`."""
        return self._post("/batch", {"requests": list(requests)})

    def datasets(self) -> dict[str, Any]:
        """The dataset catalog: name -> ``{fingerprint, columns, n_rows}``.

        Against a replicated shard router (``--replicas K > 1``) each
        entry additionally carries ``"replicas"``: the live shard names
        holding the dataset, primary first.  Single-process services and
        unreplicated routers omit the field (their catalogs are
        byte-identical to each other).
        """
        return self._get("/v2/datasets")["datasets"]

    def dataset(self, name: str) -> dict[str, Any]:
        """One catalog entry; raises :class:`ServiceError` when unknown."""
        catalog = self.datasets()
        if name not in catalog:
            raise ServiceError(404, f"unknown dataset {name!r}")
        return catalog[name]

    def replicas(self, name: str) -> list[str]:
        """Live shards holding ``name``, primary first.

        Empty against deployments that do not replicate (single-process
        services and ``K=1`` routers omit the ``replicas`` field).
        """
        return list(self.dataset(name).get("replicas", []))

    # -- v2: async jobs and planned batches ----------------------------

    #: Specs remembered for :class:`JobLostError` (oldest evicted past this).
    MAX_REMEMBERED_SPECS = 256

    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """Queue one ``{"kind": ..., ...}`` spec; returns the 202 body.

        The job id is under ``"job_id"``; poll with :meth:`job` or block
        with :meth:`wait`.
        """
        response = self._post("/v2/jobs", dict(spec))
        job_id = response.get("job_id")
        if isinstance(job_id, str):
            self._submitted_specs[job_id] = dict(spec)
            while len(self._submitted_specs) > self.MAX_REMEMBERED_SPECS:
                self._submitted_specs.pop(next(iter(self._submitted_specs)))
        return response

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        """The job snapshot (plus spliced result bytes once done).

        ``wait`` long-polls: the server blocks up to that many seconds
        for a terminal state before answering (its cap applies), so a
        waiting client holds one open request instead of hammering the
        endpoint.

        A 404 is retried once -- a router that just failed the job over
        to a surviving shard answers the retry -- and only a *second*
        404 raises :class:`JobLostError` (carrying the last spec this
        client submitted under the id, for re-submission).
        """
        suffix = f"?wait={wait:g}" if wait is not None and wait > 0 else ""
        path = f"/v2/jobs/{job_id}{suffix}"
        try:
            return self._get(path)
        except ServiceError as error:
            if error.status != 404 or isinstance(error, ServiceConnectionError):
                raise
        try:
            return self._get(path)
        except ServiceError as error:
            if error.status != 404 or isinstance(error, ServiceConnectionError):
                raise
            raise JobLostError(
                job_id, self._submitted_specs.get(job_id), payload=error.payload
            ) from None

    def jobs(
        self, dataset: str | None = None, limit: int | None = None
    ) -> dict[str, Any]:
        """List recent jobs, optionally filtered by dataset name."""
        parameters = {}
        if dataset is not None:
            parameters["dataset"] = dataset
        if limit is not None:
            parameters["limit"] = str(limit)
        suffix = f"?{urllib.parse.urlencode(parameters)}" if parameters else ""
        return self._get(f"/v2/jobs{suffix}")

    #: Long-poll window requested per :meth:`wait` round; the server caps
    #: it too (``http.MAX_JOB_WAIT_SECONDS``), so rounds are bounded on
    #: both sides.
    WAIT_CHUNK_SECONDS = 30.0

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Block until the job reaches a terminal state (long-polling).

        Each round asks the server to hold the request until the job
        turns terminal or a bounded wait window elapses (``?wait=``), so
        waiting out a long computation costs a handful of requests, not
        ``timeout / poll_interval`` of them.  ``poll_interval`` only
        paces rounds against servers that answer early (e.g. a proxy
        that ignores ``wait``).

        Returns the final snapshot (``response["result"]`` carries the
        canonical payload) for ``done`` jobs; raises
        :class:`JobFailedError` for ``error``/``cancelled`` jobs and
        ``TimeoutError`` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            # Stay well under the socket timeout so a served long-poll
            # round can never be mistaken for a dead connection.
            chunk = max(0.0, min(self.WAIT_CHUNK_SECONDS, remaining, self.timeout / 2))
            response = self.job(job_id, wait=chunk)
            job = response["job"]
            if job["status"] == "done":
                return response
            if job["status"] in ("error", "cancelled"):
                raise JobFailedError(job)
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} not finished within {timeout}s")
            time.sleep(poll_interval)

    def submit_and_wait(
        self, spec: Mapping[str, Any], timeout: float = 600.0
    ) -> dict[str, Any]:
        """Convenience: :meth:`submit` then :meth:`wait`."""
        return self.wait(self.submit(spec)["job_id"], timeout=timeout)

    def batch_v2(self, specs: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Run a spec list through the work-sharing batch planner."""
        return self._post("/v2/batch", {"requests": [dict(spec) for spec in specs]})

    # -- cluster membership (shard nodes and peer routers) -------------

    def join_cluster(
        self, node: str, url: str, token: str, protocol: int | None = None
    ) -> dict[str, Any]:
        """``POST /v2/cluster/join``: the remote-node handshake.

        Registers ``node`` (advertising ``url``) with a router started
        with a matching ``--cluster-token``.  Returns the join body
        (router epoch, advertised heartbeat interval, liveness timeout,
        current live shards).  Typed 403/409 rejections raise
        :class:`ClusterJoinError` -- exactly one request is made for
        them, never a retry.
        """
        if protocol is None:
            from repro.service.shard.cluster import PROTOCOL_VERSION

            protocol = PROTOCOL_VERSION
        return self._cluster_post(
            "/v2/cluster/join",
            {"node": node, "url": url, "token": token, "protocol": protocol},
        )

    def cluster_heartbeat(
        self,
        node: str,
        token: str,
        keys: Sequence[str] = (),
        cursor: int | None = None,
    ) -> dict[str, Any]:
        """``POST /v2/cluster/heartbeat``: liveness + warm-key gossip.

        ``keys`` is this node's warm-key digest (request keys newly held
        in its result cache); a peer router passes ``cursor`` to receive
        the router's gossip-log events past it (piggybacked deltas).
        """
        body: dict[str, Any] = {"node": node, "token": token, "keys": list(keys)}
        if cursor is not None:
            body["cursor"] = cursor
        return self._cluster_post("/v2/cluster/heartbeat", body)

    def cluster_leave(self, node: str, token: str) -> dict[str, Any]:
        """``POST /v2/cluster/leave``: graceful departure (fails over now)."""
        return self._cluster_post("/v2/cluster/leave", {"node": node, "token": token})

    def cluster(self) -> dict[str, Any]:
        """``GET /v2/cluster``: the membership table and cluster epoch."""
        return self._get("/v2/cluster")

    def _cluster_post(self, path: str, body: Mapping[str, Any]) -> dict[str, Any]:
        """POST a cluster call, mapping typed rejections to ClusterJoinError."""
        try:
            return self._post(path, body)
        except ServiceError as error:
            typed = isinstance(error.payload, dict) and "code" in error.payload
            if error.status in (403, 409) and typed:
                raise ClusterJoinError(
                    error.status, error.message, error.payload
                ) from None
            raise

    # -- raw transport (shared with the shard router) ------------------

    def request_bytes(
        self,
        path: str,
        body: bytes | None = None,
        method: str | None = None,
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        """One request at the byte level: ``(status, verbatim body)``.

        ``body=None`` is a GET, anything else a POST (unless ``method``
        overrides).  HTTP error responses are *returned*, not raised --
        the shard router forwards shard answers (success or error)
        byte-for-byte.  Connection-establishment failures still retry
        with backoff and end in :class:`ServiceConnectionError`.
        """
        headers = {"Content-Type": "application/json"} if body is not None else {}
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers=headers | self._trace_headers(),
            method=method or ("POST" if body is not None else "GET"),
        )
        return self._transport(request, timeout=timeout)

    # -- plumbing ------------------------------------------------------

    @staticmethod
    def _trace_headers() -> dict[str, str]:
        """``{X-Repro-Trace: <id>}`` when a trace is active, else empty.

        Injected into every outbound request, so a shard router serving a
        traced request propagates the trace id to the shard it forwards
        to -- cross-process spans share one id with zero caller effort.
        """
        trace_id = TRACER.current_id()
        return {TRACE_HEADER: trace_id} if trace_id else {}

    def _get(self, path: str) -> dict[str, Any]:
        return self._request(
            urllib.request.Request(self.base_url + path, headers=self._trace_headers())
        )

    def _post(self, path: str, body: Mapping[str, Any]) -> dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"} | self._trace_headers(),
            method="POST",
        )
        return self._request(request)

    def _request(self, request: urllib.request.Request) -> dict[str, Any]:
        status, raw = self._transport(request)
        if 200 <= status < 300:
            return json.loads(raw)
        # The server answered with an error: surface its message.
        payload = None
        try:
            payload = json.loads(raw)
            message = payload.get("error", raw.decode("utf-8", "replace"))
        except (json.JSONDecodeError, AttributeError):
            message = raw.decode("utf-8", "replace")
        raise ServiceError(status, message, payload) from None

    #: Ceiling on one honored ``Retry-After`` pause, in seconds.
    RETRY_AFTER_CAP = 5.0

    def _transport(
        self, request: urllib.request.Request, timeout: float | None = None
    ) -> tuple[int, bytes]:
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None else timeout
                ) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as error:
                body = error.read()
                # A 503 carrying Retry-After (the router's "no live
                # shards" while the heal loop respawns) is the one HTTP
                # error worth retrying: the server explicitly asked for
                # it, and it means the request was *not* forwarded, so a
                # resend cannot duplicate work.  The pause is bounded.
                pause = _retry_after_seconds(error.headers)
                if error.code == 503 and pause is not None and attempt < self.retries:
                    time.sleep(min(pause, self.RETRY_AFTER_CAP))
                    continue
                # Any other answered error: no retry, return its bytes.
                return error.code, body
            except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
                reason = getattr(error, "reason", error)
                # Retry only failures to *establish* the connection (the
                # request never left this process).  A timeout or a reset
                # mid-request is ambiguous -- the server may have acted on
                # it -- so resending could duplicate work (or jobs).
                if not _retryable(reason) or attempt >= self.retries:
                    raise ServiceConnectionError(
                        f"cannot reach {self.base_url}: {reason}"
                    ) from None
                time.sleep(self.backoff * (2**attempt))
        raise AssertionError("unreachable")  # pragma: no cover


def _retry_after_seconds(headers: object) -> float | None:
    """Parse a ``Retry-After`` header into seconds (``None`` if absent/bad)."""
    value = getattr(headers, "get", lambda _key: None)("Retry-After")
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return max(0.0, seconds)


def _retryable(reason: object) -> bool:
    """True only for errors raised before the request was transmitted.

    A refused connection or a DNS failure means the server never saw the
    request; anything later (reset, broken pipe, timeout) is ambiguous --
    the server may have acted on it -- and must not be resent.
    """
    import socket

    return isinstance(reason, (ConnectionRefusedError, socket.gaierror))
