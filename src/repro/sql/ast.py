"""AST produced by the SQL parser.

A parsed statement keeps the grouping attributes, the averaged outcome
attributes, the source table name, and a compiled
:class:`~repro.relation.predicates.Predicate` for the WHERE clause, which is
exactly the information HypDB needs to interpret a query causally (paper
Sec. 3): grouping attribute ``T`` (treatment), outcomes ``Y``, context ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relation.predicates import Predicate, TRUE


@dataclass(frozen=True)
class Aggregate:
    """An ``avg(column)`` item in the SELECT list."""

    column: str

    def __repr__(self) -> str:
        return f"avg({self.column})"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed group-by-average query (paper Listing 1)."""

    select_columns: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    table_name: str
    where: Predicate = TRUE
    group_by: tuple[str, ...] = field(default=())

    def outcome_columns(self) -> tuple[str, ...]:
        """The averaged attributes ``Y1..Ye``."""
        return tuple(aggregate.column for aggregate in self.aggregates)

    def __repr__(self) -> str:
        select_items = list(self.select_columns) + [repr(agg) for agg in self.aggregates]
        parts = [f"SELECT {', '.join(select_items)}", f"FROM {self.table_name}"]
        if self.where is not TRUE:
            parts.append(f"WHERE {self.where!r}")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(self.group_by)}")
        return " ".join(parts)
