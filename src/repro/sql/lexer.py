"""Tokenizer for the SQL subset (see :mod:`repro.sql`).

Keywords are case-insensitive, identifiers keep their case; string literals
use single quotes with ``''`` escaping (SQL style); numbers may be signed
integers or decimals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.sql.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "IN",
    "AVG",
    "AS",
    "ON",
}


class TokenKind(Enum):
    """Lexical categories of the SQL subset."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    STRING = auto()
    NUMBER = auto()
    COMMA = auto()
    LPAREN = auto()
    RPAREN = auto()
    OPERATOR = auto()  # = != <> < <= > >=
    STAR = auto()
    DOT = auto()
    END = auto()


@dataclass(frozen=True)
class Token:
    """A single token with its source position."""

    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given (case-insensitive) keyword."""
        return self.kind is TokenKind.KEYWORD and self.text == word.upper()


_PUNCTUATION = {
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "*": TokenKind.STAR,
    ".": TokenKind.DOT,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; the result always ends with an ``END`` token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[char], char, index))
            index += 1
            continue
        if char == "'":
            literal, index = _read_string(text, index)
            tokens.append(literal)
            continue
        if char.isdigit() or (
            char in "+-" and index + 1 < length and text[index + 1].isdigit()
        ):
            number, index = _read_number(text, index)
            tokens.append(number)
            continue
        if char in "=<>!":
            operator, index = _read_operator(text, index)
            tokens.append(operator)
            continue
        if char.isalpha() or char == "_":
            word, index = _read_word(text, index)
            tokens.append(word)
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _read_string(text: str, start: int) -> tuple[Token, int]:
    index = start + 1
    pieces: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if index + 1 < len(text) and text[index + 1] == "'":
                pieces.append("'")
                index += 2
                continue
            return Token(TokenKind.STRING, "".join(pieces), start), index + 1
        pieces.append(char)
        index += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[Token, int]:
    index = start
    if text[index] in "+-":
        index += 1
    seen_dot = False
    while index < len(text) and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
        if text[index] == ".":
            seen_dot = True
        index += 1
    return Token(TokenKind.NUMBER, text[start:index], start), index


def _read_operator(text: str, start: int) -> tuple[Token, int]:
    two = text[start : start + 2]
    if two in {"!=", "<>", "<=", ">="}:
        return Token(TokenKind.OPERATOR, two, start), start + 2
    one = text[start]
    if one in {"=", "<", ">"}:
        return Token(TokenKind.OPERATOR, one, start), start + 1
    raise SqlSyntaxError(f"unexpected operator start {one!r}", start)


def _read_word(text: str, start: int) -> tuple[Token, int]:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenKind.KEYWORD, upper, start), index
    return Token(TokenKind.IDENTIFIER, word, start), index
