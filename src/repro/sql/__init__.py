"""A small SQL front-end for the paper's OLAP query dialect.

HypDB's input is a group-by-average SQL query (paper Listing 1).  This
subpackage implements a lexer and recursive-descent parser for the needed
dialect::

    SELECT Carrier, avg(Delayed)
    FROM FlightData
    WHERE Carrier IN ('AA', 'UA') AND Airport IN ('COS','MFE','MTJ','ROC')
    GROUP BY Carrier

The parser produces a :class:`~repro.sql.ast.SelectStatement` whose WHERE
clause compiles to the :mod:`repro.relation.predicates` AST, so parsed
queries run directly against a :class:`~repro.relation.table.Table`.
"""

from repro.sql.ast import Aggregate, SelectStatement
from repro.sql.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_select

__all__ = [
    "Aggregate",
    "SelectStatement",
    "SqlSyntaxError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_select",
]
