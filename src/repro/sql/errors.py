"""Errors raised by the SQL front-end."""

from __future__ import annotations


class SqlSyntaxError(ValueError):
    """Raised when the SQL text cannot be tokenized or parsed.

    Carries the character position so callers can point at the offending
    fragment.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position
