"""Recursive-descent parser for the SQL subset (see :mod:`repro.sql`).

Grammar (keywords case-insensitive)::

    select     := SELECT item (',' item)* FROM identifier
                  [WHERE condition] [GROUP BY identifier (',' identifier)*]
    item       := identifier | AVG '(' identifier ')'
    condition  := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | primary
    primary    := '(' condition ')'
                | identifier IN '(' literal (',' literal)* ')'
                | identifier NOT IN '(' literal (',' literal)* ')'
                | identifier ('=' | '!=' | '<>' | '<' | '<=' | '>' | '>=') literal
    literal    := string | number
"""

from __future__ import annotations

from typing import Any

from repro.relation.predicates import (
    And,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    NotIn,
    Or,
    Predicate,
    TRUE,
)
from repro.sql.ast import Aggregate, SelectStatement
from repro.sql.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenKind, tokenize


def parse_select(text: str) -> SelectStatement:
    """Parse a group-by-average SELECT statement."""
    return _Parser(tokenize(text)).parse_select()


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token stream helpers ------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise SqlSyntaxError(f"expected {word}, found {token.text!r}", token.position)
        return token

    def _expect_kind(self, kind: TokenKind, what: str) -> Token:
        token = self._advance()
        if token.kind is not kind:
            raise SqlSyntaxError(f"expected {what}, found {token.text!r}", token.position)
        return token

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _match_kind(self, kind: TokenKind) -> bool:
        if self._peek().kind is kind:
            self._advance()
            return True
        return False

    # -- grammar productions -------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        plain_columns: list[str] = []
        aggregates: list[Aggregate] = []
        while True:
            token = self._peek()
            if token.is_keyword("AVG"):
                self._advance()
                self._expect_kind(TokenKind.LPAREN, "'('")
                column = self._expect_kind(TokenKind.IDENTIFIER, "column name").text
                self._expect_kind(TokenKind.RPAREN, "')'")
                aggregates.append(Aggregate(column))
            elif token.kind is TokenKind.IDENTIFIER:
                plain_columns.append(self._advance().text)
            else:
                raise SqlSyntaxError(
                    f"expected column or avg(...), found {token.text!r}", token.position
                )
            if not self._match_kind(TokenKind.COMMA):
                break
        self._expect_keyword("FROM")
        table_name = self._expect_kind(TokenKind.IDENTIFIER, "table name").text

        where: Predicate = TRUE
        if self._match_keyword("WHERE"):
            where = self._parse_condition()

        group_by: list[str] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expect_kind(TokenKind.IDENTIFIER, "column name").text)
            while self._match_kind(TokenKind.COMMA):
                group_by.append(self._expect_kind(TokenKind.IDENTIFIER, "column name").text)

        tail = self._peek()
        if tail.kind is not TokenKind.END:
            raise SqlSyntaxError(f"unexpected trailing input {tail.text!r}", tail.position)
        return SelectStatement(
            select_columns=tuple(plain_columns),
            aggregates=tuple(aggregates),
            table_name=table_name,
            where=where,
            group_by=tuple(group_by),
        )

    def _parse_condition(self) -> Predicate:
        return self._parse_or()

    def _parse_or(self) -> Predicate:
        operands = [self._parse_and()]
        while self._match_keyword("OR"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(operands)

    def _parse_and(self) -> Predicate:
        operands = [self._parse_unary()]
        while self._match_keyword("AND"):
            operands.append(self._parse_unary())
        return operands[0] if len(operands) == 1 else And(operands)

    def _parse_unary(self) -> Predicate:
        if self._match_keyword("NOT"):
            return Not(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Predicate:
        if self._match_kind(TokenKind.LPAREN):
            inner = self._parse_condition()
            self._expect_kind(TokenKind.RPAREN, "')'")
            return inner
        column = self._expect_kind(TokenKind.IDENTIFIER, "column name").text
        token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            return In(column, self._parse_literal_list())
        if token.is_keyword("NOT"):
            self._advance()
            self._expect_keyword("IN")
            return NotIn(column, self._parse_literal_list())
        operator = self._expect_kind(TokenKind.OPERATOR, "comparison operator").text
        literal = self._parse_literal()
        if operator == "=":
            return Eq(column, literal)
        if operator in {"!=", "<>"}:
            return Ne(column, literal)
        numeric = float(literal)
        if operator == "<":
            return Lt(column, numeric)
        if operator == "<=":
            return Le(column, numeric)
        if operator == ">":
            return Gt(column, numeric)
        if operator == ">=":
            return Ge(column, numeric)
        raise SqlSyntaxError(f"unsupported operator {operator!r}", token.position)

    def _parse_literal_list(self) -> list[Any]:
        self._expect_kind(TokenKind.LPAREN, "'('")
        literals = [self._parse_literal()]
        while self._match_kind(TokenKind.COMMA):
            literals.append(self._parse_literal())
        self._expect_kind(TokenKind.RPAREN, "')'")
        return literals

    def _parse_literal(self) -> Any:
        token = self._advance()
        if token.kind is TokenKind.STRING:
            return token.text
        if token.kind is TokenKind.NUMBER:
            text = token.text
            return float(text) if "." in text else int(text)
        raise SqlSyntaxError(f"expected literal, found {token.text!r}", token.position)
