"""Pointwise mutual-information contributions (paper Def. 3.4).

The degree of contribution of a value pair ``(x, y)`` to ``I(X;Y)`` is::

    kappa(x, y) = Pr(x, y) * log( Pr(x, y) / (Pr(x) Pr(y)) )

Mutual information decomposes as the sum of contributions over all pairs,
so a pair's kappa can be positive (the pair co-occurs more than
independence predicts), negative, or zero.  Fine-grained explanations rank
triples by these contributions (Alg. 3).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.relation.table import Table


def pointwise_contribution(
    joint_probability: float, marginal_x: float, marginal_y: float
) -> float:
    """kappa for one cell given its joint and marginal probabilities."""
    if joint_probability < 0 or marginal_x < 0 or marginal_y < 0:
        raise ValueError("probabilities must be non-negative")
    if joint_probability == 0.0:
        return 0.0
    if marginal_x == 0.0 or marginal_y == 0.0:
        raise ValueError("a cell with positive joint mass has positive marginals")
    return joint_probability * float(np.log(joint_probability / (marginal_x * marginal_y)))


def contribution_table(
    table: Table, x_column: str, y_column: str
) -> dict[tuple[Any, Any], float]:
    """kappa(x, y) for every observed value pair of two columns.

    The sum of the returned values equals the plug-in estimate of
    ``I(X;Y)`` on the table (an identity the tests verify).
    """
    n = table.n_rows
    if n == 0:
        return {}
    joint_counts = table.value_counts([x_column, y_column])
    x_counts = table.value_counts([x_column])
    y_counts = table.value_counts([y_column])
    contributions: dict[tuple[Any, Any], float] = {}
    for (x_value, y_value), count in joint_counts.items():
        joint_p = count / n
        p_x = x_counts[(x_value,)] / n
        p_y = y_counts[(y_value,)] / n
        contributions[(x_value, y_value)] = pointwise_contribution(joint_p, p_x, p_y)
    return contributions
