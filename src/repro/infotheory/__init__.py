"""Information-theoretic estimators (paper Sec. 2 and Appendix 10.1).

Entropies are estimated from samples with either the plug-in (maximum
likelihood) estimator or the Miller-Madow bias-corrected estimator the paper
uses.  Every higher-level quantity -- conditional entropy, (conditional)
mutual information, pointwise contributions -- is derived from joint
entropies, and :class:`~repro.infotheory.cache.EntropyEngine` memoizes those
joints (the "caching entropy" optimization of Sec. 6).
"""

from repro.infotheory.cache import EntropyEngine
from repro.infotheory.contributions import contribution_table, pointwise_contribution
from repro.infotheory.entropy import (
    entropy_from_counts,
    entropy_from_probabilities,
    miller_madow_entropy,
    plugin_entropy,
)
from repro.infotheory.mutual_information import (
    conditional_mutual_information,
    mutual_information_from_matrix,
)

__all__ = [
    "EntropyEngine",
    "contribution_table",
    "pointwise_contribution",
    "entropy_from_counts",
    "entropy_from_probabilities",
    "miller_madow_entropy",
    "plugin_entropy",
    "conditional_mutual_information",
    "mutual_information_from_matrix",
]
