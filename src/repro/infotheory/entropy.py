"""Entropy estimators over count vectors.

All entropies are in *nats* (natural logarithm); the choice of base cancels
in every quantity HypDB uses (independence tests compare against 0, and
responsibilities are ratios).

Two estimators are provided:

``plugin``
    The maximum-likelihood estimate ``-sum(p log p)`` with ``p = counts/n``.
    Biased downward for small samples.

``miller_madow``
    The plug-in estimate plus the Miller-Madow first-order bias correction
    ``(m - 1) / (2n)`` where ``m`` is the number of *observed* (non-empty)
    cells [32].  This is the estimator the paper specifies (Sec. 2).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

_ESTIMATORS = ("plugin", "miller_madow")


def entropy_from_probabilities(probabilities: np.ndarray) -> float:
    """Exact entropy (nats) of a probability vector.

    Zero entries contribute zero (the ``0 log 0 = 0`` convention).  The
    vector must be non-negative and sum to ~1.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    positive = p[p > 0]
    return float(-np.sum(positive * np.log(positive)))


def plugin_entropy(counts: np.ndarray | Iterable[int]) -> float:
    """Maximum-likelihood entropy estimate (nats) from a count vector."""
    c = np.asarray(list(counts) if not isinstance(counts, np.ndarray) else counts,
                   dtype=np.float64)
    if np.any(c < 0):
        raise ValueError("counts must be non-negative")
    n = c.sum()
    if n == 0:
        return 0.0
    positive = c[c > 0]
    # H = log n - (1/n) * sum c log c  avoids forming p explicitly.
    return float(np.log(n) - np.dot(positive, np.log(positive)) / n)


def miller_madow_entropy(counts: np.ndarray | Iterable[int]) -> float:
    """Miller-Madow bias-corrected entropy estimate (nats).

    ``H_mm = H_plugin + (m - 1) / (2n)`` with ``m`` the number of observed
    (non-zero) cells.  For ``n = 0`` the estimate is 0.
    """
    c = np.asarray(list(counts) if not isinstance(counts, np.ndarray) else counts,
                   dtype=np.float64)
    if np.any(c < 0):
        raise ValueError("counts must be non-negative")
    n = c.sum()
    if n == 0:
        return 0.0
    observed_cells = int(np.count_nonzero(c))
    return plugin_entropy(c) + (observed_cells - 1) / (2.0 * n)


def entropy_from_counts(counts: np.ndarray | Iterable[int], estimator: str = "miller_madow") -> float:
    """Dispatch to the named estimator (``plugin`` or ``miller_madow``)."""
    if estimator == "miller_madow":
        return miller_madow_entropy(counts)
    if estimator == "plugin":
        return plugin_entropy(counts)
    raise ValueError(f"unknown estimator {estimator!r}; expected one of {_ESTIMATORS}")
