"""Mutual information helpers.

Free-function entry points for code that does not hold an
:class:`~repro.infotheory.cache.EntropyEngine` -- most importantly the
permutation test (paper Alg. 2), which evaluates the mutual information of
thousands of small 2-way contingency matrices per call.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.infotheory.entropy import entropy_from_counts
from repro.relation.table import Table


def mutual_information_from_matrix(matrix: np.ndarray, estimator: str = "plugin") -> float:
    """Mutual information (nats) of the joint distribution in an r x c count matrix.

    ``I(X;Y) = H(row margins) + H(col margins) - H(cells)`` with the chosen
    entropy estimator.  This is the inner kernel of the MIT permutation test
    (paper Alg. 2, line 5), evaluated once per sampled contingency table.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D contingency matrix, got shape {m.shape}")
    row_margins = m.sum(axis=1)
    col_margins = m.sum(axis=0)
    h_rows = entropy_from_counts(row_margins, estimator)
    h_cols = entropy_from_counts(col_margins, estimator)
    h_joint = entropy_from_counts(m.ravel(), estimator)
    return h_rows + h_cols - h_joint


def mutual_information_batch(tables: np.ndarray, estimator: str = "plugin") -> np.ndarray:
    """Mutual information of ``m`` contingency tables with *shared marginals*.

    ``tables`` has shape ``(m, r, c)`` and every table must have the same
    row and column margins (exactly what the Patefield sampler produces).
    Because the margins are fixed, the marginal entropies are constant
    across replicates and only the joint entropy varies -- the MIT inner
    loop therefore reduces to one vectorized pass over the cell counts.
    """
    stack = np.asarray(tables, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError(f"expected (m, r, c) tables, got shape {stack.shape}")
    m = stack.shape[0]
    if m == 0:
        return np.zeros(0)
    first = stack[0]
    n = first.sum()
    if n == 0:
        return np.zeros(m)
    h_rows = entropy_from_counts(first.sum(axis=1), estimator)
    h_cols = entropy_from_counts(first.sum(axis=0), estimator)
    flat = stack.reshape(m, -1)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(flat > 0, flat * np.log(flat), 0.0)
    h_joint = np.log(n) - terms.sum(axis=1) / n
    if estimator == "miller_madow":
        observed = np.count_nonzero(flat, axis=1)
        h_joint = h_joint + (observed - 1) / (2.0 * n)
    elif estimator != "plugin":
        raise ValueError(f"unknown estimator {estimator!r}")
    return h_rows + h_cols - h_joint


def conditional_mutual_information(
    table: Table,
    xs: Sequence[str] | str,
    ys: Sequence[str] | str,
    zs: Sequence[str] = (),
    estimator: str = "miller_madow",
) -> float:
    """``I(xs ; ys | zs)`` estimated directly from a table (no caching).

    Convenience wrapper used in tests and one-off computations; hot paths
    should go through :class:`~repro.infotheory.cache.EntropyEngine`.
    """
    from repro.infotheory.cache import EntropyEngine

    x = (xs,) if isinstance(xs, str) else tuple(xs)
    y = (ys,) if isinstance(ys, str) else tuple(ys)
    engine = EntropyEngine(table, estimator=estimator, caching=False)
    return engine.mutual_information(x, y, tuple(zs))
