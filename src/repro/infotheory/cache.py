"""Cached entropy engine over a table (paper Sec. 6, "Caching entropy").

Computing ``I(T;Y|Z)`` requires the joint entropies ``H(TZ)``, ``H(YZ)``,
``H(TYZ)``, ``H(Z)``; those joints are shared across the many conditional
mutual-information statements issued by the CD algorithm and the bias
detector.  :class:`EntropyEngine` binds to one table (one query context Γ)
and memoizes every joint entropy it computes.  It can optionally be backed
by a pre-computed :class:`~repro.relation.cube.DataCube`, in which case
covered requests are answered by cuboid lookup without touching the data
(Fig. 6(d)).

**Worker safety.**  Every piece of state here -- the memo dict
(``frozenset`` keys, ``float`` values), :class:`EngineStats`, and the
bound :class:`~repro.relation.table.Table` -- is picklable, so an engine
(or a table whose shared cache it populates) can travel into an execution
-engine worker.  A worker's copy of the memo diverges from the parent's;
to avoid silently discarding worker-computed entropies, tasks return
:meth:`EntropyEngine.export_cache` (or
``Table.export_entropy_caches``) and the parent merges it back with
:meth:`EntropyEngine.merge_cache` (or ``Table.merge_entropy_caches``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.infotheory.entropy import entropy_from_counts
from repro.relation.cube import DataCube
from repro.relation.table import GroupedContingencies, Table

#: Sentinel for "caller has not attempted the grouped kernel": distinct
#: from ``None``, which means "attempted and declined" -- a caller that
#: already watched the kernel decline must not trigger a second, equally
#: doomed pass.
ATTEMPT_KERNEL = object()


@dataclass
class EngineStats:
    """Instrumentation counters for benchmarking the optimizations."""

    cache_hits: int = 0
    cache_misses: int = 0
    cube_answers: int = 0
    scan_answers: int = 0
    grouped_answers: int = 0

    def reset(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.cube_answers = 0
        self.scan_answers = 0
        self.grouped_answers = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of entropy requests answered from the memo (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters (consumed by the service ``/stats`` endpoint)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cube_answers": self.cube_answers,
            "scan_answers": self.scan_answers,
            "grouped_answers": self.grouped_answers,
            "hit_ratio": self.hit_ratio,
        }


class EntropyEngine:
    """Memoizing entropy / mutual-information calculator over one table.

    Parameters
    ----------
    table:
        The relation (already filtered to the query context, if any).
    estimator:
        ``"miller_madow"`` (paper default) or ``"plugin"``.
    cube:
        Optional pre-computed data cube; requests over covered attribute
        sets are answered from the cube.
    caching:
        Set ``False`` to disable memoization (used by the Fig. 6(c)
        ablation bench).
    """

    def __init__(
        self,
        table: Table,
        estimator: str = "miller_madow",
        cube: DataCube | None = None,
        caching: bool = True,
    ) -> None:
        self._table = table
        self._estimator = estimator
        self._cube = cube
        self._caching = caching
        if caching and cube is None:
            # Share the memo with every other engine bound to this table
            # instance -- entropies are identical regardless of which test
            # requested them (paper Sec. 6, "Caching entropy").
            self._cache = table.entropy_cache(estimator)
        else:
            self._cache = {}
        self.stats = EngineStats()

    @property
    def table(self) -> Table:
        """The bound relation."""
        return self._table

    @property
    def estimator(self) -> str:
        """Name of the entropy estimator in use."""
        return self._estimator

    @property
    def n_rows(self) -> int:
        """Rows in the bound relation."""
        return self._table.n_rows

    def entropy(self, columns: Sequence[str]) -> float:
        """Joint entropy ``H(columns)`` (nats), memoized."""
        key = frozenset(columns)
        if self._caching and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        self.stats.cache_misses += 1
        value = self._compute_entropy(tuple(columns))
        if self._caching:
            self._cache[key] = value
        return value

    def conditional_entropy(self, columns: Sequence[str], given: Sequence[str]) -> float:
        """``H(columns | given) = H(columns ∪ given) - H(given)``."""
        joint = tuple(dict.fromkeys(tuple(columns) + tuple(given)))
        return self.entropy(joint) - self.entropy(tuple(given))

    def mutual_information(
        self,
        xs: Sequence[str],
        ys: Sequence[str],
        zs: Sequence[str] = (),
    ) -> float:
        """Conditional mutual information ``I(xs ; ys | zs)`` (nats).

        Computed from joint entropies as
        ``H(XZ) + H(YZ) - H(XYZ) - H(Z)``.  With the plug-in estimator the
        result is always >= 0 up to float rounding; the Miller-Madow
        correction can make it slightly negative on sparse data, which
        callers treat as "indistinguishable from zero".
        """
        x = tuple(xs)
        y = tuple(ys)
        z = tuple(zs)
        overlap = (set(x) | set(y)) & set(z)
        if overlap:
            raise ValueError(f"conditioning set overlaps arguments: {sorted(overlap)}")
        if set(x) & set(y):
            raise ValueError("mutual information arguments must be disjoint")
        h_xz = self.entropy(_union(x, z))
        h_yz = self.entropy(_union(y, z))
        h_xyz = self.entropy(_union(x, y, z))
        h_z = self.entropy(z)
        return h_xz + h_yz - h_xyz - h_z

    # ------------------------------------------------------------------
    # Tensor-fed entropy batches (grouped contingency kernel)
    # ------------------------------------------------------------------
    #
    # One Table.grouped_contingencies pass over (X, Y | Z) holds all four
    # joint count vectors a CMI needs.  The transposes below arrange each
    # marginal's cells in exactly the packed order the direct
    # ``joint_counts`` scans produce (leading variable major, joint Z code
    # minor -- proven bit-identical in stats/chi2._cmi_from_grouped), so a
    # registered entropy is the identical float a fresh scan in that
    # column order would compute.  Entries are therefore memoized under
    # *ordered tuple* keys: unlike the set-keyed memo above (where the
    # first computation order wins), an ordered entry can be shared across
    # any number of tests without perturbing a single output bit.

    def _grouped_count_sources(
        self, x: str, y: str, z: tuple[str, ...], grouped: GroupedContingencies
    ) -> dict[tuple[str, ...], Any]:
        """Lazy count-vector extractors for the four entropies, by key."""
        tensor = grouped.tensor
        sources: dict[tuple[str, ...], Any] = {
            (x, *z): lambda: tensor.sum(axis=2).T.ravel(),
            (y, *z): lambda: tensor.sum(axis=1).T.ravel(),
            (x, y, *z): lambda: tensor.transpose(1, 2, 0).ravel(),
        }
        if z:
            sources[z] = lambda: grouped.group_counts
        return sources

    def absorb_grouped(
        self, x: str, y: str, z: Sequence[str], grouped: GroupedContingencies
    ) -> int:
        """Register H(XZ), H(YZ), H(XYZ), H(Z) from one grouped-kernel pass.

        Entries land in the shared memo under ordered keys ``(x, *z)``,
        ``(y, *z)``, ``(x, y, *z)``, ``z``; keys already present are left
        untouched (they are identical floats by construction, so skipping
        is purely a cheap no-op).  Returns the number of entries added.
        ``H(Z)`` for ``z = ()`` is exactly 0 by convention and never
        stored.  No-op when caching is disabled.
        """
        if not self._caching:
            return 0
        added = 0
        for key, counts in self._grouped_count_sources(x, y, tuple(z), grouped).items():
            if key not in self._cache:
                self._cache[key] = entropy_from_counts(counts(), self._estimator)
                self.stats.grouped_answers += 1
                added += 1
        return added

    def cmi_grouped(self, x: str, y: str, z: Sequence[str], grouped=ATTEMPT_KERNEL) -> float:
        """``I(x ; y | z)`` fed from the grouped tensor and the ordered memo.

        Resolution order per entropy: ordered-memo hit, then the grouped
        tensor (run at most once per call, and only when >= 2 entropies
        are actually missing -- a single gap is cheaper to fill with one
        direct scan), then a ``joint_counts`` scan in the same packed
        order.  Every source yields the identical float, so the returned
        CMI is bit-identical to :meth:`mutual_information` on the same
        arguments regardless of what was cached by whom.

        ``grouped`` follows the chi2 convention: a kernel output is
        consumed directly, an explicit ``None`` records "kernel already
        declined" and skips straight to scans.
        """
        z = tuple(z)
        keys = [(x, *z), (y, *z), (x, y, *z)] + ([z] if z else [])
        cache = self._cache if self._caching else None
        missing = [key for key in keys if cache is None or key not in cache]
        if grouped is ATTEMPT_KERNEL:
            grouped = (
                self._table.grouped_contingencies(x, y, z) if len(missing) >= 2 else None
            )
        computed: dict[tuple[str, ...], float] = {}
        if grouped is not None and missing:
            if cache is not None:
                # One registration path for tensor-fed entropies: the
                # public absorb fills exactly the missing keys.
                self.absorb_grouped(x, y, z, grouped)
            else:
                sources = self._grouped_count_sources(x, y, z, grouped)
                for key in missing:
                    computed[key] = entropy_from_counts(sources[key](), self._estimator)
                    self.stats.grouped_answers += 1

        def resolve(key: tuple[str, ...]) -> float:
            if cache is not None and key in cache:
                self.stats.cache_hits += 1
                return cache[key]
            self.stats.cache_misses += 1
            if key in computed:
                value = computed[key]
            else:
                value = self._compute_entropy(key)
            if cache is not None:
                cache[key] = value
            return value

        h_xz = resolve((x, *z))
        h_yz = resolve((y, *z))
        h_xyz = resolve((x, y, *z))
        h_z = resolve(z) if z else 0.0
        return h_xz + h_yz - h_xyz - h_z

    def shared_entropies(
        self, x: str, y: str, z: Sequence[str] = (), grouped=ATTEMPT_KERNEL
    ) -> tuple[float, float, float, float]:
        """``H(x,*z), H(y,*z), H(x,y,*z), H(z)`` -- set-cache-first, kernel-fed.

        The bitwise-compatible routing for callers that historically went
        through :meth:`entropy`'s frozenset memo (the FD pre-filter, the
        explanation ranking): each entropy resolves, in order, from the
        *set-keyed* memo (exactly what those callers saw before), from
        the *ordered* memo (entries are bit-exact for this packed order,
        i.e. the identical float a fresh scan here would produce), from
        one grouped-kernel pass (run at most once, and only when >= 2
        entropies are missing), and finally from a direct scan in the
        same column order as before.  Values resolved from any non-set
        source are stored under *both* key kinds: the frozenset entry is
        exactly the float the legacy scan would have memoized (so later
        set-keyed callers are unperturbed), and the ordered entry is what
        lets warm tables -- including entries merged back from workers,
        which travel ordered-only -- answer with zero data passes.
        """
        z = tuple(z)
        ordered_keys = [(x, *z), (y, *z), (x, y, *z)]
        if z:
            ordered_keys.append(z)
        cache = self._cache if self._caching else None

        def lookup(key: tuple[str, ...]) -> float | None:
            if cache is None:
                return None
            value = cache.get(frozenset(key))
            if value is None:
                value = cache.get(key)
            return value

        missing = [key for key in ordered_keys if lookup(key) is None]
        if grouped is ATTEMPT_KERNEL:
            grouped = (
                self._table.grouped_contingencies(x, y, z) if len(missing) >= 2 else None
            )
        computed: dict[tuple[str, ...], float] = {}
        if grouped is not None and missing:
            sources = self._grouped_count_sources(x, y, z, grouped)
            for key in missing:
                computed[key] = entropy_from_counts(sources[key](), self._estimator)
                self.stats.grouped_answers += 1

        def resolve(key: tuple[str, ...]) -> float:
            if cache is not None:
                set_key = frozenset(key)
                value = cache.get(set_key)
                if value is not None:
                    self.stats.cache_hits += 1
                    return value
                value = cache.get(key)
                if value is not None:
                    self.stats.cache_hits += 1
                    # The ordered entry IS the float a scan in this order
                    # would have stored under the set key; seed it so
                    # later set-keyed callers behave as if we had scanned.
                    cache[set_key] = value
                    return value
            self.stats.cache_misses += 1
            value = computed.get(key)
            if value is None:
                value = self._compute_entropy(key)
            if cache is not None:
                cache[key] = value
                cache[frozenset(key)] = value
            return value

        h_xz = resolve(ordered_keys[0])
        h_yz = resolve(ordered_keys[1])
        h_xyz = resolve(ordered_keys[2])
        h_z = resolve(z) if z else 0.0
        return h_xz, h_yz, h_xyz, h_z

    def cmi_shared(self, x: str, y: str, z: Sequence[str] = ()) -> float:
        """``I(x ; y | z)`` through :meth:`shared_entropies`.

        Bit-identical to :meth:`mutual_information` on the same arguments
        (same entropy floats, same ``H(XZ) + H(YZ) - H(XYZ) - H(Z)``
        summation order), but cold requests fill all four entropies from
        one grouped-contingency pass and warm ones touch no data at all.
        """
        h_xz, h_yz, h_xyz, h_z = self.shared_entropies(x, y, z)
        return h_xz + h_yz - h_xyz - h_z

    def preload(self, column_sets: Sequence[Sequence[str]]) -> None:
        """Compute and cache entropies for several column sets up front.

        Models the "precomputed entropies" series of Fig. 6(c).
        """
        for columns in column_sets:
            self.entropy(columns)

    def cache_size(self) -> int:
        """Number of memoized joint entropies."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoized entropies (stats are kept)."""
        self._cache.clear()

    def export_cache(self) -> dict:
        """Picklable snapshot of the memo (for returning from a worker).

        Contains both set-keyed and ordered (tuple-keyed) entries; see
        :meth:`Table.entropy_cache` for the two key kinds.
        """
        return dict(self._cache)

    def merge_cache(self, cache: dict) -> None:
        """Merge a snapshot exported by a worker copy of this engine.

        Entropies are pure functions of the bound table and estimator, so
        merging snapshots from (copies of) the same binding is idempotent
        and never loses entries.
        """
        self._cache.update(cache)

    # ------------------------------------------------------------------

    def _compute_entropy(self, columns: tuple[str, ...]) -> float:
        if not columns:
            return 0.0
        if self._cube is not None and self._cube.covers(columns):
            self.stats.cube_answers += 1
            counts = np.asarray(self._cube.count_vector(columns), dtype=np.float64)
        else:
            self.stats.scan_answers += 1
            counts = self._table.joint_counts(columns)
        return entropy_from_counts(counts, self._estimator)


def _union(*groups: tuple[str, ...]) -> tuple[str, ...]:
    """Ordered union of column tuples (first occurrence wins)."""
    seen: dict[str, None] = {}
    for group in groups:
        for name in group:
            seen.setdefault(name, None)
    return tuple(seen)
