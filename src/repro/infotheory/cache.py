"""Cached entropy engine over a table (paper Sec. 6, "Caching entropy").

Computing ``I(T;Y|Z)`` requires the joint entropies ``H(TZ)``, ``H(YZ)``,
``H(TYZ)``, ``H(Z)``; those joints are shared across the many conditional
mutual-information statements issued by the CD algorithm and the bias
detector.  :class:`EntropyEngine` binds to one table (one query context Γ)
and memoizes every joint entropy it computes.  It can optionally be backed
by a pre-computed :class:`~repro.relation.cube.DataCube`, in which case
covered requests are answered by cuboid lookup without touching the data
(Fig. 6(d)).

**Worker safety.**  Every piece of state here -- the memo dict
(``frozenset`` keys, ``float`` values), :class:`EngineStats`, and the
bound :class:`~repro.relation.table.Table` -- is picklable, so an engine
(or a table whose shared cache it populates) can travel into an execution
-engine worker.  A worker's copy of the memo diverges from the parent's;
to avoid silently discarding worker-computed entropies, tasks return
:meth:`EntropyEngine.export_cache` (or
``Table.export_entropy_caches``) and the parent merges it back with
:meth:`EntropyEngine.merge_cache` (or ``Table.merge_entropy_caches``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.infotheory.entropy import entropy_from_counts
from repro.relation.cube import DataCube
from repro.relation.table import Table


@dataclass
class EngineStats:
    """Instrumentation counters for benchmarking the optimizations."""

    cache_hits: int = 0
    cache_misses: int = 0
    cube_answers: int = 0
    scan_answers: int = 0

    def reset(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.cube_answers = 0
        self.scan_answers = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of entropy requests answered from the memo (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters (consumed by the service ``/stats`` endpoint)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cube_answers": self.cube_answers,
            "scan_answers": self.scan_answers,
            "hit_ratio": self.hit_ratio,
        }


class EntropyEngine:
    """Memoizing entropy / mutual-information calculator over one table.

    Parameters
    ----------
    table:
        The relation (already filtered to the query context, if any).
    estimator:
        ``"miller_madow"`` (paper default) or ``"plugin"``.
    cube:
        Optional pre-computed data cube; requests over covered attribute
        sets are answered from the cube.
    caching:
        Set ``False`` to disable memoization (used by the Fig. 6(c)
        ablation bench).
    """

    def __init__(
        self,
        table: Table,
        estimator: str = "miller_madow",
        cube: DataCube | None = None,
        caching: bool = True,
    ) -> None:
        self._table = table
        self._estimator = estimator
        self._cube = cube
        self._caching = caching
        if caching and cube is None:
            # Share the memo with every other engine bound to this table
            # instance -- entropies are identical regardless of which test
            # requested them (paper Sec. 6, "Caching entropy").
            self._cache = table.entropy_cache(estimator)
        else:
            self._cache = {}
        self.stats = EngineStats()

    @property
    def table(self) -> Table:
        """The bound relation."""
        return self._table

    @property
    def estimator(self) -> str:
        """Name of the entropy estimator in use."""
        return self._estimator

    @property
    def n_rows(self) -> int:
        """Rows in the bound relation."""
        return self._table.n_rows

    def entropy(self, columns: Sequence[str]) -> float:
        """Joint entropy ``H(columns)`` (nats), memoized."""
        key = frozenset(columns)
        if self._caching and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        self.stats.cache_misses += 1
        value = self._compute_entropy(tuple(columns))
        if self._caching:
            self._cache[key] = value
        return value

    def conditional_entropy(self, columns: Sequence[str], given: Sequence[str]) -> float:
        """``H(columns | given) = H(columns ∪ given) - H(given)``."""
        joint = tuple(dict.fromkeys(tuple(columns) + tuple(given)))
        return self.entropy(joint) - self.entropy(tuple(given))

    def mutual_information(
        self,
        xs: Sequence[str],
        ys: Sequence[str],
        zs: Sequence[str] = (),
    ) -> float:
        """Conditional mutual information ``I(xs ; ys | zs)`` (nats).

        Computed from joint entropies as
        ``H(XZ) + H(YZ) - H(XYZ) - H(Z)``.  With the plug-in estimator the
        result is always >= 0 up to float rounding; the Miller-Madow
        correction can make it slightly negative on sparse data, which
        callers treat as "indistinguishable from zero".
        """
        x = tuple(xs)
        y = tuple(ys)
        z = tuple(zs)
        overlap = (set(x) | set(y)) & set(z)
        if overlap:
            raise ValueError(f"conditioning set overlaps arguments: {sorted(overlap)}")
        if set(x) & set(y):
            raise ValueError("mutual information arguments must be disjoint")
        h_xz = self.entropy(_union(x, z))
        h_yz = self.entropy(_union(y, z))
        h_xyz = self.entropy(_union(x, y, z))
        h_z = self.entropy(z)
        return h_xz + h_yz - h_xyz - h_z

    def preload(self, column_sets: Sequence[Sequence[str]]) -> None:
        """Compute and cache entropies for several column sets up front.

        Models the "precomputed entropies" series of Fig. 6(c).
        """
        for columns in column_sets:
            self.entropy(columns)

    def cache_size(self) -> int:
        """Number of memoized joint entropies."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoized entropies (stats are kept)."""
        self._cache.clear()

    def export_cache(self) -> dict[frozenset[str], float]:
        """Picklable snapshot of the memo (for returning from a worker)."""
        return dict(self._cache)

    def merge_cache(self, cache: dict[frozenset[str], float]) -> None:
        """Merge a snapshot exported by a worker copy of this engine.

        Entropies are pure functions of the bound table and estimator, so
        merging snapshots from (copies of) the same binding is idempotent
        and never loses entries.
        """
        self._cache.update(cache)

    # ------------------------------------------------------------------

    def _compute_entropy(self, columns: tuple[str, ...]) -> float:
        if not columns:
            return 0.0
        if self._cube is not None and self._cube.covers(columns):
            self.stats.cube_answers += 1
            counts = np.asarray(self._cube.count_vector(columns), dtype=np.float64)
        else:
            self.stats.scan_answers += 1
            counts = self._table.joint_counts(columns)
        return entropy_from_counts(counts, self._estimator)


def _union(*groups: tuple[str, ...]) -> tuple[str, ...]:
    """Ordered union of column tuples (first occurrence wins)."""
    seen: dict[str, None] = {}
    for group in groups:
        for name in group:
            seen.setdefault(name, None)
    return tuple(seen)
