"""Causal DAGs: structure queries, d-separation, Markov boundaries.

A causal DAG captures all potential cause-effect relations between
attributes (paper Sec. 2).  This class provides the graph-theoretic
machinery the paper relies on:

* parents / children / ancestors / descendants;
* d-separation (Appendix 10.1), implemented with the reachability
  ("Bayes-ball") algorithm;
* the unique Markov boundary of a node -- parents, children, and parents of
  children (Prop. 2.5);
* the back-door criterion (Thm. 10.3) for validating covariate sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx


class CausalDAG:
    """A directed acyclic graph over named attributes.

    The graph is immutable-by-convention: construct it with all nodes and
    edges, then query.  ``add_edge`` validates acyclicity eagerly so an
    invalid model fails at construction time, not inside an algorithm.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        edges: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(nodes)
        for source, target in edges:
            self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Add an isolated node (no-op if present)."""
        self._graph.add_node(node)

    def add_edge(self, source: str, target: str) -> None:
        """Add the edge ``source -> target``; reject self-loops and cycles."""
        if source == target:
            raise ValueError(f"self-loop on {source!r} is not allowed in a DAG")
        self._graph.add_edge(source, target)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(source, target)
            raise ValueError(f"edge {source!r} -> {target!r} would create a cycle")

    def copy(self) -> "CausalDAG":
        """An independent copy of this DAG."""
        return CausalDAG(self.nodes(), self.edges())

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All node names (sorted for determinism)."""
        return sorted(self._graph.nodes)

    def edges(self) -> list[tuple[str, str]]:
        """All directed edges (sorted for determinism)."""
        return sorted(self._graph.edges)

    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._graph.number_of_nodes()

    def n_edges(self) -> int:
        """Number of edges."""
        return self._graph.number_of_edges()

    def has_node(self, node: str) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._graph

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the directed edge exists."""
        return self._graph.has_edge(source, target)

    def parents(self, node: str) -> set[str]:
        """``PA(node)``: the direct causes of ``node``."""
        self._check_node(node)
        return set(self._graph.predecessors(node))

    def children(self, node: str) -> set[str]:
        """The direct effects of ``node``."""
        self._check_node(node)
        return set(self._graph.successors(node))

    def neighbors(self, node: str) -> set[str]:
        """Parents and children of ``node``."""
        return self.parents(node) | self.children(node)

    def ancestors(self, node: str) -> set[str]:
        """All causes of ``node`` (transitive, excluding itself)."""
        self._check_node(node)
        return set(nx.ancestors(self._graph, node))

    def descendants(self, node: str) -> set[str]:
        """All effects of ``node`` (transitive, excluding itself)."""
        self._check_node(node)
        return set(nx.descendants(self._graph, node))

    def topological_order(self) -> list[str]:
        """A deterministic topological ordering of the nodes."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def is_collider(self, a: str, b: str, c: str) -> bool:
        """Whether ``b`` is a collider on the path segment ``a - b - c``."""
        return self.has_edge(a, b) and self.has_edge(c, b)

    def markov_boundary(self, node: str) -> set[str]:
        """Parents, children, and parents of children of ``node`` (Prop. 2.5).

        For a DAG-isomorphic distribution this is the unique minimal set
        ``B`` with ``node ⊥ everything-else | B``.
        """
        boundary = self.parents(node) | self.children(node)
        for child in self.children(node):
            boundary |= self.parents(child)
        boundary.discard(node)
        return boundary

    def mediators(self, treatment: str, outcome: str) -> set[str]:
        """Nodes lying on a directed path from ``treatment`` to ``outcome``."""
        self._check_node(treatment)
        self._check_node(outcome)
        forward = self.descendants(treatment)
        backward = self.ancestors(outcome)
        return (forward & backward) - {treatment, outcome}

    # ------------------------------------------------------------------
    # d-separation and the back-door criterion
    # ------------------------------------------------------------------

    def d_separated(
        self,
        xs: Sequence[str] | str,
        ys: Sequence[str] | str,
        zs: Sequence[str] = (),
    ) -> bool:
        """Whether ``zs`` d-separates ``xs`` from ``ys`` (Appendix 10.1).

        Implemented with the linear-time reachability formulation: ``xs``
        and ``ys`` are d-connected given ``zs`` iff some ``y`` is reachable
        from some ``x`` along a path whose chains/forks avoid ``zs`` and
        whose colliders have a descendant in ``zs``.
        """
        x_set = {xs} if isinstance(xs, str) else set(xs)
        y_set = {ys} if isinstance(ys, str) else set(ys)
        z_set = set(zs)
        for node in x_set | y_set | z_set:
            self._check_node(node)
        if x_set & y_set:
            return False
        return not self._d_connected(x_set, y_set, z_set)

    def satisfies_backdoor(
        self, treatment: str, outcome: str, covariates: Sequence[str]
    ) -> bool:
        """The back-door criterion (Thm. 10.3).

        ``covariates`` must (a) contain no descendant of ``treatment`` and
        (b) block every back-door path (paths starting with an edge *into*
        the treatment) from ``treatment`` to ``outcome``.
        """
        z = set(covariates)
        if z & (self.descendants(treatment) | {treatment, outcome}):
            return False
        # Standard reduction: remove the treatment's outgoing edges; the
        # remaining paths from treatment to outcome are exactly the
        # back-door paths, which z must d-separate.
        pruned = CausalDAG(self.nodes(), [
            (source, target)
            for source, target in self.edges()
            if source != treatment
        ])
        return pruned.d_separated(treatment, outcome, sorted(z))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _d_connected(self, x_set: set[str], y_set: set[str], z_set: set[str]) -> bool:
        """Reachability check (Shachter's Bayes-ball / Koller & Friedman 3.27)."""
        # Phase 1: all nodes with a descendant in z (needed to open colliders).
        z_or_above = set(z_set)
        frontier = list(z_set)
        while frontier:
            node = frontier.pop()
            for parent in self._graph.predecessors(node):
                if parent not in z_or_above:
                    z_or_above.add(parent)
                    frontier.append(parent)
        # Phase 2: traverse (node, direction) states.  Direction "up" means
        # we arrived at node via one of its children (edge pointing at us),
        # "down" means via one of its parents.
        visited: set[tuple[str, str]] = set()
        stack = [(x, "up") for x in x_set]
        while stack:
            node, direction = stack.pop()
            if (node, direction) in visited:
                continue
            visited.add((node, direction))
            if node not in z_set and node in y_set:
                return True
            if direction == "up" and node not in z_set:
                for parent in self._graph.predecessors(node):
                    stack.append((parent, "up"))
                for child in self._graph.successors(node):
                    stack.append((child, "down"))
            elif direction == "down":
                if node not in z_set:
                    for child in self._graph.successors(node):
                        stack.append((child, "down"))
                if node in z_or_above:
                    for parent in self._graph.predecessors(node):
                        stack.append((parent, "up"))
        return False

    def _check_node(self, node: str) -> None:
        if node not in self._graph:
            raise KeyError(f"unknown node {node!r}; nodes are {self.nodes()}")

    def __repr__(self) -> str:
        return f"CausalDAG({self.n_nodes()} nodes, {self.n_edges()} edges)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalDAG):
            return NotImplemented
        return self.nodes() == other.nodes() and self.edges() == other.edges()

    def __hash__(self) -> int:
        return hash((tuple(self.nodes()), tuple(self.edges())))
