"""Full Grow-Shrink (FGS) structure learning (Margaritis & Thrun [28]).

One of the two constraint-based baselines of the paper's Sec. 7.4 quality
comparison.  The algorithm:

1. **Boundaries** -- compute the Markov boundary of every node with
   Grow-Shrink.
2. **Skeleton** -- ``X`` and ``Y`` are direct neighbors iff ``Y ∈ MB(X)``
   and no subset ``S`` of the *smaller* of ``MB(X) - {Y}`` and
   ``MB(Y) - {X}`` renders them independent; the separating set found is
   recorded.
3. **Collider orientation** -- for every non-adjacent pair ``(X, Z)`` with
   a common neighbor ``Y``: if ``Y`` is not in the recorded separating set
   of ``(X, Z)``, orient ``X -> Y <- Z``.
4. **Propagation** -- apply Meek's rules R1/R2 until fixpoint (orient
   edges whose reverse would create a new collider or a cycle).

The output is a :class:`~repro.causal.structure.pdag.PDAG`; edges that stay
undirected are genuinely unidentifiable from independence information.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from repro.causal.growshrink import grow_shrink_markov_blanket
from repro.causal.structure.pdag import PDAG
from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CITest
from repro.utils.subsets import bounded_subsets


class FullGrowShrink:
    """Constraint-based DAG learner built on Grow-Shrink boundaries.

    Parameters
    ----------
    test:
        Conditional-independence test (or oracle).
    alpha:
        Significance level for every test.
    max_cond_size:
        Cap on the separating-set size searched in the skeleton phase.
    blanket_algorithm:
        Callable computing Markov boundaries; defaults to Grow-Shrink and
        is swapped for IAMB by
        :class:`~repro.causal.structure.iamb_learner.IambLearner`.
    """

    name = "fgs"

    def __init__(
        self,
        test: CITest,
        alpha: float = DEFAULT_ALPHA,
        max_cond_size: int | None = 3,
        blanket_algorithm=grow_shrink_markov_blanket,
    ) -> None:
        self.test = test
        self.alpha = alpha
        self.max_cond_size = max_cond_size
        self._blanket_algorithm = blanket_algorithm

    # ------------------------------------------------------------------

    def learn(self, table: Table | None, nodes: Sequence[str] | None = None) -> PDAG:
        """Learn a PDAG over ``nodes`` (default: all table columns)."""
        if nodes is None:
            if table is None:
                raise ValueError("nodes are required when no table is given")
            nodes = list(table.columns)
        names = list(nodes)

        boundaries = {
            node: self._blanket_algorithm(
                table, node, self.test, candidates=names, alpha=self.alpha
            )
            for node in names
        }
        # Symmetry correction: keep Y in MB(X) only if X in MB(Y).  The
        # boundaries of a faithful distribution are symmetric; on data,
        # enforcing symmetry removes one-sided false positives.
        for node in names:
            boundaries[node] = {
                other for other in boundaries[node] if node in boundaries[other]
            }

        pdag = PDAG(names)
        separators = self._build_skeleton(table, names, boundaries, pdag)
        self._orient_colliders(names, pdag, separators)
        self._propagate_orientations(pdag)
        return pdag

    # ------------------------------------------------------------------

    def _build_skeleton(
        self,
        table: Table | None,
        names: list[str],
        boundaries: dict[str, set[str]],
        pdag: PDAG,
    ) -> dict[frozenset[str], set[str]]:
        """Resolve boundary co-membership into direct adjacency."""
        separators: dict[frozenset[str], set[str]] = {}
        for x, y in combinations(names, 2):
            if y not in boundaries[x]:
                continue
            base_x = sorted(boundaries[x] - {y})
            base_y = sorted(boundaries[y] - {x})
            base = base_x if len(base_x) <= len(base_y) else base_y
            separated = False
            for subset in bounded_subsets(base, self.max_cond_size):
                result = self.test.test(table, x, y, subset)
                if result.independent(self.alpha):
                    separators[frozenset((x, y))] = set(subset)
                    separated = True
                    break
            if not separated:
                pdag.add_undirected(x, y)
        return separators

    def _orient_colliders(
        self,
        names: list[str],
        pdag: PDAG,
        separators: dict[frozenset[str], set[str]],
    ) -> None:
        """Orient v-structures X -> Y <- Z for separated pairs excluding Y."""
        for y in names:
            neighbors = sorted(pdag.neighbors(y))
            for x, z in combinations(neighbors, 2):
                if pdag.adjacent(x, z):
                    continue
                separator = separators.get(frozenset((x, z)))
                if separator is None or y in separator:
                    continue
                pdag.orient_if_possible(x, y)
                pdag.orient_if_possible(z, y)

    def _propagate_orientations(self, pdag: PDAG) -> None:
        """Meek rules R1 and R2 to fixpoint."""
        changed = True
        while changed:
            changed = False
            for node in pdag.nodes():
                for neighbor in sorted(pdag.undirected_neighbors(node)):
                    # R1: a -> node and a not adjacent to neighbor
                    #     => node -> neighbor (else a new collider at node).
                    if any(
                        not pdag.adjacent(parent, neighbor)
                        for parent in pdag.parents(node)
                    ):
                        if pdag.orient_if_possible(node, neighbor):
                            changed = True
                            continue
                    # R2: node -> w -> neighbor exists
                    #     => node -> neighbor (else a directed cycle).
                    if any(
                        neighbor in pdag.children(w) for w in pdag.children(node)
                    ):
                        if pdag.orient_if_possible(node, neighbor):
                            changed = True
