"""Structure-recovery metrics (Figs. 5(b)-(d), 6(a)).

The paper's quality measure is the F1 score of *parent recovery*: treating
each directed edge ``parent -> child`` as a retrieval target, precision and
recall are computed over all (child, parent) pairs, micro-averaged across
nodes.  Fig. 5(c) restricts the average to nodes with at least two parents
in the ground truth -- the regime CD is designed for.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.causal.dag import CausalDAG
from repro.causal.structure.pdag import PDAG


@dataclass(frozen=True)
class F1Report:
    """Precision / recall / F1 with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def parent_recovery_f1(
    truth: CausalDAG,
    predicted_parents: Mapping[str, set[str]] | PDAG,
    min_true_parents: int = 0,
) -> F1Report:
    """Micro-averaged F1 of predicted parent sets against the true DAG.

    Parameters
    ----------
    truth:
        Ground-truth DAG.
    predicted_parents:
        Either a ``{node: parents}`` mapping (e.g. from the CD algorithm
        run per node) or a learned :class:`PDAG` (only confidently directed
        edges count as predictions).
    min_true_parents:
        Restrict scoring to nodes whose *true* parent count is at least
        this value (``2`` reproduces Fig. 5(c)).
    """
    if isinstance(predicted_parents, PDAG):
        predicted = predicted_parents.parent_sets()
    else:
        predicted = {node: set(parents) for node, parents in predicted_parents.items()}

    tp = fp = fn = 0
    for node in truth.nodes():
        true_parents = truth.parents(node)
        if len(true_parents) < min_true_parents:
            continue
        guessed = predicted.get(node, set())
        tp += len(true_parents & guessed)
        fp += len(guessed - true_parents)
        fn += len(true_parents - guessed)
    return F1Report(true_positives=tp, false_positives=fp, false_negatives=fn)


def skeleton_f1(truth: CausalDAG, learned: PDAG) -> F1Report:
    """F1 of adjacency recovery, ignoring orientation."""
    true_skeleton = {frozenset(edge) for edge in truth.edges()}
    learned_skeleton = learned.skeleton()
    tp = len(true_skeleton & learned_skeleton)
    fp = len(learned_skeleton - true_skeleton)
    fn = len(true_skeleton - learned_skeleton)
    return F1Report(true_positives=tp, false_positives=fp, false_negatives=fn)
