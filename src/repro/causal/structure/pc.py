"""The PC algorithm (Spirtes-Glymour-Scheines [56]), stable variant.

The classical constraint-based structure learner the paper cites as the
reference point its Markov-boundary-based competitors improve on
(Sec. 7.4, citing [45] for the comparison).  Included to complete the
baseline suite:

1. **Skeleton** -- start from the complete graph; for growing conditioning
   sizes L = 0, 1, 2, ..., remove the edge (X, Y) if some
   ``S ⊆ adj(X) - {Y}`` (or ``adj(Y) - {X}``) of size L renders them
   independent, recording S as the separating set.  The *stable* variant
   freezes each round's adjacencies before testing, making the output
   independent of edge ordering.
2. **Colliders** -- orient X -> Y <- Z for every non-adjacent pair X, Z
   with common neighbor Y not in their separating set.
3. **Meek propagation** -- shared with FGS.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

from repro.causal.structure.pdag import PDAG
from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CITest


class PCStable:
    """PC-stable structure learner over a conditional-independence test."""

    name = "pc"

    def __init__(
        self,
        test: CITest,
        alpha: float = DEFAULT_ALPHA,
        max_cond_size: int | None = 3,
    ) -> None:
        self.test = test
        self.alpha = alpha
        self.max_cond_size = max_cond_size

    # ------------------------------------------------------------------

    def learn(self, table: Table | None, nodes: Sequence[str] | None = None) -> PDAG:
        """Learn a PDAG over ``nodes`` (default: all table columns)."""
        if nodes is None:
            if table is None:
                raise ValueError("nodes are required when no table is given")
            nodes = list(table.columns)
        names = sorted(nodes)

        adjacency: dict[str, set[str]] = {
            node: set(names) - {node} for node in names
        }
        separators: dict[frozenset[str], set[str]] = {}
        self._learn_skeleton(table, names, adjacency, separators)

        pdag = PDAG(names)
        for x in names:
            for y in adjacency[x]:
                if x < y:
                    pdag.add_undirected(x, y)
        self._orient_colliders(names, pdag, separators)
        self._propagate(pdag)
        return pdag

    # ------------------------------------------------------------------

    def _learn_skeleton(
        self,
        table: Table | None,
        names: list[str],
        adjacency: dict[str, set[str]],
        separators: dict[frozenset[str], set[str]],
    ) -> None:
        level = 0
        while True:
            if self.max_cond_size is not None and level > self.max_cond_size:
                break
            # Stable variant: freeze this round's adjacencies.
            frozen = {node: set(neighbors) for node, neighbors in adjacency.items()}
            if all(len(frozen[node]) - 1 < level for node in names):
                break
            removed_any = False
            for x in names:
                for y in sorted(frozen[x]):
                    if y not in adjacency[x]:
                        continue  # already removed this round
                    if self._separates_at_level(table, x, y, frozen, level, separators):
                        adjacency[x].discard(y)
                        adjacency[y].discard(x)
                        removed_any = True
            if not removed_any and level > 0:
                # No edge fell at this level; larger sets cannot help
                # once adjacencies stop shrinking, but continue while the
                # level is still within reach of some node's degree.
                pass
            level += 1

    def _separates_at_level(
        self,
        table: Table | None,
        x: str,
        y: str,
        frozen: dict[str, set[str]],
        level: int,
        separators: dict[frozenset[str], set[str]],
    ) -> bool:
        for base in (frozen[x] - {y}, frozen[y] - {x}):
            if len(base) < level:
                continue
            for subset in combinations(sorted(base), level):
                result = self.test.test(table, x, y, subset)
                if result.independent(self.alpha):
                    separators[frozenset((x, y))] = set(subset)
                    return True
        return False

    def _orient_colliders(
        self,
        names: list[str],
        pdag: PDAG,
        separators: dict[frozenset[str], set[str]],
    ) -> None:
        for y in names:
            neighbors = sorted(pdag.neighbors(y))
            for x, z in combinations(neighbors, 2):
                if pdag.adjacent(x, z):
                    continue
                separator = separators.get(frozenset((x, z)))
                if separator is None or y in separator:
                    continue
                pdag.orient_if_possible(x, y)
                pdag.orient_if_possible(z, y)

    def _propagate(self, pdag: PDAG) -> None:
        changed = True
        while changed:
            changed = False
            for node in pdag.nodes():
                for neighbor in sorted(pdag.undirected_neighbors(node)):
                    if any(
                        not pdag.adjacent(parent, neighbor)
                        for parent in pdag.parents(node)
                    ):
                        if pdag.orient_if_possible(node, neighbor):
                            changed = True
                            continue
                    if any(neighbor in pdag.children(w) for w in pdag.children(node)):
                        if pdag.orient_if_possible(node, neighbor):
                            changed = True
