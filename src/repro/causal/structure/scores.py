"""Decomposable network scores for greedy structure search.

Score-based learners evaluate a DAG by the sum of per-family scores
``score(node | parents)``.  The three scores the paper benchmarks against
(via ``bnlearn``) are implemented here:

* ``aic``  -- log-likelihood minus the parameter count;
* ``bic``  -- log-likelihood minus ``(k/2) log n`` (a.k.a. MDL);
* ``bdeu`` -- the Bayesian Dirichlet equivalent uniform marginal
  likelihood with an equivalent sample size (iss).

All scores use observed counts only; unobserved parent configurations
contribute nothing to the likelihood terms (they do contribute to the
parameter penalty, computed over full domains, as in bnlearn).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.special import gammaln

from repro.relation.table import Table


def _family_counts(
    table: Table, node: str, parents: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Counts ``n_jk`` per (parent config j, node value k) and totals ``n_j``.

    Only observed parent configurations appear; the arrays are
    ``(n_configs, node_card)`` and ``(n_configs,)``.
    """
    node_card = table.domain_size(node)
    parent_codes, n_configs = table.joint_codes(tuple(parents))
    node_codes = table.codes(node)
    flat = np.bincount(
        parent_codes * node_card + node_codes, minlength=n_configs * node_card
    )
    counts = flat.reshape(max(n_configs, 1), node_card)
    return counts, counts.sum(axis=1)


def family_log_likelihood(table: Table, node: str, parents: Sequence[str]) -> float:
    """Maximized multinomial log-likelihood of the family ``node | parents``."""
    counts, totals = _family_counts(table, node, parents)
    positive = counts > 0
    log_terms = np.zeros_like(counts, dtype=np.float64)
    totals_matrix = np.broadcast_to(totals[:, None], counts.shape)
    log_terms[positive] = counts[positive] * (
        np.log(counts[positive]) - np.log(totals_matrix[positive])
    )
    return float(log_terms.sum())


def _n_parameters(table: Table, node: str, parents: Sequence[str]) -> int:
    """Free parameters of the family over *full* domains."""
    q = 1
    for parent in parents:
        q *= table.domain_size(parent)
    return (table.domain_size(node) - 1) * q


def aic_score(table: Table, node: str, parents: Sequence[str]) -> float:
    """AIC family score: ``LL - k``."""
    return family_log_likelihood(table, node, parents) - _n_parameters(table, node, parents)


def bic_score(table: Table, node: str, parents: Sequence[str]) -> float:
    """BIC family score: ``LL - (k/2) log n``."""
    n = max(table.n_rows, 1)
    penalty = 0.5 * _n_parameters(table, node, parents) * np.log(n)
    return family_log_likelihood(table, node, parents) - float(penalty)


def bdeu_score(
    table: Table, node: str, parents: Sequence[str], equivalent_sample_size: float = 1.0
) -> float:
    """BDeu family score (Heckerman et al. [18]).

    ``sum_j [ lnG(a_j) - lnG(a_j + n_j) + sum_k ( lnG(a_jk + n_jk) - lnG(a_jk) ) ]``
    with ``a_jk = iss / (q r)`` and ``a_j = iss / q`` where ``q`` is the
    number of parent configurations (full domains) and ``r`` the node
    cardinality.  Unobserved configurations contribute zero, so the sum
    runs over observed configurations only.
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    counts, totals = _family_counts(table, node, parents)
    r = table.domain_size(node)
    q = 1
    for parent in parents:
        q *= table.domain_size(parent)
    q = max(q, 1)
    a_j = equivalent_sample_size / q
    a_jk = equivalent_sample_size / (q * r)
    score = float(
        np.sum(gammaln(a_j) - gammaln(a_j + totals))
        + np.sum(gammaln(a_jk + counts) - gammaln(a_jk))
    )
    return score


SCORE_FUNCTIONS = {
    "aic": aic_score,
    "bic": bic_score,
    "bde": bdeu_score,
    "bdeu": bdeu_score,
}


def get_score_function(name: str):
    """Look up a score by name (``aic``, ``bic``, ``bde``/``bdeu``)."""
    try:
        return SCORE_FUNCTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown score {name!r}; expected one of {sorted(SCORE_FUNCTIONS)}"
        ) from None
