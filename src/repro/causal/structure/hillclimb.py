"""Greedy hill-climbing structure search (score-based baseline, Sec. 7.4).

The learner starts from the empty DAG and repeatedly applies the best
single-edge operation -- add, delete, or reverse -- until no operation
improves the network score.  Scores are decomposable, so an operation's
delta only re-scores the affected families; family scores are cached
across iterations, which is what makes the search tractable.

This mirrors ``bnlearn``'s ``hc`` with the AIC / BIC / BDeu scores the
paper benchmarks (HC(AIC), HC(BIC), HC(BDe) in Fig. 5).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.causal.dag import CausalDAG
from repro.causal.structure.pdag import PDAG
from repro.causal.structure.scores import get_score_function
from repro.relation.table import Table


class HillClimbLearner:
    """Score-based greedy DAG learner.

    Parameters
    ----------
    score:
        ``"aic"``, ``"bic"``, or ``"bde"`` / ``"bdeu"``.
    max_parents:
        Cap on any node's in-degree (keeps family scoring tractable on
        wide tables).
    max_iterations:
        Safety cap on the number of greedy steps.
    epsilon:
        Minimum score improvement to accept a move (guards against
        floating-point churn).
    """

    def __init__(
        self,
        score: str = "bic",
        max_parents: int = 4,
        max_iterations: int = 500,
        epsilon: float = 1e-9,
    ) -> None:
        self.score_name = score
        self._score_function = get_score_function(score)
        self.max_parents = max_parents
        self.max_iterations = max_iterations
        self.epsilon = epsilon
        self.name = f"hc_{score.lower()}"

    # ------------------------------------------------------------------

    def learn(self, table: Table, nodes: Sequence[str] | None = None) -> CausalDAG:
        """Learn a DAG over ``nodes`` (default: all table columns)."""
        names = list(nodes) if nodes is not None else list(table.columns)
        dag = CausalDAG(nodes=names)
        cache: dict[tuple[str, tuple[str, ...]], float] = {}

        def family_score(node: str, parents: frozenset[str]) -> float:
            key = (node, tuple(sorted(parents)))
            if key not in cache:
                cache[key] = self._score_function(table, node, sorted(parents))
            return cache[key]

        for _ in range(self.max_iterations):
            best_delta = self.epsilon
            best_move = None
            for source in names:
                for target in names:
                    if source == target:
                        continue
                    target_parents = frozenset(dag.parents(target))
                    source_parents = frozenset(dag.parents(source))
                    if dag.has_edge(source, target):
                        # Delete source -> target.
                        delta = family_score(
                            target, target_parents - {source}
                        ) - family_score(target, target_parents)
                        if delta > best_delta:
                            best_delta, best_move = delta, ("delete", source, target)
                        # Reverse to target -> source.
                        if (
                            len(source_parents) < self.max_parents
                            and self._reversal_is_acyclic(dag, source, target)
                        ):
                            delta = (
                                family_score(target, target_parents - {source})
                                - family_score(target, target_parents)
                                + family_score(source, source_parents | {target})
                                - family_score(source, source_parents)
                            )
                            if delta > best_delta:
                                best_delta, best_move = delta, ("reverse", source, target)
                    elif not dag.has_edge(target, source):
                        # Add source -> target.
                        if len(target_parents) >= self.max_parents:
                            continue
                        if source in dag.descendants(target):
                            continue  # would create a cycle
                        delta = family_score(
                            target, target_parents | {source}
                        ) - family_score(target, target_parents)
                        if delta > best_delta:
                            best_delta, best_move = delta, ("add", source, target)
            if best_move is None:
                break
            self._apply(dag, best_move)
        return dag

    def learn_pdag(self, table: Table, nodes: Sequence[str] | None = None) -> PDAG:
        """Like :meth:`learn` but wrapped in a PDAG for uniform metrics."""
        dag = self.learn(table, nodes)
        pdag = PDAG(dag.nodes())
        for source, target in dag.edges():
            pdag.orient(source, target)
        return pdag

    # ------------------------------------------------------------------

    @staticmethod
    def _reversal_is_acyclic(dag: CausalDAG, source: str, target: str) -> bool:
        """Whether reversing ``source -> target`` keeps the graph acyclic."""
        trial = dag.copy()
        trial_graph = trial  # alias for clarity
        trial_graph._graph.remove_edge(source, target)  # noqa: SLF001 (internal use)
        try:
            trial_graph.add_edge(target, source)
        except ValueError:
            return False
        return True

    @staticmethod
    def _apply(dag: CausalDAG, move: tuple[str, str, str]) -> None:
        operation, source, target = move
        if operation == "add":
            dag.add_edge(source, target)
        elif operation == "delete":
            dag._graph.remove_edge(source, target)  # noqa: SLF001 (internal use)
        elif operation == "reverse":
            dag._graph.remove_edge(source, target)  # noqa: SLF001 (internal use)
            dag.add_edge(target, source)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown move {operation!r}")
