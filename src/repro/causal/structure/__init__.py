"""Full-DAG structure-learning baselines and recovery metrics (Sec. 7.4).

The paper compares its CD algorithm against the reference algorithms of the
R ``bnlearn`` library: the constraint-based Full Grow-Shrink (FGS) and
IAMB learners, and score-based greedy hill climbing with AIC / BIC / BDeu
scores.  This subpackage implements all of them from scratch along with the
partially-directed-graph representation they produce and the F1 metrics
used in Figs. 5(b)-(d) and 6(a).
"""

from repro.causal.structure.fgs import FullGrowShrink
from repro.causal.structure.hillclimb import HillClimbLearner
from repro.causal.structure.iamb_learner import IambLearner
from repro.causal.structure.metrics import parent_recovery_f1, skeleton_f1
from repro.causal.structure.pc import PCStable
from repro.causal.structure.pdag import PDAG
from repro.causal.structure.scores import (
    aic_score,
    bdeu_score,
    bic_score,
    family_log_likelihood,
)

__all__ = [
    "FullGrowShrink",
    "HillClimbLearner",
    "IambLearner",
    "PCStable",
    "parent_recovery_f1",
    "skeleton_f1",
    "PDAG",
    "aic_score",
    "bdeu_score",
    "bic_score",
    "family_log_likelihood",
]
