"""IAMB-based structure learner (the paper's second constraint baseline).

Identical pipeline to :class:`~repro.causal.structure.fgs.FullGrowShrink`
-- skeleton from boundaries, collider orientation, Meek propagation --
except the Markov boundaries come from the IAMB algorithm, whose ranked
grow phase is more robust on data (paper Sec. 7.4 description of the
baselines).
"""

from __future__ import annotations

from repro.causal.iamb import iamb_markov_blanket
from repro.causal.structure.fgs import FullGrowShrink
from repro.stats.base import DEFAULT_ALPHA, CITest


class IambLearner(FullGrowShrink):
    """Constraint-based DAG learner built on IAMB boundaries."""

    name = "iamb"

    def __init__(
        self,
        test: CITest,
        alpha: float = DEFAULT_ALPHA,
        max_cond_size: int | None = 3,
    ) -> None:
        super().__init__(
            test,
            alpha=alpha,
            max_cond_size=max_cond_size,
            blanket_algorithm=iamb_markov_blanket,
        )
