"""Partially directed acyclic graphs (CPDAG-style output of learners).

Constraint-based learners can only orient edges up to the Markov
equivalence class (paper Sec. 4); the undirectable remainder stays as
undirected edges.  :class:`PDAG` holds both kinds and answers the queries
the comparison benchmarks need -- most importantly :meth:`parents`, which
counts only confidently directed incoming edges.
"""

from __future__ import annotations

from collections.abc import Iterable


class PDAG:
    """A graph with both directed and undirected edges."""

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: set[str] = set(nodes)
        self._directed: set[tuple[str, str]] = set()
        self._undirected: set[frozenset[str]] = set()

    # ------------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists."""
        self._nodes.add(node)

    def add_undirected(self, a: str, b: str) -> None:
        """Add the undirected edge ``a - b`` (idempotent)."""
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self._nodes.update((a, b))
        if (a, b) in self._directed or (b, a) in self._directed:
            return
        self._undirected.add(frozenset((a, b)))

    def orient(self, source: str, target: str) -> None:
        """Turn ``source - target`` into ``source -> target``.

        Orienting an already-directed edge in the same direction is a
        no-op; orienting it in the opposite direction raises, because a
        learner that tries to do that has found contradictory colliders
        and must resolve the conflict explicitly.
        """
        key = frozenset((source, target))
        if (source, target) in self._directed:
            return
        if (target, source) in self._directed:
            raise ValueError(f"edge {target!r} -> {source!r} already oriented the other way")
        self._undirected.discard(key)
        self._nodes.update((source, target))
        self._directed.add((source, target))

    def orient_if_possible(self, source: str, target: str) -> bool:
        """Like :meth:`orient` but returns False instead of raising on conflict."""
        if (target, source) in self._directed:
            return False
        self.orient(source, target)
        return True

    # ------------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All nodes (sorted)."""
        return sorted(self._nodes)

    def directed_edges(self) -> list[tuple[str, str]]:
        """Directed edges (sorted)."""
        return sorted(self._directed)

    def undirected_edges(self) -> list[tuple[str, str]]:
        """Undirected edges as sorted pairs (sorted)."""
        return sorted(tuple(sorted(edge)) for edge in self._undirected)

    def adjacent(self, a: str, b: str) -> bool:
        """Whether any edge (directed or not) joins ``a`` and ``b``."""
        return (
            (a, b) in self._directed
            or (b, a) in self._directed
            or frozenset((a, b)) in self._undirected
        )

    def neighbors(self, node: str) -> set[str]:
        """All nodes adjacent to ``node``."""
        result = {target for source, target in self._directed if source == node}
        result |= {source for source, target in self._directed if target == node}
        for edge in self._undirected:
            if node in edge:
                result |= set(edge) - {node}
        return result

    def parents(self, node: str) -> set[str]:
        """Nodes with a *directed* edge into ``node``."""
        return {source for source, target in self._directed if target == node}

    def children(self, node: str) -> set[str]:
        """Nodes ``node`` has a directed edge into."""
        return {target for source, target in self._directed if source == node}

    def undirected_neighbors(self, node: str) -> set[str]:
        """Nodes joined to ``node`` by an undirected edge."""
        result: set[str] = set()
        for edge in self._undirected:
            if node in edge:
                result |= set(edge) - {node}
        return result

    def skeleton(self) -> set[frozenset[str]]:
        """All adjacencies with orientation erased."""
        edges = {frozenset(edge) for edge in self._directed}
        return edges | set(self._undirected)

    def parent_sets(self) -> dict[str, set[str]]:
        """``{node: parents}`` for every node (metric input)."""
        return {node: self.parents(node) for node in self.nodes()}

    def __repr__(self) -> str:
        return (
            f"PDAG({len(self._nodes)} nodes, {len(self._directed)} directed, "
            f"{len(self._undirected)} undirected)"
        )
