"""IAMB Markov-boundary discovery (Tsamardinos et al. [58]).

Incremental Association Markov Blanket improves on Grow-Shrink's grow phase
by always admitting the *most associated* remaining attribute (measured by
the estimated conditional mutual information given the current blanket),
which keeps conditioning sets small and reduces false admissions.  The
shrink phase is identical to Grow-Shrink's.

The paper uses IAMB (with a chi-squared test) as one of the baseline
Markov-boundary learners in the Sec. 7.4 quality comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CITest


def iamb_markov_blanket(
    table: Table | None,
    target: str,
    test: CITest,
    candidates: Sequence[str] | None = None,
    alpha: float = DEFAULT_ALPHA,
    max_blanket: int | None = None,
) -> set[str]:
    """Compute the Markov boundary of ``target`` with IAMB.

    Arguments mirror
    :func:`~repro.causal.growshrink.grow_shrink_markov_blanket`.  The
    association used for ranking is the test's statistic (the estimated
    conditional mutual information), so oracle tests rank dependents at 1.0
    and everything else at 0.0, which preserves correctness.
    """
    if candidates is None:
        if table is None:
            raise ValueError("candidates are required when no table is given")
        candidates = [name for name in table.columns if name != target]
    remaining = [name for name in candidates if name != target]

    blanket: list[str] = []
    # Grow phase: admit the best-associated dependent attribute each round.
    while remaining:
        if max_blanket is not None and len(blanket) >= max_blanket:
            break
        best_attribute = None
        best_statistic = -float("inf")
        best_dependent = False
        for attribute in remaining:
            result = test.test(table, target, attribute, tuple(blanket))
            if result.statistic > best_statistic:
                best_statistic = result.statistic
                best_attribute = attribute
                best_dependent = result.dependent(alpha)
        if best_attribute is None or not best_dependent:
            break
        blanket.append(best_attribute)
        remaining.remove(best_attribute)

    # Shrink phase.
    for attribute in list(blanket):
        rest = tuple(name for name in blanket if name != attribute)
        result = test.test(table, target, attribute, rest)
        if result.independent(alpha):
            blanket.remove(attribute)
    return set(blanket)
