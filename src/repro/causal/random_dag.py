"""Random causal DAG generation (paper Sec. 7.1, "RandomData").

The paper generates random DAGs with the Erdős–Rényi model at 8/16/32
nodes.  We draw an undirected G(n, p) and orient every edge along a random
permutation of the nodes, which is the standard way to obtain a uniform-ish
acyclic orientation; ``expected_parents`` parameterizes the density the way
the paper reports it (expected in-degree in the 3-5 range maps to dense
graphs at 8 nodes and sparse at 32).
"""

from __future__ import annotations

import numpy as np

from repro.causal.dag import CausalDAG
from repro.utils.validation import check_positive, ensure_rng


def random_erdos_renyi_dag(
    n_nodes: int,
    expected_parents: float = 1.5,
    rng: np.random.Generator | int | None = None,
    node_prefix: str = "X",
) -> CausalDAG:
    """Draw a random DAG with ``n_nodes`` nodes.

    Parameters
    ----------
    n_nodes:
        Number of attributes.
    expected_parents:
        Target expected in-degree; the pairwise edge probability is
        ``expected_parents * n / binom(n, 2)`` capped at 1 (each undirected
        edge contributes one parent somewhere).
    rng:
        Generator or seed.
    node_prefix:
        Nodes are named ``{prefix}0 .. {prefix}{n-1}``; the numeric suffix
        follows the topological (permutation) order used for orientation.
    """
    check_positive("n_nodes", n_nodes)
    check_positive("expected_parents", expected_parents)
    generator = ensure_rng(rng)
    n_pairs = n_nodes * (n_nodes - 1) / 2
    edge_probability = min(1.0, expected_parents * n_nodes / n_pairs) if n_pairs else 0.0

    order = generator.permutation(n_nodes)
    names = [f"{node_prefix}{index}" for index in range(n_nodes)]
    dag = CausalDAG(nodes=names)
    # rank[i] < rank[j] means names[i] precedes names[j] in the causal order.
    rank = np.empty(n_nodes, dtype=np.int64)
    rank[order] = np.arange(n_nodes)
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if generator.random() < edge_probability:
                if rank[i] < rank[j]:
                    dag.add_edge(names[i], names[j])
                else:
                    dag.add_edge(names[j], names[i])
    return dag
