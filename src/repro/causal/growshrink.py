"""Grow-Shrink Markov-boundary discovery (Margaritis & Thrun [28]).

The CD algorithm (paper Alg. 1) needs the Markov boundary ``MB(T)`` of the
treatment and of each boundary member.  Grow-Shrink computes it with two
passes of conditional-independence tests:

* **Grow** -- scan the candidate attributes repeatedly; add ``X`` to the
  blanket ``B`` whenever ``X`` is dependent on ``T`` given the current
  ``B``.  Repeat until a full scan adds nothing (the first pass can admit
  false members whose separating set was not yet in ``B``).
* **Shrink** -- remove any ``X`` in ``B`` that is independent of ``T``
  given ``B - {X}``.

With a correct independence oracle and a DAG-isomorphic distribution the
result is exactly the Markov boundary (parents, children, and spouses).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CITest


def grow_shrink_markov_blanket(
    table: Table | None,
    target: str,
    test: CITest,
    candidates: Sequence[str] | None = None,
    alpha: float = DEFAULT_ALPHA,
    max_blanket: int | None = None,
) -> set[str]:
    """Compute the Markov boundary of ``target``.

    Parameters
    ----------
    table:
        The data (may be ``None`` when ``test`` is a d-separation oracle).
    target:
        The attribute whose boundary is sought.
    test:
        Conditional-independence test.
    candidates:
        Attributes to consider; defaults to every other column of the
        table.  Callers that pre-filter functional dependencies pass the
        reduced set here.
    alpha:
        Significance level (paper uses 0.01 throughout).
    max_blanket:
        Optional safety cap on the blanket size: once reached, the grow
        phase stops admitting members.  Guards against pathological
        test behaviour on very sparse data.

    Returns the discovered boundary as a set of attribute names.
    """
    if candidates is None:
        if table is None:
            raise ValueError("candidates are required when no table is given")
        candidates = [name for name in table.columns if name != target]
    ordered = [name for name in candidates if name != target]

    blanket: list[str] = []
    # Grow phase: repeat full scans until stable.
    changed = True
    while changed:
        changed = False
        for attribute in ordered:
            if attribute in blanket:
                continue
            if max_blanket is not None and len(blanket) >= max_blanket:
                break
            result = test.test(table, target, attribute, tuple(blanket))
            if result.dependent(alpha):
                blanket.append(attribute)
                changed = True

    # Shrink phase: drop members independent given the rest.
    for attribute in list(blanket):
        rest = tuple(name for name in blanket if name != attribute)
        result = test.test(table, target, attribute, rest)
        if result.independent(alpha):
            blanket.remove(attribute)
    return set(blanket)
