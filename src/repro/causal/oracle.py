"""Ground-truth conditional-independence oracle from a known DAG.

Under the faithfulness assumption (Appendix, Def. 10.2), conditional
independence in the distribution coincides with d-separation in the causal
DAG.  :class:`DSeparationOracle` exposes d-separation through the
:class:`~repro.stats.base.CITest` interface, so every discovery algorithm
in the library can be run against ground truth -- this is how the unit
tests validate Grow-Shrink, IAMB, FGS, and the CD algorithm independently
of sampling noise.
"""

from __future__ import annotations

from repro.causal.dag import CausalDAG
from repro.relation.table import Table
from repro.stats.base import CIResult, CITest


class DSeparationOracle(CITest):
    """Answers ``x ⊥ y | z`` from d-separation on a fixed DAG.

    The ``table`` argument of :meth:`test` is ignored (it may be ``None``);
    only the attribute names matter.
    """

    name = "oracle"

    def __init__(self, dag: CausalDAG) -> None:
        super().__init__()
        self._dag = dag

    @property
    def dag(self) -> CausalDAG:
        """The ground-truth DAG."""
        return self._dag

    def test(self, table: Table | None, x: str, y: str, z=()) -> CIResult:  # type: ignore[override]
        conditioning = tuple(z)
        if x == y:
            raise ValueError("x and y must be distinct attributes")
        self.calls += 1
        separated = self._dag.d_separated(x, y, conditioning)
        return CIResult(
            statistic=0.0 if separated else 1.0,
            p_value=1.0 if separated else 0.0,
            method=self.name,
        )

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        raise AssertionError("test() is overridden; _test is unreachable")
