"""Discrete Bayesian networks: CPTs and forward sampling.

The paper samples its RandomData benchmark datasets from random causal
DAGs with the R ``catnet`` package ("causal DAGs admit the same factorized
distribution as Bayesian networks", Sec. 7.1).  This module is the
substitute: a :class:`DiscreteBayesNet` couples a
:class:`~repro.causal.dag.CausalDAG` with one conditional probability table
per node and supports

* random CPT generation (Dirichlet rows, with a ``strength`` knob that
  controls how far from uniform -- hence how detectable -- the dependencies
  are);
* explicit CPTs (used by the CancerData generator, whose ground-truth DAG
  is paper Fig. 7);
* vectorized forward (ancestral) sampling into a
  :class:`~repro.relation.table.Table`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.causal.dag import CausalDAG
from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng


class DiscreteBayesNet:
    """A discrete Bayesian network over a causal DAG.

    Parameters
    ----------
    dag:
        Network structure.
    cardinalities:
        Number of categories per node (all >= 2).
    cpts:
        For each node, an array of shape ``(prod(parent cards), card)``
        whose rows are the conditional distributions
        ``P(node | parent configuration)``.  Parent configurations are
        indexed in mixed radix with parents sorted alphabetically, the
        *last* parent varying fastest.
    """

    def __init__(
        self,
        dag: CausalDAG,
        cardinalities: Mapping[str, int],
        cpts: Mapping[str, np.ndarray],
    ) -> None:
        self._dag = dag
        self._cards = dict(cardinalities)
        missing = set(dag.nodes()) - set(self._cards)
        if missing:
            raise ValueError(f"missing cardinalities for nodes {sorted(missing)}")
        for node, card in self._cards.items():
            if card < 2:
                raise ValueError(f"node {node!r} needs >= 2 categories, got {card}")
        self._cpts: dict[str, np.ndarray] = {}
        for node in dag.nodes():
            if node not in cpts:
                raise ValueError(f"missing CPT for node {node!r}")
            self._cpts[node] = self._validate_cpt(node, np.asarray(cpts[node], dtype=np.float64))

    # ------------------------------------------------------------------

    @property
    def dag(self) -> CausalDAG:
        """The network structure."""
        return self._dag

    def cardinality(self, node: str) -> int:
        """Number of categories of ``node``."""
        return self._cards[node]

    def cpt(self, node: str) -> np.ndarray:
        """The CPT of ``node`` (rows = parent configurations)."""
        return self._cpts[node]

    def sorted_parents(self, node: str) -> list[str]:
        """Parents in the canonical (alphabetical) CPT order."""
        return sorted(self._dag.parents(node))

    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        dag: CausalDAG,
        categories: int | Mapping[str, int] = 2,
        strength: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> "DiscreteBayesNet":
        """Generate random CPTs for ``dag``.

        Parameters
        ----------
        categories:
            Either one cardinality for all nodes or a per-node mapping
            (the paper sweeps 2-20 categories).
        strength:
            Dirichlet concentration is ``1 / strength``; larger values give
            spikier rows, i.e. stronger and more easily detectable
            dependencies.  ``strength = 1`` is a flat Dirichlet.
        """
        check_positive("strength", strength)
        generator = ensure_rng(rng)
        if isinstance(categories, int):
            cards = {node: categories for node in dag.nodes()}
        else:
            cards = dict(categories)
        cpts: dict[str, np.ndarray] = {}
        for node in dag.nodes():
            n_configs = 1
            for parent in sorted(dag.parents(node)):
                n_configs *= cards[parent]
            concentration = np.full(cards[node], 1.0 / strength)
            cpts[node] = generator.dirichlet(concentration, size=n_configs)
        return cls(dag, cards, cpts)

    @classmethod
    def from_conditionals(
        cls,
        dag: CausalDAG,
        domains: Mapping[str, Sequence[Any]],
        conditionals: Mapping[str, Mapping[tuple[Any, ...], Sequence[float]]],
    ) -> tuple["DiscreteBayesNet", dict[str, tuple[Any, ...]]]:
        """Build a net from human-readable conditional tables.

        ``conditionals[node][parent_values] = distribution over domains[node]``
        with ``parent_values`` ordered by the alphabetical parent order.
        Returns the net plus the domain mapping needed to decode samples.
        Used by the dataset generators that specify CPTs explicitly.
        """
        cards = {node: len(values) for node, values in domains.items()}
        cpts: dict[str, np.ndarray] = {}
        for node in dag.nodes():
            parents = sorted(dag.parents(node))
            parent_domains = [tuple(domains[parent]) for parent in parents]
            n_configs = int(np.prod([len(d) for d in parent_domains])) if parents else 1
            cpt = np.zeros((n_configs, cards[node]))
            for config_index in range(n_configs):
                values = _decode_config(config_index, parent_domains)
                try:
                    row = conditionals[node][values]
                except KeyError as exc:
                    raise ValueError(
                        f"node {node!r}: no conditional for parent values {values!r}"
                    ) from exc
                cpt[config_index, :] = row
            cpts[node] = cpt
        decoded_domains = {node: tuple(values) for node, values in domains.items()}
        return cls(dag, cards, cpts), decoded_domains

    # ------------------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        domains: Mapping[str, Sequence[Any]] | None = None,
    ) -> Table:
        """Forward-sample ``n`` rows into a :class:`Table`.

        Nodes are sampled in topological order; each node's row of its CPT
        is selected by the already-sampled parent codes (vectorized with
        inverse-CDF sampling per parent configuration).  ``domains``
        optionally decodes the integer categories into labels.
        """
        check_positive("n", n)
        generator = ensure_rng(rng)
        samples: dict[str, np.ndarray] = {}
        for node in self._dag.topological_order():
            parents = self.sorted_parents(node)
            cpt = self._cpts[node]
            if not parents:
                config = np.zeros(n, dtype=np.int64)
            else:
                config = np.zeros(n, dtype=np.int64)
                for parent in parents:
                    config = config * self._cards[parent] + samples[parent]
            # Inverse-CDF draw: one uniform per row, compared against the
            # cumulative distribution of its parent-configuration row.
            cumulative = np.cumsum(cpt, axis=1)
            uniforms = generator.random(n)
            samples[node] = (uniforms[:, None] > cumulative[config]).sum(axis=1)
            np.clip(samples[node], 0, self._cards[node] - 1, out=samples[node])

        raw: dict[str, list[Any]] = {}
        for node in self._dag.nodes():
            if domains is not None and node in domains:
                decode = list(domains[node])
                raw[node] = [decode[code] for code in samples[node]]
            else:
                raw[node] = samples[node].tolist()
        return Table.from_columns(raw)

    # ------------------------------------------------------------------

    def _validate_cpt(self, node: str, cpt: np.ndarray) -> np.ndarray:
        expected_configs = 1
        for parent in self.sorted_parents(node):
            expected_configs *= self._cards[parent]
        expected_shape = (expected_configs, self._cards[node])
        if cpt.shape != expected_shape:
            raise ValueError(
                f"CPT for {node!r} has shape {cpt.shape}, expected {expected_shape}"
            )
        if np.any(cpt < 0):
            raise ValueError(f"CPT for {node!r} has negative entries")
        row_sums = cpt.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError(f"CPT rows for {node!r} must sum to 1, got {row_sums}")
        # Normalize away float drift so sampling is exact.
        return cpt / row_sums[:, None]


def _decode_config(index: int, parent_domains: list[tuple[Any, ...]]) -> tuple[Any, ...]:
    """Decode a mixed-radix parent-configuration index into parent values."""
    values: list[Any] = []
    for domain in reversed(parent_domains):
        values.append(domain[index % len(domain)])
        index //= len(domain)
    return tuple(reversed(values))
