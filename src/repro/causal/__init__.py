"""Causal-graph infrastructure (paper Sec. 2, 4, 7 and Appendix 10.1).

* :mod:`repro.causal.dag` -- causal DAGs with d-separation, Markov
  boundaries, and the back-door criterion.
* :mod:`repro.causal.random_dag` -- Erdős–Rényi random DAG generation
  (the RandomData recipe of Sec. 7.1).
* :mod:`repro.causal.bayesnet` -- discrete Bayesian networks with random or
  explicit CPTs and forward sampling (substitute for the R ``catnet``
  package the paper samples with).
* :mod:`repro.causal.oracle` -- a conditional-independence "test" that
  answers from d-separation on a known DAG, for validating discovery
  algorithms against ground truth.
* :mod:`repro.causal.growshrink` / :mod:`repro.causal.iamb` -- Markov
  boundary discovery from data.
* :mod:`repro.causal.structure` -- full-DAG baselines (FGS, IAMB learner,
  score-based hill climbing) and recovery metrics.
"""

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.dag import CausalDAG
from repro.causal.growshrink import grow_shrink_markov_blanket
from repro.causal.iamb import iamb_markov_blanket
from repro.causal.oracle import DSeparationOracle
from repro.causal.random_dag import random_erdos_renyi_dag

__all__ = [
    "CausalDAG",
    "DiscreteBayesNet",
    "DSeparationOracle",
    "grow_shrink_markov_blanket",
    "iamb_markov_blanket",
    "random_erdos_renyi_dag",
]
