"""Subset enumeration used by the constraint-based discovery algorithms.

The CD algorithm (paper Alg. 1) and Grow-Shrink both iterate over subsets of
a Markov boundary.  Enumerating subsets in order of increasing size matters:
smaller conditioning sets keep contingency-table cells dense, so the cheap
and reliable tests run first and the loops can break early.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import chain, combinations


def powerset(items: Sequence[str]) -> Iterator[tuple[str, ...]]:
    """Yield every subset of ``items`` (including the empty set), smallest first."""
    return chain.from_iterable(combinations(items, size) for size in range(len(items) + 1))


def nonempty_subsets(items: Sequence[str]) -> Iterator[tuple[str, ...]]:
    """Yield every non-empty subset of ``items``, smallest first."""
    return chain.from_iterable(combinations(items, size) for size in range(1, len(items) + 1))


def bounded_subsets(items: Sequence[str], max_size: int | None) -> Iterator[tuple[str, ...]]:
    """Yield subsets of ``items`` of size at most ``max_size``, smallest first.

    ``max_size=None`` means no bound.  This is the enumeration order used by
    the CD algorithm: the bound caps the worst-case exponential blow-up on
    large Markov boundaries while preserving completeness on the bounded
    fan-in DAGs the paper targets (the largest boundary in the paper's
    experiments has 8 attributes).
    """
    limit = len(items) if max_size is None else min(max_size, len(items))
    return chain.from_iterable(combinations(items, size) for size in range(limit + 1))
