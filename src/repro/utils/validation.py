"""Argument-validation helpers used across the library.

These helpers centralize the error messages so every public entry point
raises consistent, actionable exceptions instead of failing deep inside
numpy with an opaque traceback.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, a Generator, or None.

    Every stochastic component in the library funnels its ``seed`` argument
    through this function, which makes all experiments reproducible by
    passing an integer.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_fraction(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed unit interval."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_columns_exist(available: Iterable[str], requested: Iterable[str]) -> None:
    """Raise ``KeyError`` listing every requested column that is missing."""
    available_set = set(available)
    missing = [column for column in requested if column not in available_set]
    if missing:
        raise KeyError(
            f"unknown column(s) {missing}; available columns are {sorted(available_set)}"
        )


def check_disjoint(**named_groups: Sequence[str]) -> None:
    """Raise ``ValueError`` if any two named column groups overlap.

    Used by the causal-analysis entry points to reject treatments that also
    appear among the outcomes or covariates, which would make the adjustment
    formula meaningless.
    """
    names = list(named_groups)
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            overlap = set(named_groups[first]) & set(named_groups[second])
            if overlap:
                raise ValueError(
                    f"{first} and {second} must be disjoint; both contain {sorted(overlap)}"
                )
