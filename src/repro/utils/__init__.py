"""Shared utilities: validation, subset enumeration, Borda rank aggregation."""

from repro.utils.borda import borda_aggregate, rank_by_value
from repro.utils.subsets import bounded_subsets, nonempty_subsets, powerset
from repro.utils.validation import (
    check_columns_exist,
    check_disjoint,
    check_fraction,
    check_positive,
    ensure_rng,
)

__all__ = [
    "borda_aggregate",
    "rank_by_value",
    "bounded_subsets",
    "nonempty_subsets",
    "powerset",
    "check_columns_exist",
    "check_disjoint",
    "check_fraction",
    "check_positive",
    "ensure_rng",
]
