"""Borda-count rank aggregation (paper Sec. 3.2, Alg. 3 step 6).

Fine-grained explanations rank each candidate triple twice -- once by its
contribution to I(T;Z) and once by its contribution to I(Y;Z) -- and then
merge the two rankings with Borda's method [26]: each ranking awards
``len(ranking) - position`` points to an item and items are sorted by total
points.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)


def rank_by_value(scores: Mapping[ItemT, float], descending: bool = True) -> list[ItemT]:
    """Return the items of ``scores`` ordered by score.

    Ties are broken by the repr of the item so that the ordering is
    deterministic across runs regardless of dict insertion order.
    """
    sign = -1.0 if descending else 1.0
    return sorted(scores, key=lambda item: (sign * scores[item], repr(item)))


def borda_aggregate(rankings: Sequence[Sequence[ItemT]]) -> list[ItemT]:
    """Merge several rankings of the same item set with the Borda count.

    Each ranking contributes ``n - position`` points per item (n = ranking
    length); missing items receive zero points from that ranking, which lets
    callers aggregate rankings over slightly different candidate sets.

    Returns the items ordered by total points, highest first, with
    deterministic tie-breaking.
    """
    if not rankings:
        return []
    points: dict[ItemT, float] = {}
    for ranking in rankings:
        n = len(ranking)
        for position, item in enumerate(ranking):
            points[item] = points.get(item, 0.0) + (n - position)
    return sorted(points, key=lambda item: (-points[item], repr(item)))
