"""CancerData: the LUCAS-style simulated dataset (paper Fig. 7, Sec. 7.3).

The ground-truth causal DAG is the one drawn in the paper's Fig. 7::

    Anxiety ------\\
    Peer_Pressure -+-> Smoking --\\
    Genetics --------------------+-> Lung_Cancer --> Coughing --\\
        \\                        |        \\                     +-> Fatigue
         \\-> Attention_Disorder  |         \\--------------------/      |
                      \\          |   Allergy --> Coughing               |
                       \\         |                                      v
                        \\--------+----------------------------> Car_Accident
    Born_an_Even_Day  (isolated)

All attributes are binary.  The CPTs below are calibrated so that the
paper's headline numbers hold: the car-accident rate is ~0.60 for the
no-lung-cancer group and ~0.77 for the lung-cancer group, the total effect
survives adjustment, and the *direct* effect of lung cancer on car
accidents is zero by construction (there is no edge), with fatigue carrying
most of the responsibility.
"""

from __future__ import annotations

import numpy as np

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.dag import CausalDAG
from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng

CANCER_EDGES: tuple[tuple[str, str], ...] = (
    ("Anxiety", "Smoking"),
    ("Peer_Pressure", "Smoking"),
    ("Smoking", "Lung_Cancer"),
    ("Genetics", "Lung_Cancer"),
    ("Genetics", "Attention_Disorder"),
    ("Allergy", "Coughing"),
    ("Lung_Cancer", "Coughing"),
    ("Lung_Cancer", "Fatigue"),
    ("Coughing", "Fatigue"),
    ("Attention_Disorder", "Car_Accident"),
    ("Fatigue", "Car_Accident"),
)

CANCER_NODES: tuple[str, ...] = (
    "Anxiety",
    "Peer_Pressure",
    "Smoking",
    "Genetics",
    "Lung_Cancer",
    "Allergy",
    "Coughing",
    "Fatigue",
    "Attention_Disorder",
    "Car_Accident",
    "Born_an_Even_Day",
)


def cancer_dag() -> CausalDAG:
    """The ground-truth DAG of CancerData (paper Fig. 7)."""
    return CausalDAG(nodes=CANCER_NODES, edges=CANCER_EDGES)


def _bernoulli(p: float) -> tuple[float, float]:
    """A distribution row ``(P(0), P(1))``."""
    return (1.0 - p, p)


def _cancer_bayesnet() -> tuple[DiscreteBayesNet, dict[str, tuple[int, ...]]]:
    domains = {node: (0, 1) for node in CANCER_NODES}
    conditionals: dict[str, dict[tuple[int, ...], tuple[float, float]]] = {
        # Roots.
        "Anxiety": {(): _bernoulli(0.64)},
        "Peer_Pressure": {(): _bernoulli(0.33)},
        "Genetics": {(): _bernoulli(0.15)},
        "Allergy": {(): _bernoulli(0.33)},
        "Born_an_Even_Day": {(): _bernoulli(0.50)},
        # Smoking | (Anxiety, Peer_Pressure) -- parents sorted alphabetically.
        "Smoking": {
            (0, 0): _bernoulli(0.20),
            (0, 1): _bernoulli(0.45),
            (1, 0): _bernoulli(0.62),
            (1, 1): _bernoulli(0.88),
        },
        # Lung_Cancer | (Genetics, Smoking).
        "Lung_Cancer": {
            (0, 0): _bernoulli(0.10),
            (0, 1): _bernoulli(0.35),
            (1, 0): _bernoulli(0.60),
            (1, 1): _bernoulli(0.82),
        },
        # Attention_Disorder | (Genetics,).
        "Attention_Disorder": {
            (0,): _bernoulli(0.28),
            (1,): _bernoulli(0.65),
        },
        # Coughing | (Allergy, Lung_Cancer).
        "Coughing": {
            (0, 0): _bernoulli(0.15),
            (0, 1): _bernoulli(0.75),
            (1, 0): _bernoulli(0.55),
            (1, 1): _bernoulli(0.92),
        },
        # Fatigue | (Coughing, Lung_Cancer).
        "Fatigue": {
            (0, 0): _bernoulli(0.25),
            (0, 1): _bernoulli(0.65),
            (1, 0): _bernoulli(0.62),
            (1, 1): _bernoulli(0.88),
        },
        # Car_Accident | (Attention_Disorder, Fatigue).
        "Car_Accident": {
            (0, 0): _bernoulli(0.45),
            (0, 1): _bernoulli(0.76),
            (1, 0): _bernoulli(0.68),
            (1, 1): _bernoulli(0.93),
        },
    }
    return DiscreteBayesNet.from_conditionals(cancer_dag(), domains, conditionals)


def cancer_data(
    n_rows: int = 2000,
    seed: int | np.random.Generator | None = None,
) -> Table:
    """Sample a CancerData table from the Fig. 7 ground-truth model.

    The paper's evaluation uses 2 000 rows; all attributes are 0/1.
    """
    check_positive("n_rows", n_rows)
    rng = ensure_rng(seed)
    net, domains = _cancer_bayesnet()
    return net.sample(n_rows, rng=rng, domains=domains)
