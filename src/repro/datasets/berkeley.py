"""BerkeleyData: the 1973 graduate-admissions data (paper Sec. 7.3, Fig. 4).

Unlike the other generators, this dataset is *real*: the per-department
admission counts for the six largest departments were published by Bickel,
Hammel and O'Connell [5] and are reproduced verbatim below.  The table is
expanded to one row per applicant with attributes Gender, Department, and
Accepted, which is exactly the relation the paper's query

    SELECT avg(Accepted) FROM BerkeleyData GROUP BY Gender

runs against.  (The paper cites 4 428 rows; the canonical six-department
Bickel table has 4 526 applicants -- row counts in the literature vary with
the handling of incomplete records.  The aggregate admission rates, and
hence the paradox, are identical.)
"""

from __future__ import annotations

from repro.relation.table import Table

# (department, gender) -> (admitted, rejected); Bickel et al., Table 1.
BERKELEY_ADMISSIONS: dict[tuple[str, str], tuple[int, int]] = {
    ("A", "Male"): (512, 313),
    ("A", "Female"): (89, 19),
    ("B", "Male"): (353, 207),
    ("B", "Female"): (17, 8),
    ("C", "Male"): (120, 205),
    ("C", "Female"): (202, 391),
    ("D", "Male"): (138, 279),
    ("D", "Female"): (131, 244),
    ("E", "Male"): (53, 138),
    ("E", "Female"): (94, 299),
    ("F", "Male"): (22, 351),
    ("F", "Female"): (24, 317),
}


def berkeley_data() -> Table:
    """The Berkeley 1973 admissions relation, one row per applicant.

    Columns: ``Gender`` (Male/Female), ``Department`` (A-F), ``Accepted``
    (1/0).  Deterministic -- no randomness is involved.
    """
    genders: list[str] = []
    departments: list[str] = []
    accepted: list[int] = []
    for (department, gender), (admitted, rejected) in sorted(BERKELEY_ADMISSIONS.items()):
        genders.extend([gender] * (admitted + rejected))
        departments.extend([department] * (admitted + rejected))
        accepted.extend([1] * admitted + [0] * rejected)
    return Table.from_columns(
        {"Gender": genders, "Department": departments, "Accepted": accepted}
    )
