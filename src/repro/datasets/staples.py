"""StaplesData: online-pricing discrimination data (paper Sec. 7.3, Fig. 3).

The Wall Street Journal investigation [59] found Staples' online prices
varied with the user's distance to competitors' stores, which low-income
users happened to live far from -- discrimination *mediated* by geography
rather than directly by income.  The generator implements exactly that
chain::

    Income -> Distance -> Price        (no direct Income -> Price edge)
    Region -> Distance                 (extra exogenous structure)

so HypDB should report a significant total effect of income on price and a
direct effect statistically indistinguishable from zero.
"""

from __future__ import annotations

import numpy as np

from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng

REGIONS = ("rural", "suburban", "urban")

# P(Distance = far | income, region): low income and rural regions live
# farther from competitors' stores.
_P_FAR = {
    (0, "rural"): 0.85,
    (0, "suburban"): 0.65,
    (0, "urban"): 0.45,
    (1, "rural"): 0.55,
    (1, "suburban"): 0.30,
    (1, "urban"): 0.12,
}

# P(Price = high | distance): users far from competitors see high prices.
_P_HIGH_PRICE = {"far": 0.090, "near": 0.020}


def staples_data(
    n_rows: int = 50000,
    seed: int | np.random.Generator | None = None,
) -> Table:
    """Generate a StaplesData table.

    Columns: ``Income`` (1 = high), ``Region``, ``Distance`` (near/far to a
    competitor store), ``Price`` (1 = high price shown).  The paper's
    sample has 988 871 rows; the default is laptop-scale with the same
    proportions.
    """
    check_positive("n_rows", n_rows)
    rng = ensure_rng(seed)
    income = (rng.random(n_rows) < 0.5).astype(int)
    region = np.array(REGIONS)[rng.choice(len(REGIONS), size=n_rows, p=(0.3, 0.45, 0.25))]

    p_far = np.array([_P_FAR[(inc, reg)] for inc, reg in zip(income, region)])
    distance = np.where(rng.random(n_rows) < p_far, "far", "near")

    p_high = np.array([_P_HIGH_PRICE[d] for d in distance])
    price = (rng.random(n_rows) < p_high).astype(int)

    return Table.from_columns(
        {
            "Income": income.tolist(),
            "Region": region.tolist(),
            "Distance": distance.tolist(),
            "Price": price.tolist(),
        }
    )
