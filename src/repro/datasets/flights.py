"""FlightData: DOT on-time-performance style generator (paper Sec. 7.1).

The real dataset (101 attributes, tens of millions of rows) is not
available offline; this generator produces data with the same *causal and
logical structure* the paper's experiments rely on:

* a calibrated **Simpson's paradox** between Carrier and Delayed (Fig. 1):
  AA has a lower overall delay rate than UA on the four paper airports
  (COS, MFE, MTJ, ROC) yet a *higher* delay rate at each individual
  airport, because AA's traffic concentrates at low-delay airports;
* **covariates**: Airport and Year confound Carrier and Delayed (Airport
  strongly, Year mildly -- matching the Fig. 1(d) responsibility ranking);
* **mediators**: Dest and DepTime depend on Carrier and affect Delayed;
* **approximate FDs**: ``AirportWAC <=> Airport`` and
  ``CarrierName <=> Carrier`` (the traps of Sec. 4);
* **key-like attributes**: FlightNum, TailNum, FlightID with entropies
  that grow with the sample size;
* optional padding columns to approach the 101-attribute width.

The causal graph is::

    Airport -> Carrier -> Dest ----\\
        \\        \\-> DepTime -> Delayed
         \\------------------------/
    Year -> Carrier, Year -> Delayed
    Month/DayOfWeek -> Delayed            (minor exogenous covariates)
"""

from __future__ import annotations

import numpy as np

from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng

AIRPORTS = ("COS", "DEN", "MFE", "MTJ", "ORD", "ROC", "SEA", "SFO")
CARRIERS = ("AA", "DL", "UA", "WN")
YEARS = (2008, 2009, 2010)
DEPTIMES = ("evening", "morning", "night")

# World-area codes: a bijection with Airport (approximate FD trap).
AIRPORT_WAC = {
    "COS": 82, "DEN": 82, "MFE": 74, "MTJ": 82,
    "ORD": 41, "ROC": 22, "SEA": 93, "SFO": 91,
}
# DEN/COS/MTJ share a WAC in reality; perturb to make it a bijection so the
# FD filter (two-way FD) can catch it exactly as the paper describes.
AIRPORT_WAC = {airport: 10 + index for index, airport in enumerate(AIRPORTS)}

CARRIER_NAME = {
    "AA": "American Airlines",
    "DL": "Delta Air Lines",
    "UA": "United Airlines",
    "WN": "Southwest Airlines",
}

# Base delay probability per airport: ROC/ORD/SFO are delay-heavy,
# COS/MFE are delay-light (drives the Fig. 1 reversal).
_AIRPORT_DELAY = {
    "COS": 0.08, "DEN": 0.15, "MFE": 0.10, "MTJ": 0.22,
    "ORD": 0.30, "ROC": 0.42, "SEA": 0.18, "SFO": 0.25,
}

# P(carrier | airport): AA concentrates at low-delay airports, UA at
# high-delay ones; DL/WN are spread out (they make Fig. 5(a)'s random
# carrier-pair queries interesting).
_CARRIER_MIX = {
    #          AA    DL    UA    WN
    "COS": (0.55, 0.20, 0.05, 0.20),
    "DEN": (0.25, 0.25, 0.25, 0.25),
    "MFE": (0.50, 0.20, 0.10, 0.20),
    "MTJ": (0.35, 0.25, 0.20, 0.20),
    "ORD": (0.20, 0.25, 0.40, 0.15),
    "ROC": (0.12, 0.20, 0.53, 0.15),
    "SEA": (0.20, 0.30, 0.30, 0.20),
    "SFO": (0.15, 0.25, 0.45, 0.15),
}

# Direct carrier effect on delay is *tiny*: almost all of each carrier's
# per-airport disadvantage flows through the mediators (DepTime, Dest), so
# the paper's Fig. 1 shape holds -- significant total effect, insignificant
# direct effect.
_CARRIER_DIRECT = {"AA": 0.01, "DL": 0.00, "UA": 0.00, "WN": 0.01}

# Year effects: traffic mix and delays drift mildly over time (Year is the
# second-ranked covariate in Fig. 1(d)).
_YEAR_DELAY = {2008: 0.035, 2009: 0.00, 2010: -0.025}
_YEAR_CARRIER_TILT = {2008: "UA", 2009: "DL", 2010: "AA"}

_DEPTIME_DELAY = {"morning": -0.04, "evening": 0.14, "night": 0.00}
# P(deptime | carrier): AA flies more evenings (a mediator of its delays).
_DEPTIME_MIX = {
    "AA": (0.60, 0.25, 0.15),  # evening, morning, night
    "DL": (0.30, 0.45, 0.25),
    "UA": (0.22, 0.58, 0.20),
    "WN": (0.35, 0.40, 0.25),
}

# A global destination pool (NOT airport-specific: a per-airport namespace
# would make Dest functionally determine Airport and mask it from every
# Markov boundary -- the very pathology of Sec. 4).
DESTS = ("ATL", "DFW", "JFK", "LAX", "PHX")
_DEST_DELAY = {"ATL": 0.04, "DFW": 0.01, "JFK": 0.05, "LAX": 0.02, "PHX": -0.02}
# P(dest | carrier): each carrier's route network skews somewhere.
_DEST_MIX = {
    "AA": (0.15, 0.35, 0.20, 0.20, 0.10),
    "DL": (0.40, 0.10, 0.20, 0.15, 0.15),
    "UA": (0.15, 0.10, 0.25, 0.30, 0.20),
    "WN": (0.20, 0.25, 0.10, 0.20, 0.25),
}


def flight_data(
    n_rows: int = 20000,
    seed: int | np.random.Generator | None = None,
    include_keys: bool = True,
    n_padding_columns: int = 0,
) -> Table:
    """Generate a FlightData table.

    Parameters
    ----------
    n_rows:
        Number of flights (the paper's sample is 43 853; the default is
        laptop-friendly while keeping every effect significant).
    seed:
        Generator or seed.
    include_keys:
        Include the key-like attributes FlightID / FlightNum / TailNum and
        the approximate-FD attributes AirportWAC / CarrierName.
    n_padding_columns:
        Extra independent low-signal columns (``Pad00``...), used to
        stress-test discovery on wide schemas (the real data has 101
        attributes).
    """
    check_positive("n_rows", n_rows)
    rng = ensure_rng(seed)
    n = n_rows

    airport_idx = rng.choice(len(AIRPORTS), size=n, p=_airport_distribution())
    airports = np.array(AIRPORTS)[airport_idx]
    years = np.array(YEARS)[rng.integers(0, len(YEARS), size=n)]
    months = rng.integers(1, 13, size=n)
    days = rng.integers(1, 29, size=n)
    weekdays = rng.integers(1, 8, size=n)

    carriers = _sample_carriers(rng, airports, years)
    dests = _sample_dests(rng, airports, carriers)
    deptimes = _sample_deptimes(rng, carriers)
    delayed = _sample_delays(rng, airports, carriers, years, months, weekdays, dests, deptimes)

    columns: dict[str, list] = {
        "Airport": airports.tolist(),
        "Carrier": carriers.tolist(),
        "Year": years.tolist(),
        "Quarter": ((months - 1) // 3 + 1).tolist(),
        "Month": months.tolist(),
        "Day": days.tolist(),
        "DayOfWeek": weekdays.tolist(),
        "Dest": dests.tolist(),
        "DepTime": deptimes.tolist(),
        "Delayed": delayed.tolist(),
    }
    if include_keys:
        columns["AirportWAC"] = [AIRPORT_WAC[a] for a in airports]
        columns["CarrierName"] = [CARRIER_NAME[c] for c in carriers]
        columns["FlightID"] = list(range(n))
        columns["FlightNum"] = rng.integers(1, max(n // 2, 1000), size=n).tolist()
        columns["TailNum"] = [
            f"N{number:05d}" for number in rng.integers(0, max(n // 3, 1000), size=n)
        ]
    for pad in range(n_padding_columns):
        columns[f"Pad{pad:02d}"] = rng.integers(0, 5, size=n).tolist()
    return Table.from_columns(columns)


# ----------------------------------------------------------------------


def _airport_distribution() -> np.ndarray:
    weights = np.array([1.2, 1.5, 1.0, 0.8, 1.6, 1.2, 1.3, 1.4])
    return weights / weights.sum()


def _sample_carriers(
    rng: np.random.Generator, airports: np.ndarray, years: np.ndarray
) -> np.ndarray:
    n = len(airports)
    carriers = np.empty(n, dtype=object)
    carrier_index = {carrier: i for i, carrier in enumerate(CARRIERS)}
    for airport in AIRPORTS:
        for year in YEARS:
            mask = (airports == airport) & (years == year)
            count = int(mask.sum())
            if count == 0:
                continue
            mix = np.array(_CARRIER_MIX[airport], dtype=float)
            tilt = _YEAR_CARRIER_TILT[year]
            mix[carrier_index[tilt]] += 0.30
            mix /= mix.sum()
            carriers[mask] = rng.choice(CARRIERS, size=count, p=mix)
    return carriers.astype(str)


def _sample_dests(
    rng: np.random.Generator, airports: np.ndarray, carriers: np.ndarray
) -> np.ndarray:
    n = len(airports)
    dests = np.empty(n, dtype=object)
    for carrier in CARRIERS:
        mask = carriers == carrier
        count = int(mask.sum())
        if count == 0:
            continue
        dests[mask] = rng.choice(DESTS, size=count, p=_DEST_MIX[carrier])
    return dests.astype(str)


def _sample_deptimes(rng: np.random.Generator, carriers: np.ndarray) -> np.ndarray:
    n = len(carriers)
    deptimes = np.empty(n, dtype=object)
    for carrier in CARRIERS:
        mask = carriers == carrier
        count = int(mask.sum())
        if count == 0:
            continue
        deptimes[mask] = rng.choice(DEPTIMES, size=count, p=_DEPTIME_MIX[carrier])
    return deptimes.astype(str)


def _dest_effect(dest: str) -> float:
    """Per-destination delay offset (congested hubs add delay)."""
    return _DEST_DELAY[dest]


def _sample_delays(
    rng: np.random.Generator,
    airports: np.ndarray,
    carriers: np.ndarray,
    years: np.ndarray,
    months: np.ndarray,
    weekdays: np.ndarray,
    dests: np.ndarray,
    deptimes: np.ndarray,
) -> np.ndarray:
    probability = np.array([_AIRPORT_DELAY[a] for a in airports])
    probability += np.array([_CARRIER_DIRECT[c] for c in carriers])
    probability += np.array([_YEAR_DELAY[y] for y in years])
    probability += 0.03 * np.isin(months, (12, 1, 2))  # winter effect
    probability += 0.02 * (weekdays >= 6)  # weekend effect
    probability += np.array([_dest_effect(d) for d in dests])
    probability += np.array([_DEPTIME_DELAY[t] for t in deptimes])
    probability = np.clip(probability, 0.01, 0.95)
    return (rng.random(len(probability)) < probability).astype(int)
