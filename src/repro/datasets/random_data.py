"""RandomData: datasets with a known causal ground truth (paper Sec. 7.1).

The paper's quality benchmarks (Figs. 5(b)-(d), 6(a)-(d), 8) run on >100
categorical datasets sampled from random Erdős–Rényi causal DAGs with
8/16/32 nodes, 2-20 categories, and 10K-500M rows.  :func:`random_dataset`
draws one such dataset: a random DAG, a random-CPT Bayesian network over
it, and a forward sample -- bundled with the ground truth so benchmarks
can score recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.dag import CausalDAG
from repro.causal.random_dag import random_erdos_renyi_dag
from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng


@dataclass(frozen=True)
class RandomDataset:
    """A sampled dataset together with its generating model."""

    dag: CausalDAG
    network: DiscreteBayesNet
    table: Table

    @property
    def nodes(self) -> list[str]:
        """Attribute names."""
        return self.dag.nodes()


def random_dataset(
    n_nodes: int = 8,
    n_rows: int = 10000,
    categories: int | tuple[int, int] = 2,
    expected_parents: float = 1.5,
    strength: float = 4.0,
    seed: int | np.random.Generator | None = None,
) -> RandomDataset:
    """Sample one RandomData dataset.

    Parameters
    ----------
    n_nodes:
        DAG size (the paper uses 8, 16, 32).
    n_rows:
        Sample size (the paper sweeps 10K-500M; benches scale down).
    categories:
        Either a fixed cardinality for every node, or an inclusive
        ``(low, high)`` range sampled per node (the paper sweeps 2-20).
    expected_parents:
        Expected in-degree of the DAG.
    strength:
        Dirichlet spikiness of the random CPTs; 4.0 yields clearly
        detectable dependencies at 10K rows.
    seed:
        Generator or seed (one generator drives DAG, CPTs, and sampling,
        so a single seed reproduces the whole dataset).
    """
    check_positive("n_rows", n_rows)
    rng = ensure_rng(seed)
    dag = random_erdos_renyi_dag(n_nodes, expected_parents=expected_parents, rng=rng)
    if isinstance(categories, tuple):
        low, high = categories
        if low < 2 or high < low:
            raise ValueError(f"invalid category range {categories!r}")
        cards = {
            node: int(rng.integers(low, high + 1)) for node in dag.nodes()
        }
    else:
        cards = categories
    network = DiscreteBayesNet.random(dag, categories=cards, strength=strength, rng=rng)
    table = network.sample(n_rows, rng=rng)
    return RandomDataset(dag=dag, network=network, table=table)
