"""Dataset generators reproducing the paper's evaluation datasets (Sec. 7.1).

Network access is unavailable, so the public datasets are replaced by
faithful synthetic generators (documented substitutions in DESIGN.md):

* :func:`flight_data` -- DOT on-time style data with a calibrated
  Simpson's paradox (Fig. 1), FD attributes, and key-like attributes.
* :func:`adult_data` -- UCI-census style data where marital status and
  education mediate the gender/income association (Fig. 3 top).
* :func:`berkeley_data` -- the *real* 1973 Berkeley admission aggregates
  (Bickel et al.), expanded to one row per applicant (Fig. 4 top).
* :func:`staples_data` -- online-pricing data where income affects price
  only through distance (Fig. 3 bottom).
* :func:`cancer_data` -- the LUCAS-style simulated data from the paper's
  Fig. 7 ground-truth DAG (Fig. 4 bottom), plus :func:`cancer_dag`.
* :func:`random_dataset` -- RandomData: samples from random Erdős–Rényi
  causal DAGs (Sec. 7.4 quality benchmarks).
"""

from repro.datasets.adult import adult_data
from repro.datasets.berkeley import BERKELEY_ADMISSIONS, berkeley_data
from repro.datasets.cancer import cancer_dag, cancer_data
from repro.datasets.flights import flight_data
from repro.datasets.random_data import RandomDataset, random_dataset
from repro.datasets.staples import staples_data

__all__ = [
    "adult_data",
    "BERKELEY_ADMISSIONS",
    "berkeley_data",
    "cancer_dag",
    "cancer_data",
    "flight_data",
    "RandomDataset",
    "random_dataset",
    "staples_data",
]
