"""AdultData: UCI-census style generator (paper Sec. 7.3, Fig. 3 top).

The UCI adult dataset cannot be fetched offline; this generator reproduces
its statistical skeleton for the gender/income analysis:

* the naive query shows a large income disparity (~11% of women vs ~30%
  of men with high income -- the FairTest-style headline number);
* **MaritalStatus carries most of the bias**: the data contains far more
  married men than married women, and marriage is strongly associated with
  high (household-reported) income -- the inconsistency HypDB's
  fine-grained explanations surface in the paper;
* **Education is the second explanation** (men skew toward higher degrees,
  higher degrees pay more);
* the *direct* effect of gender on income is small by construction, so
  the rewritten query shrinks the gap drastically.

Causal structure::

    Age -> Gender, NativeCountry -> Gender   (sampling-composition edges:
        older cohorts and immigrant cohorts skew male in labor data; two
        non-adjacent "parents" let the CD algorithm identify PA_Gender)
    Age -> MaritalStatus -> Income
    NativeCountry -> Education
    Gender -> MaritalStatus, Gender -> Education, Gender -> HoursPerWeek
    Education -> Income, Education -> Occupation
    HoursPerWeek -> Income, CapitalGain -> Income, Age -> Income
    Gender -> Income (tiny direct edge)
"""

from __future__ import annotations

import numpy as np

from repro.relation.table import Table
from repro.utils.validation import check_positive, ensure_rng

AGES = ("17-29", "30-44", "45-64", "65+")
EDUCATIONS = ("HSgrad", "SomeCollege", "Bachelors", "Masters")
MARITAL = ("Divorced", "Married", "Single")
OCCUPATIONS = ("Admin", "BlueCollar", "Professional", "Sales", "Service")
HOURS = ("part", "full", "over")
CAPGAIN = ("none", "some")

_P_AGE = (0.25, 0.33, 0.32, 0.10)
COUNTRIES = ("NonUS", "US")
_P_US = 0.85
# P(Male) combines an age tilt and a native-country tilt additively.
_MALE_BASE = 0.30
_MALE_AGE = {"17-29": 0.22, "30-44": 0.33, "45-64": 0.40, "65+": 0.42}
_MALE_COUNTRY = {"US": 0.00, "NonUS": 0.18}

# P(Married | gender, age): in census samples many more men report married.
_P_MARRIED = {
    ("Male", "17-29"): 0.25, ("Female", "17-29"): 0.10,
    ("Male", "30-44"): 0.65, ("Female", "30-44"): 0.16,
    ("Male", "45-64"): 0.75, ("Female", "45-64"): 0.14,
    ("Male", "65+"): 0.70, ("Female", "65+"): 0.12,
}
_P_SINGLE_GIVEN_NOT_MARRIED = {"Male": 0.70, "Female": 0.55}

# P(education | gender, country): men skew to Bachelors/Masters, and the
# non-US cohort skews toward the extremes of the distribution.
_P_EDU = {
    ("Male", "US"): (0.32, 0.28, 0.27, 0.13),
    ("Female", "US"): (0.38, 0.34, 0.21, 0.07),
    ("Male", "NonUS"): (0.42, 0.18, 0.22, 0.18),
    ("Female", "NonUS"): (0.48, 0.24, 0.18, 0.10),
}

# P(hours | gender).
_P_HOURS = {
    "Male": (0.10, 0.62, 0.28),
    "Female": (0.30, 0.58, 0.12),
}

_P_CAPGAIN_SOME = 0.08

# P(occupation | education): Professional concentrates at higher degrees.
_P_OCC = {
    "HSgrad": (0.22, 0.38, 0.05, 0.15, 0.20),
    "SomeCollege": (0.28, 0.25, 0.12, 0.18, 0.17),
    "Bachelors": (0.22, 0.08, 0.40, 0.20, 0.10),
    "Masters": (0.15, 0.03, 0.62, 0.12, 0.08),
}

# Additive contributions to P(Income > 50k), calibrated so the naive query
# shows roughly the paper's 11% (women) vs 30% (men) split.
_INCOME_BASE = 0.005
_INCOME_MARITAL = {"Married": 0.32, "Divorced": 0.02, "Single": 0.01}
_INCOME_EDU = {"HSgrad": 0.00, "SomeCollege": 0.02, "Bachelors": 0.10, "Masters": 0.18}
_INCOME_HOURS = {"part": -0.01, "full": 0.02, "over": 0.08}
_INCOME_AGE = {"17-29": -0.01, "30-44": 0.02, "45-64": 0.03, "65+": 0.00}
_INCOME_CAPGAIN = {"none": 0.00, "some": 0.18}
_INCOME_GENDER_DIRECT = {"Male": 0.01, "Female": 0.00}


def adult_data(
    n_rows: int = 30000,
    seed: int | np.random.Generator | None = None,
) -> Table:
    """Generate an AdultData table.

    Columns: Age, Gender, MaritalStatus, Education, Occupation,
    HoursPerWeek, CapitalGain, Income (1 iff > 50k).  The UCI original has
    48 842 rows; the default is laptop-scale with the same proportions.
    """
    check_positive("n_rows", n_rows)
    rng = ensure_rng(seed)
    n = n_rows

    ages = np.array(AGES)[rng.choice(len(AGES), size=n, p=_P_AGE)]
    countries = np.where(rng.random(n) < _P_US, "US", "NonUS")
    p_male = (
        _MALE_BASE
        + np.array([_MALE_AGE[a] for a in ages])
        + np.array([_MALE_COUNTRY[c] for c in countries])
    )
    genders = np.where(rng.random(n) < p_male, "Male", "Female")

    p_married = np.array([_P_MARRIED[(g, a)] for g, a in zip(genders, ages)])
    married_draw = rng.random(n)
    marital = np.empty(n, dtype=object)
    marital[married_draw < p_married] = "Married"
    unmarried = married_draw >= p_married
    p_single = np.array([_P_SINGLE_GIVEN_NOT_MARRIED[g] for g in genders])
    single_draw = rng.random(n)
    marital[unmarried & (single_draw < p_single)] = "Single"
    marital[unmarried & (single_draw >= p_single)] = "Divorced"

    educations = np.empty(n, dtype=object)
    hours = np.empty(n, dtype=object)
    for gender in ("Male", "Female"):
        for country in COUNTRIES:
            mask = (genders == gender) & (countries == country)
            count = int(mask.sum())
            if count:
                educations[mask] = rng.choice(
                    EDUCATIONS, size=count, p=_P_EDU[(gender, country)]
                )
        mask = genders == gender
        hours[mask] = rng.choice(HOURS, size=int(mask.sum()), p=_P_HOURS[gender])

    occupations = np.empty(n, dtype=object)
    for education in EDUCATIONS:
        mask = educations == education
        count = int(mask.sum())
        if count:
            occupations[mask] = rng.choice(OCCUPATIONS, size=count, p=_P_OCC[education])

    capgain = np.where(rng.random(n) < _P_CAPGAIN_SOME, "some", "none")

    probability = (
        _INCOME_BASE
        + np.array([_INCOME_MARITAL[m] for m in marital])
        + np.array([_INCOME_EDU[e] for e in educations])
        + np.array([_INCOME_HOURS[h] for h in hours])
        + np.array([_INCOME_AGE[a] for a in ages])
        + np.array([_INCOME_CAPGAIN[c] for c in capgain])
        + np.array([_INCOME_GENDER_DIRECT[g] for g in genders])
    )
    probability = np.clip(probability, 0.005, 0.95)
    income = (rng.random(n) < probability).astype(int)

    return Table.from_columns(
        {
            "Age": ages.tolist(),
            "NativeCountry": countries.tolist(),
            "Gender": genders.tolist(),
            "MaritalStatus": marital.tolist(),
            "Education": educations.tolist(),
            "Occupation": occupations.tolist(),
            "HoursPerWeek": hours.tolist(),
            "CapitalGain": capgain.tolist(),
            "Income": income.tolist(),
        }
    )
