"""Command-line interface: HypDB over CSV files.

Examples::

    # Full detect / explain / resolve pipeline
    hypdb analyze --csv flights.csv \
        --sql "SELECT Carrier, avg(Delayed) FROM t \
               WHERE Carrier IN ('AA','UA') GROUP BY Carrier"

    # Just evaluate the (possibly biased) group-by query
    hypdb query --csv flights.csv --sql "SELECT Carrier, avg(Delayed) FROM t GROUP BY Carrier"

    # Only run covariate discovery for a treatment attribute
    hypdb discover --csv flights.csv --treatment Carrier --outcome Delayed

    # Serve the HTTP JSON API (register datasets up front with --csv)
    hypdb serve --port 8000 --jobs 4 --csv flights=flights.csv

    # Scale out: 4 shard worker processes behind a consistent-hash router
    hypdb serve --port 8000 --shards 4 --csv flights=flights.csv

    # Scale across machines: a cluster router plus remote shard nodes
    hypdb serve --port 8000 --shards 0 --cluster-token s3cret   # machine A
    hypdb shard --join http://machine-a:8000 --token s3cret     # machine B

    # Submit an async job to a running service and wait for the result
    hypdb submit --url http://127.0.0.1:8000 --wait \
        --json '{"kind": "discover", "dataset": "flights", "treatment": "Carrier"}'
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery
from repro.engine import resolve_engine
from repro.relation.groupby import group_by_average
from repro.relation.table import Table
from repro.service.core import AnalysisService, make_test
from repro.service.http import make_server


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="hypdb",
        description="Detect, explain, and remove bias in OLAP group-by queries.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="full detect/explain/resolve pipeline")
    _add_common(analyze)
    analyze.add_argument("--treatment", help="treatment attribute (default: first GROUP BY)")
    analyze.add_argument(
        "--covariates", nargs="*", default=None, help="skip discovery; use these covariates"
    )
    analyze.add_argument(
        "--mediators", nargs="*", default=None, help="skip discovery; use these mediators"
    )
    analyze.add_argument(
        "--no-direct", action="store_true", help="skip the direct-effect analysis"
    )
    analyze.add_argument(
        "--test",
        choices=("hymit", "chi2", "mit"),
        default="hymit",
        help="conditional-independence test (default: hymit)",
    )
    analyze.add_argument("--alpha", type=float, default=0.01, help="significance level")
    analyze.add_argument("--top-k", type=int, default=2, help="fine-grained explanations per attribute")
    _add_jobs(analyze)

    query = subparsers.add_parser("query", help="evaluate the group-by-average query only")
    _add_common(query)

    discover = subparsers.add_parser("discover", help="run covariate discovery only")
    discover.add_argument("--csv", required=True, help="input CSV file (header row required)")
    discover.add_argument("--treatment", required=True, help="treatment attribute")
    discover.add_argument("--outcome", help="outcome attribute (for the fallback)")
    discover.add_argument("--seed", type=int, default=0, help="random seed")
    discover.add_argument("--alpha", type=float, default=0.01, help="significance level")
    _add_jobs(discover)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived analysis service (HTTP JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="preregister a dataset from a CSV file (repeatable)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="in-memory result-cache capacity (LRU)",
    )
    serve.add_argument(
        "--disk-cache",
        default=None,
        metavar="DIR",
        help="directory for the persistent result-cache layer",
    )
    serve.add_argument(
        "--job-journal",
        default=None,
        metavar="DIR",
        help="directory for the durable job journal (async jobs survive "
        "restarts: queued and running-but-unfinished jobs are resumed "
        "on startup, byte-identically); with --shards each worker "
        "journals under its own subdirectory",
    )
    serve.add_argument(
        "--trace-log",
        default=None,
        metavar="DIR",
        help="append finished request traces as JSON lines under DIR "
        "(one file per process: trace-<scope>-<pid>.jsonl); with "
        "--shards the router and every worker share the directory",
    )
    serve.add_argument(
        "--heal",
        action="store_true",
        help="with --shards: respawn dead shard workers and re-join "
        "them to the ring automatically",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="worker threads of the async v2 jobs API",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="spawn N shard worker processes behind a consistent-hash "
        "router (0 = single process; responses are byte-identical "
        "either way)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="K",
        help="with --shards: keep K copies of each dataset (ring owner "
        "plus K-1 distinct successors); warm reads load-balance across "
        "replicas and shard deaths fail over without recompute "
        "(1 = unreplicated, byte-identical to earlier behavior)",
    )
    serve.add_argument(
        "--cluster-token",
        default=None,
        metavar="TOKEN",
        help="enable the /v2/cluster/* endpoints with this shared "
        "secret, so remote 'hypdb shard --join' nodes can enter the "
        "ring over TCP (--shards may then be 0: a router-only process "
        "that waits for nodes to join); defaults to $REPRO_CLUSTER_TOKEN",
    )
    _add_jobs(serve)

    shard = subparsers.add_parser(
        "shard", help="run one shard worker and join a running cluster router"
    )
    shard.add_argument(
        "--join",
        required=True,
        metavar="ROUTER_URL",
        help="router base URL, e.g. http://machine-a:8000",
    )
    shard.add_argument(
        "--token",
        default=None,
        help="shared cluster token (defaults to $REPRO_CLUSTER_TOKEN)",
    )
    shard.add_argument(
        "--name",
        default=None,
        help="ring name for this node (default: node<port>; must be "
        "unique among live members)",
    )
    shard.add_argument("--host", default="127.0.0.1", help="bind address")
    shard.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    shard.add_argument(
        "--advertise",
        default=None,
        metavar="URL",
        help="URL the router should reach this node at (default: "
        "http://<host>:<port>; set it when the bind address is not "
        "the externally reachable one)",
    )
    shard.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="in-memory result-cache capacity (LRU)",
    )
    shard.add_argument(
        "--disk-cache",
        default=None,
        metavar="DIR",
        help="directory for the persistent result-cache layer",
    )
    shard.add_argument(
        "--job-journal",
        default=None,
        metavar="DIR",
        help="directory for this node's durable job journal",
    )
    shard.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="worker threads of the async v2 jobs API",
    )
    shard.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between heartbeats (default: what the router "
        "advertises in the join response)",
    )
    shard.add_argument(
        "--trace-log",
        default=None,
        metavar="DIR",
        help="append this node's finished request traces as JSON lines "
        "under DIR (trace-<name>-<pid>.jsonl)",
    )
    _add_jobs(shard)

    metrics = subparsers.add_parser(
        "metrics", help="print a running service's Prometheus /metrics text"
    )
    metrics.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8000"
    )
    metrics.add_argument(
        "--timeout", type=float, default=30.0, help="request timeout in seconds"
    )

    submit = subparsers.add_parser(
        "submit", help="submit an async job to a running service (v2 jobs API)"
    )
    submit.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8000"
    )
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--json",
        dest="spec_json",
        help='inline JSON request spec, e.g. \'{"kind": "query", ...}\'',
    )
    source.add_argument(
        "--file",
        dest="spec_file",
        help="path to a JSON request-spec file ('-' reads stdin)",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes, print result"
    )
    submit.add_argument(
        "--poll-interval", type=float, default=0.2, help="seconds between polls"
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait deadline in seconds"
    )
    return parser


def _add_common(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--csv", required=True, help="input CSV file (header row required)")
    subparser.add_argument("--sql", required=True, help="group-by-average SQL query")
    subparser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_jobs(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the execution engine (1 = serial; "
        "results are identical for any value)",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    engine = resolve_engine(getattr(args, "jobs", 1))
    try:
        if args.command == "analyze":
            return _run_analyze(args, engine)
        if args.command == "query":
            return _run_query(args)
        if args.command == "discover":
            return _run_discover(args, engine)
        if args.command == "serve":
            return _run_serve(args, engine)
        if args.command == "shard":
            return _run_shard(args)
        if args.command == "submit":
            return _run_submit(args)
        if args.command == "metrics":
            return _run_metrics(args)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        engine.close()  # shut worker pools down before interpreter exit
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _run_analyze(args: argparse.Namespace, engine) -> int:
    table = Table.from_csv(args.csv)
    query = GroupByQuery.from_sql(args.sql, treatment=args.treatment)
    db = HypDB(
        table,
        test=make_test(args.test, args.seed, engine),
        alpha=args.alpha,
        seed=args.seed,
        engine=engine,
    )
    report = db.analyze(
        query,
        covariates=args.covariates,
        mediators=args.mediators,
        top_k=args.top_k,
        compute_direct=not args.no_direct,
    )
    print(report.format())
    return 0


def _run_query(args: argparse.Namespace) -> int:
    table = Table.from_csv(args.csv)
    query = GroupByQuery.from_sql(args.sql)
    result = group_by_average(
        table, query.group_by_columns(), query.outcomes, where=query.where
    )
    print(result.format())
    return 0


def _run_discover(args: argparse.Namespace, engine) -> int:
    table = Table.from_csv(args.csv)
    db = HypDB(table, alpha=args.alpha, seed=args.seed, engine=engine)
    result = db.discoverer.discover(table, args.treatment, outcome=args.outcome)
    print(f"treatment:        {result.treatment}")
    print(f"covariates (Z):   {list(result.covariates)}")
    print(f"markov boundary:  {list(result.markov_boundary)}")
    print(f"via fallback:     {result.used_fallback}")
    if result.dependency_report.dropped:
        print("dropped attributes:")
        for name, reason in sorted(result.dependency_report.dropped.items()):
            print(f"  {name}: {reason}")
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    """Submit one request spec to a running service's v2 jobs API."""
    import json

    from repro.service.client import ServiceClient, ServiceError

    if args.spec_json is not None:
        raw = args.spec_json
    elif args.spec_file == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(args.spec_file, encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise ValueError(f"cannot read spec file: {error}") from None
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(f"spec is not valid JSON: {error}") from None
    if not isinstance(spec, dict):
        raise ValueError("spec must be a JSON object with a 'kind' field")

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        accepted = client.submit(spec)
        print(json.dumps(accepted, indent=2, sort_keys=True))
        if not args.wait:
            return 0
        finished = client.wait(
            accepted["job_id"],
            timeout=args.timeout,
            poll_interval=args.poll_interval,
        )
        print(json.dumps(finished, indent=2, sort_keys=True))
        return 0
    except TimeoutError as error:
        # The job is still running server-side; the id was already
        # printed, so the caller can keep polling it.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_metrics(args: argparse.Namespace) -> int:
    """``metrics --url``: scrape and print Prometheus exposition text.

    Against a shard router the text already aggregates every live
    shard's families under a ``shard`` label, so one scrape covers the
    whole deployment.
    """
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        status, payload = client.request_bytes("/metrics")
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"error: HTTP {status}: {payload.decode('utf-8', 'replace')}",
              file=sys.stderr)
        return 1
    sys.stdout.write(payload.decode("utf-8"))
    return 0


def _cluster_token(args: argparse.Namespace) -> str | None:
    """The cluster shared secret: CLI flag first, then the environment."""
    token = getattr(args, "cluster_token", None) or getattr(args, "token", None)
    return token or os.environ.get("REPRO_CLUSTER_TOKEN") or None


def _run_serve(args: argparse.Namespace, engine) -> int:
    if args.shards or _cluster_token(args) is not None:
        return _run_serve_sharded(args)
    if args.replicas != 1:
        raise ValueError("--replicas requires --shards")
    if args.heal:
        raise ValueError("--heal requires --shards")
    if args.trace_log is not None:
        from repro.obs.trace import TRACER

        TRACER.configure(log_dir=args.trace_log, scope="serve")
    service = AnalysisService(
        engine=engine,
        max_cache_entries=args.cache_entries,
        disk_cache=args.disk_cache,
        job_workers=args.job_workers,
        job_journal=args.job_journal,
    )
    for spec in args.csv:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise ValueError(f"--csv expects NAME=PATH, got {spec!r}")
        summary = service.register(name, csv_path=path)
        print(f"registered {name}: {summary['n_rows']} rows, "
              f"fingerprint {summary['fingerprint'][:12]}...")
    if args.job_journal is not None:
        recovery = service.recover_jobs()
        print(f"job journal: resumed {recovery['resumed']}, "
              f"restored {recovery['restored_failed']} failed, "
              f"skipped {recovery['skipped']}, "
              f"corrupt lines {recovery['corrupt']}")
    server = make_server(service, host=args.host, port=args.port)
    server.verbose = args.verbose
    host, port = server.server_address[:2]
    print(f"hypdb service listening on http://{host}:{port}")
    print("endpoints: GET /health /stats /metrics /v2/jobs[/<id>]; "
          "POST /register /analyze /query /discover /whatif /batch "
          "/v2/jobs /v2/batch")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _run_serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: N worker processes behind the shard router.

    Each shard runs a full analysis service (with ``--jobs`` engine
    workers of its own -- core use multiplies across shards); the router
    owns the public port and routes by dataset fingerprint.  ``--csv``
    preregistrations go *through the router* so it records ownership for
    warm routing and failover.  ``--replicas K`` keeps K copies of each
    dataset for read scaling and recompute-free failover.

    With ``--cluster-token`` the router additionally opens the
    ``/v2/cluster/*`` endpoints so remote ``hypdb shard --join`` nodes
    can enter the ring over TCP; ``--shards 0`` is then a router-only
    process.  With ``--job-journal`` the router journals its own
    membership, registration, and job id-table under ``<dir>/router``
    and recovers them on restart.
    """
    import json

    from repro.service.journal import RouterJournal
    from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

    token = _cluster_token(args)
    if args.shards == 0 and token is None:
        raise ValueError("--shards 0 requires --cluster-token")
    if args.shards and not 1 <= args.replicas <= args.shards and token is None:
        raise ValueError(
            f"--replicas must be between 1 and --shards, got {args.replicas}"
        )
    if args.replicas < 1:
        raise ValueError(f"--replicas must be >= 1, got {args.replicas}")
    if args.csv and args.shards == 0:
        raise ValueError(
            "--csv preregistration needs local shards; start nodes first "
            "and register through the HTTP API instead"
        )
    if args.trace_log is not None:
        from repro.obs.trace import TRACER

        TRACER.configure(log_dir=args.trace_log, scope="router")
    supervisor = ShardSupervisor(
        shards=args.shards,
        jobs=args.jobs,
        cache_entries=args.cache_entries,
        disk_cache=args.disk_cache,
        job_workers=args.job_workers,
        host=args.host,
        job_journal=args.job_journal,
        trace_log=args.trace_log,
    )
    journal = (
        RouterJournal(os.path.join(args.job_journal, "router"))
        if args.job_journal is not None
        else None
    )
    try:
        backends = supervisor.start()
        router = ShardRouter(
            backends,
            replicas=args.replicas,
            cluster_token=token,
            journal=journal,
        )
        for spec in args.csv:
            name, separator, path = spec.partition("=")
            if not separator or not name or not path:
                raise ValueError(f"--csv expects NAME=PATH, got {spec!r}")
            body = json.dumps({"name": name, "csv_path": path}).encode("utf-8")
            status, payload = router.handle_register(body)
            if status != 200:
                raise ValueError(
                    f"cannot register {name}: {json.loads(payload).get('error')}"
                )
            summary = json.loads(payload)["result"]
            placement = ",".join(router._registrations[name].locations)
            print(f"registered {name}: {summary['n_rows']} rows, "
                  f"fingerprint {summary['fingerprint'][:12]}... "
                  f"-> {placement}")
        if args.shards:
            supervisor.watch(
                router.mark_dead, heal=args.heal, on_respawn=router.rejoin
            )
        server = make_router_server(router, host=args.host, port=args.port)
        server.verbose = args.verbose
        host, port = server.server_address[:2]
        print(f"hypdb shard router listening on http://{host}:{port} "
              f"(replicas={args.replicas}"
              f"{', cluster' if token is not None else ''}"
              f"{', heal' if args.heal else ''})")
        for shard_name, url in router.describe()["shards"].items():
            print(f"  shard {shard_name}: {url}")
        print("endpoints: GET /health /stats /metrics /v2/datasets "
              "/v2/jobs[/<id>] /v2/cluster; "
              "POST /register /analyze /query /discover /whatif /batch "
              "/v2/jobs /v2/batch /v2/cluster/{join,heartbeat,leave}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            server.server_close()
            router.close()
    finally:
        supervisor.close()
    return 0


def _run_shard(args: argparse.Namespace) -> int:
    """``shard --join URL``: one worker node joining a cluster router.

    Boots a full single-process analysis service on this machine,
    registers it with the router's ``/v2/cluster/join`` handshake, and
    keeps membership alive with heartbeats (which also gossip this
    node's warm cache keys back to the router).  Auth and protocol
    rejections are fatal and never retried; only connection failures
    (router not up yet) are retried until the join timeout.
    """
    from repro.service.client import ClusterJoinError, ServiceError
    from repro.service.shard import ShardNode

    token = _cluster_token(args)
    if token is None:
        raise ValueError("shard --join requires --token (or $REPRO_CLUSTER_TOKEN)")
    node = ShardNode(
        args.join,
        token,
        name=args.name,
        host=args.host,
        port=args.port,
        advertise=args.advertise,
        jobs=args.jobs,
        cache_entries=args.cache_entries,
        disk_cache=args.disk_cache,
        job_workers=args.job_workers,
        job_journal=args.job_journal,
        heartbeat_interval=args.heartbeat_interval,
        trace_log=args.trace_log,
    )
    url = node.start()
    try:
        try:
            node.join()
        except ClusterJoinError as error:
            print(f"error: join rejected by {args.join}: {error}", file=sys.stderr)
            return 1
        except ServiceError as error:
            print(f"error: cannot reach router {args.join}: {error}", file=sys.stderr)
            return 1
        print(f"hypdb shard node {node.name} listening on {url} "
              f"(joined {args.join})")
        try:
            node.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            node.leave()
    finally:
        node.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
