"""Command-line interface: HypDB over CSV files.

Examples::

    # Full detect / explain / resolve pipeline
    hypdb analyze --csv flights.csv \
        --sql "SELECT Carrier, avg(Delayed) FROM t \
               WHERE Carrier IN ('AA','UA') GROUP BY Carrier"

    # Just evaluate the (possibly biased) group-by query
    hypdb query --csv flights.csv --sql "SELECT Carrier, avg(Delayed) FROM t GROUP BY Carrier"

    # Only run covariate discovery for a treatment attribute
    hypdb discover --csv flights.csv --treatment Carrier --outcome Delayed
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery
from repro.engine import resolve_engine
from repro.relation.groupby import group_by_average
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="hypdb",
        description="Detect, explain, and remove bias in OLAP group-by queries.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="full detect/explain/resolve pipeline")
    _add_common(analyze)
    analyze.add_argument("--treatment", help="treatment attribute (default: first GROUP BY)")
    analyze.add_argument(
        "--covariates", nargs="*", default=None, help="skip discovery; use these covariates"
    )
    analyze.add_argument(
        "--mediators", nargs="*", default=None, help="skip discovery; use these mediators"
    )
    analyze.add_argument(
        "--no-direct", action="store_true", help="skip the direct-effect analysis"
    )
    analyze.add_argument(
        "--test",
        choices=("hymit", "chi2", "mit"),
        default="hymit",
        help="conditional-independence test (default: hymit)",
    )
    analyze.add_argument("--alpha", type=float, default=0.01, help="significance level")
    analyze.add_argument("--top-k", type=int, default=2, help="fine-grained explanations per attribute")
    _add_jobs(analyze)

    query = subparsers.add_parser("query", help="evaluate the group-by-average query only")
    _add_common(query)

    discover = subparsers.add_parser("discover", help="run covariate discovery only")
    discover.add_argument("--csv", required=True, help="input CSV file (header row required)")
    discover.add_argument("--treatment", required=True, help="treatment attribute")
    discover.add_argument("--outcome", help="outcome attribute (for the fallback)")
    discover.add_argument("--seed", type=int, default=0, help="random seed")
    discover.add_argument("--alpha", type=float, default=0.01, help="significance level")
    _add_jobs(discover)
    return parser


def _add_common(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--csv", required=True, help="input CSV file (header row required)")
    subparser.add_argument("--sql", required=True, help="group-by-average SQL query")
    subparser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_jobs(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the execution engine (1 = serial; "
        "results are identical for any value)",
    )


def _make_test(name: str, seed: int, engine=None):
    if name == "chi2":
        return ChiSquaredTest()
    if name == "mit":
        return PermutationTest(
            n_permutations=1000, group_sampling="log", seed=seed, engine=engine
        )
    return HybridTest(n_permutations=1000, seed=seed, engine=engine)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    engine = resolve_engine(getattr(args, "jobs", 1))
    try:
        if args.command == "analyze":
            return _run_analyze(args, engine)
        if args.command == "query":
            return _run_query(args)
        if args.command == "discover":
            return _run_discover(args, engine)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        engine.close()  # shut worker pools down before interpreter exit
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _run_analyze(args: argparse.Namespace, engine) -> int:
    table = Table.from_csv(args.csv)
    query = GroupByQuery.from_sql(args.sql, treatment=args.treatment)
    db = HypDB(
        table,
        test=_make_test(args.test, args.seed, engine),
        alpha=args.alpha,
        seed=args.seed,
        engine=engine,
    )
    report = db.analyze(
        query,
        covariates=args.covariates,
        mediators=args.mediators,
        top_k=args.top_k,
        compute_direct=not args.no_direct,
    )
    print(report.format())
    return 0


def _run_query(args: argparse.Namespace) -> int:
    table = Table.from_csv(args.csv)
    query = GroupByQuery.from_sql(args.sql)
    result = group_by_average(
        table, query.group_by_columns(), query.outcomes, where=query.where
    )
    print(result.format())
    return 0


def _run_discover(args: argparse.Namespace, engine) -> int:
    table = Table.from_csv(args.csv)
    db = HypDB(table, alpha=args.alpha, seed=args.seed, engine=engine)
    result = db.discoverer.discover(table, args.treatment, outcome=args.outcome)
    print(f"treatment:        {result.treatment}")
    print(f"covariates (Z):   {list(result.covariates)}")
    print(f"markov boundary:  {list(result.markov_boundary)}")
    print(f"via fallback:     {result.used_fallback}")
    if result.dependency_report.dropped:
        print("dropped attributes:")
        for name, reason in sorted(result.dependency_report.dropped.items()):
            print(f"  {name}: {reason}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
