"""Handling of logical dependencies before covariate discovery (Sec. 4).

Integrity constraints confuse every constraint-based discovery algorithm:

* an approximate functional dependency ``X => T`` (e.g. ``AirportWAC =>
  Airport``) makes ``MB(T) = {X}``, isolating the treatment from the rest
  of the DAG;
* key-like attributes (``ID``, ``FlightNum``, ``TailNum``) have entropies
  that grow with the sample size and participate in spurious dependencies
  with everything.

HypDB therefore (1) drops attributes that are two-way approximate FDs of
the treatment (``H(T|X) <= eps`` and ``H(X|T) <= eps``), (2) de-duplicates
mutually determined attribute pairs among the candidates, and (3) detects
key-like attributes by checking whether an attribute's entropy depends on
the subsample size -- the entropy of a genuine attribute is a property of
the generating distribution, while for a key it tracks ``log n``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table
from repro.utils.validation import ensure_rng


@dataclass
class DependencyReport:
    """Which attributes were dropped, and why."""

    kept: tuple[str, ...]
    dropped: dict[str, str] = field(default_factory=dict)

    def reason(self, attribute: str) -> str | None:
        """The drop reason for ``attribute`` (``None`` if kept)."""
        return self.dropped.get(attribute)


class LogicalDependencyFilter:
    """Filters candidate attributes before Markov-boundary computation.

    Parameters
    ----------
    fd_epsilon:
        Threshold on conditional entropies for approximate FDs.
    key_subsample_sizes:
        Number of nested subsamples used in the key-detection entropy
        regression.
    key_correlation_threshold:
        Minimum Pearson correlation between ``log n`` and ``H(X)`` over
        the subsamples to declare an attribute key-like.
    key_min_growth:
        Minimum absolute entropy growth (nats) between the smallest and
        largest subsample to declare key-likeness (filters constant-noise
        correlations).
    seed:
        Generator or seed for the subsampling.
    """

    def __init__(
        self,
        fd_epsilon: float = 0.01,
        key_subsample_sizes: int = 5,
        key_correlation_threshold: float = 0.9,
        key_min_growth: float = 0.15,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.fd_epsilon = fd_epsilon
        self.key_subsample_sizes = key_subsample_sizes
        self.key_correlation_threshold = key_correlation_threshold
        self.key_min_growth = key_min_growth
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------

    def filter(
        self,
        table: Table,
        treatment: str,
        candidates: Sequence[str] | None = None,
    ) -> DependencyReport:
        """Return the candidates that survive all three filters."""
        names = [
            name
            for name in (candidates if candidates is not None else table.columns)
            if name != treatment
        ]
        report = DependencyReport(kept=())
        engine = EntropyEngine(table, estimator="plugin")

        survivors: list[str] = []
        for name in names:
            if self._is_fd_equivalent(engine, treatment, name):
                report.dropped[name] = f"two-way approximate FD with treatment {treatment!r}"
            else:
                survivors.append(name)

        key_like = self.detect_key_attributes(table, survivors)
        survivors = [name for name in survivors if name not in key_like]
        for name in key_like:
            report.dropped[name] = "key-like: entropy grows with sample size"

        survivors = self._deduplicate(engine, survivors, report)
        report.kept = tuple(survivors)
        return report

    # ------------------------------------------------------------------

    def _is_fd_equivalent(self, engine: EntropyEngine, a: str, b: str) -> bool:
        """Two-way approximate FD: ``H(a|b) <= eps`` and ``H(b|a) <= eps``.

        Routed through the grouped/ordered entropy path (ROADMAP
        "ordered-memo reach"): one kernel pass yields H(a), H(b), and
        H(a,b) together -- in the same packed order the legacy
        ``conditional_entropy`` scans used, so the thresholded floats are
        bit-identical -- and on a warm table all three come from the memo
        with zero data passes.
        """
        h_a, h_b, h_ab, _ = engine.shared_entropies(a, b)
        return h_ab - h_b <= self.fd_epsilon and h_ab - h_a <= self.fd_epsilon

    def _deduplicate(
        self,
        engine: EntropyEngine,
        names: list[str],
        report: DependencyReport,
    ) -> list[str]:
        """Keep one representative of each mutually-determined attribute group.

        Among equivalents, the attribute with the smallest domain (then the
        alphabetically first) is kept -- e.g. ``Airport`` survives and its
        world-area code is dropped.
        """
        table = engine.table
        ordered = sorted(names, key=lambda name: (table.domain_size(name), name))
        kept: list[str] = []
        for name in ordered:
            duplicate_of = None
            for representative in kept:
                if self._is_fd_equivalent(engine, name, representative):
                    duplicate_of = representative
                    break
            if duplicate_of is None:
                kept.append(name)
            else:
                report.dropped[name] = (
                    f"two-way approximate FD with kept attribute {duplicate_of!r}"
                )
        # Restore the caller's ordering for determinism downstream.
        kept_set = set(kept)
        return [name for name in names if name in kept_set]

    # ------------------------------------------------------------------

    def detect_key_attributes(
        self, table: Table, candidates: Sequence[str] | None = None
    ) -> set[str]:
        """Attributes whose entropy is a function of the sample size.

        Draws ``key_subsample_sizes`` nested subsamples with sizes spread
        geometrically between ``n/16`` and ``n/2``, computes each
        attribute's plug-in entropy per subsample, and flags attributes
        whose entropy correlates strongly with ``log n`` *and* grows by at
        least ``key_min_growth`` nats across the sweep.
        """
        names = list(candidates if candidates is not None else table.columns)
        n = table.n_rows
        if n < 64 or not names:
            return set()
        sizes = np.unique(
            np.geomspace(max(n // 16, 16), max(n // 2, 32), self.key_subsample_sizes).astype(int)
        )
        if len(sizes) < 3:
            return set()
        # One nested permutation so subsamples are prefixes of each other:
        # this removes resampling noise from the regression.
        order = self._rng.permutation(n)
        entropies = {name: [] for name in names}
        for size in sizes:
            subsample = table.take(order[:size])
            sub_engine = EntropyEngine(subsample, estimator="plugin")
            for name in names:
                entropies[name].append(sub_engine.entropy((name,)))
        log_sizes = np.log(sizes.astype(float))
        keys: set[str] = set()
        for name in names:
            values = np.asarray(entropies[name])
            growth = values[-1] - values[0]
            if growth < self.key_min_growth:
                continue
            spread = values.std()
            if spread == 0:
                continue
            correlation = float(np.corrcoef(log_sizes, values)[0, 1])
            if correlation >= self.key_correlation_threshold:
                keys.add(name)
        return keys
