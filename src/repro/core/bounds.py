"""Effect bounds when the parents of the treatment are not identifiable.

Paper Sec. 4: when all of a treatment's parents are mutually adjacent, no
algorithm can pick them out of the Markov boundary from data alone -- but
"one can compute a set of potential parents of T and use them to establish
a bound on causal effect", i.e. adjust for *every* admissible subset of
``MB(T) - {Y}`` and report the range of adjusted effects.  The paper
leaves this as future work; this module implements it.

The returned envelope is informative in both directions: a narrow interval
means the conclusion is robust to which boundary members are the true
confounders; an interval straddling zero means the data cannot even settle
the effect's sign.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.rewrite import NoOverlapError, total_effect
from repro.relation.table import Table
from repro.utils.subsets import bounded_subsets


@dataclass(frozen=True)
class CandidateAdjustment:
    """The adjusted effect for one candidate covariate subset."""

    covariates: tuple[str, ...]
    difference: float
    matched_fraction: float


@dataclass(frozen=True)
class EffectBounds:
    """The envelope of adjusted effects over candidate covariate sets."""

    treatment: str
    outcome: str
    lower: float
    upper: float
    candidates: tuple[CandidateAdjustment, ...]
    n_skipped: int  # subsets dropped for lack of overlap

    @property
    def width(self) -> float:
        """Size of the bound interval."""
        return self.upper - self.lower

    def sign_identified(self) -> bool:
        """True when every admissible adjustment agrees on the sign."""
        return self.lower > 0 or self.upper < 0

    def __repr__(self) -> str:
        return (
            f"EffectBounds({self.treatment!r} -> {self.outcome!r}: "
            f"[{self.lower:+.4f}, {self.upper:+.4f}] over "
            f"{len(self.candidates)} adjustment sets)"
        )


def effect_bounds(
    table: Table,
    treatment: str,
    outcome: str,
    potential_parents: Sequence[str],
    max_subset_size: int | None = None,
    min_matched_fraction: float = 0.2,
) -> EffectBounds:
    """Bound the ATE over all subsets of the potential parents.

    Parameters
    ----------
    table:
        The (context-filtered) relation.
    treatment, outcome:
        Binary-comparison treatment and a numeric outcome.
    potential_parents:
        Typically ``MB(T) - {Y}`` from discovery: the attributes that
        *might* be the treatment's parents.
    max_subset_size:
        Cap on the enumerated subset size (``None`` = all subsets).
    min_matched_fraction:
        Adjustment sets whose exact matching discards more than
        ``1 - min_matched_fraction`` of the context are skipped: their
        estimates describe too little of the population to bound anything.

    Returns the envelope over all admissible adjustments, including the
    unadjusted (empty-set) estimate.
    """
    candidates: list[CandidateAdjustment] = []
    skipped = 0
    for subset in bounded_subsets(tuple(potential_parents), max_subset_size):
        try:
            answer = total_effect(table, treatment, [outcome], list(subset))
        except NoOverlapError:
            skipped += 1
            continue
        if answer.matched_fraction < min_matched_fraction:
            skipped += 1
            continue
        candidates.append(
            CandidateAdjustment(
                covariates=tuple(subset),
                difference=answer.difference(outcome),
                matched_fraction=answer.matched_fraction,
            )
        )
    if not candidates:
        raise NoOverlapError(treatment=treatment, covariates=tuple(potential_parents))
    differences = [candidate.difference for candidate in candidates]
    return EffectBounds(
        treatment=treatment,
        outcome=outcome,
        lower=min(differences),
        upper=max(differences),
        candidates=tuple(candidates),
        n_skipped=skipped,
    )
