"""Bias detection (paper Sec. 3.1).

A query is *balanced* w.r.t. a variable set ``V`` in a context Γ iff the
marginal distribution of ``V`` is the same in every treatment group, i.e.
``T ⊥ V | Γ`` (Def. 3.1).  By Prop. 3.2, balance w.r.t. the covariates
``Z`` makes the query's group difference an unbiased ATE estimate, and
balance w.r.t. ``Z ∪ M`` makes it an unbiased NDE estimate.

Detection therefore reduces to one joint conditional-independence test per
context: the variables ``V`` are packed into a single compound column and
any :class:`~repro.stats.base.CITest` decides ``I(T ; V) = 0``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CIResult, CITest

JOINT_COLUMN = "__hypdb_joint__"


@dataclass(frozen=True)
class BalanceResult:
    """The verdict of the balance test for one context."""

    variables: tuple[str, ...]
    result: CIResult
    alpha: float = DEFAULT_ALPHA

    @property
    def biased(self) -> bool:
        """True when ``T ⊥̸ V`` -- the query is biased w.r.t. ``V``."""
        return self.result.dependent(self.alpha)

    @property
    def p_value(self) -> float:
        """p-value of the balance test."""
        return self.result.p_value

    def __repr__(self) -> str:
        verdict = "BIASED" if self.biased else "unbiased"
        return (
            f"BalanceResult({verdict} w.r.t. {list(self.variables)}, "
            f"I={self.result.statistic:.4f}, p={self.result.p_value:.4g})"
        )


def with_joint_column(table: Table, columns: Sequence[str], name: str = JOINT_COLUMN) -> Table:
    """Extend ``table`` with one column encoding the joint value of ``columns``.

    Used to feed multi-attribute variables through the single-attribute
    :class:`CITest` interface.
    """
    codes, _ = table.joint_codes(tuple(columns))
    return table.with_column(name, codes.tolist())


def detect_bias(
    context_table: Table,
    treatment: str,
    variables: Sequence[str],
    test: CITest,
    alpha: float = DEFAULT_ALPHA,
) -> BalanceResult:
    """Test whether a query is balanced w.r.t. ``variables`` in a context.

    Parameters
    ----------
    context_table:
        The rows of the context Γ (WHERE clause plus grouping values
        already applied).
    treatment:
        The grouping attribute ``T``.
    variables:
        The covariates ``Z`` (total effect) or ``Z ∪ M`` (direct effect).
    test:
        Any conditional-independence test.
    alpha:
        Significance level.

    With an empty ``variables`` the query is trivially balanced.
    """
    names = tuple(variables)
    if treatment in names:
        raise ValueError("treatment cannot be among the balance variables")
    if not names:
        return BalanceResult(
            variables=(),
            result=CIResult(statistic=0.0, p_value=1.0, method="trivial"),
            alpha=alpha,
        )
    augmented = with_joint_column(context_table, names)
    result = test.test(augmented, treatment, JOINT_COLUMN)
    return BalanceResult(variables=names, result=result, alpha=alpha)
