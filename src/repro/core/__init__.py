"""HypDB core: detect, explain, and resolve bias in OLAP queries.

This package is the paper's primary contribution:

* :mod:`repro.core.query` -- the group-by-average query model (Listing 1)
  and its contexts Γ.
* :mod:`repro.core.fd` -- handling of logical dependencies: approximate
  functional dependencies and key-like high-entropy attributes (Sec. 4).
* :mod:`repro.core.discovery` -- the CD algorithm (Alg. 1): automatic
  covariate discovery from Markov boundaries without learning the full DAG.
* :mod:`repro.core.detector` -- the biased-query test (Def. 3.1,
  Prop. 3.2).
* :mod:`repro.core.explain` -- coarse-grained responsibility (Def. 3.3) and
  fine-grained contribution explanations (Def. 3.4, Alg. 3).
* :mod:`repro.core.rewrite` -- query rewriting (Listing 2): adjusted total
  effect (Eq. 2) and natural direct effect (Eq. 3) with exact matching.
* :mod:`repro.core.hypdb` -- the end-to-end facade.
"""

from repro.core.bounds import CandidateAdjustment, EffectBounds, effect_bounds
from repro.core.detector import BalanceResult, detect_bias
from repro.core.discovery import CovariateDiscoverer, DiscoveryResult
from repro.core.explain import (
    CoarseExplanation,
    FineExplanation,
    coarse_grained_explanations,
    fine_grained_explanations,
)
from repro.core.fd import LogicalDependencyFilter
from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery, QueryContext
from repro.core.report import BiasReport, ContextReport, EffectEstimate
from repro.core.rewrite import direct_effect, total_effect
from repro.core.sqlgen import predicate_to_sql, rewritten_total_effect_sql
from repro.core.whatif import WhatIfAnswer, what_if

__all__ = [
    "BalanceResult",
    "detect_bias",
    "CovariateDiscoverer",
    "DiscoveryResult",
    "CoarseExplanation",
    "FineExplanation",
    "coarse_grained_explanations",
    "fine_grained_explanations",
    "LogicalDependencyFilter",
    "HypDB",
    "GroupByQuery",
    "QueryContext",
    "BiasReport",
    "ContextReport",
    "EffectEstimate",
    "direct_effect",
    "total_effect",
    "CandidateAdjustment",
    "EffectBounds",
    "effect_bounds",
    "predicate_to_sql",
    "rewritten_total_effect_sql",
    "WhatIfAnswer",
    "what_if",
]
