"""Explanations for bias (paper Sec. 3.2, Alg. 3).

*Coarse-grained* explanations rank the variables in ``V`` by their degree
of responsibility (Def. 3.3)::

    rho_Z = ( I(T;V) - I(T;V|Z) ) / sum_{V'} ( I(T;V) - I(T;V|V') )

computed inside the query context.  Since ``Z ∈ V``, every numerator is
non-negative (submodularity), so responsibilities are normalized shares of
the bias ``I(T;V) > 0``.

*Fine-grained* explanations (Def. 3.4, Alg. 3 "FGE") surface the value
triples ``(t, y, z)`` that contribute most to both ``I(T;Z)`` and
``I(Y;Z)``: triples are ranked by each contribution separately and the two
rankings are merged with Borda's method.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.infotheory.cache import EntropyEngine
from repro.infotheory.contributions import contribution_table
from repro.relation.table import Table
from repro.utils.borda import borda_aggregate, rank_by_value


@dataclass(frozen=True)
class CoarseExplanation:
    """One attribute's share of the responsibility for the bias."""

    attribute: str
    responsibility: float
    information_drop: float  # the (unnormalized) numerator I(T;V) - I(T;V|Z)

    def __repr__(self) -> str:
        return f"{self.attribute}: rho={self.responsibility:.3f}"


@dataclass(frozen=True)
class FineExplanation:
    """One ground-level triple (t, y, z) explaining the confounding."""

    treatment_value: Any
    outcome_value: Any
    attribute_value: Any
    kappa_treatment: float  # contribution of (t, z) to I(T;Z)
    kappa_outcome: float  # contribution of (y, z) to I(Y;Z)

    def __repr__(self) -> str:
        return (
            f"(T={self.treatment_value}, Y={self.outcome_value}, "
            f"Z={self.attribute_value}; k_T={self.kappa_treatment:.4f}, "
            f"k_Y={self.kappa_outcome:.4f})"
        )


def coarse_grained_explanations(
    context_table: Table,
    treatment: str,
    variables: Sequence[str],
    estimator: str = "miller_madow",
) -> list[CoarseExplanation]:
    """Rank ``variables`` by degree of responsibility (Def. 3.3).

    Returns one :class:`CoarseExplanation` per variable, sorted by
    responsibility (highest first).  When the total information drop is
    zero (the query is balanced), all responsibilities are zero.
    """
    names = tuple(variables)
    if treatment in names:
        raise ValueError("treatment cannot be among the explanation variables")
    if not names:
        return []
    engine = EntropyEngine(context_table, estimator=estimator)
    # Two-way statements (single variable on each side) route through the
    # grouped/ordered entropy path: bit-identical floats (same packed
    # orders, same summation) but one kernel pass cold and zero data
    # passes warm.  Wider statements keep the set-keyed joint-entropy
    # route -- the grouped kernel is a pairwise summary.
    if len(names) == 1:
        total_information = engine.cmi_shared(treatment, names[0])
    else:
        total_information = engine.mutual_information((treatment,), names)
    drops: dict[str, float] = {}
    for attribute in names:
        rest = tuple(name for name in names if name != attribute)
        if len(rest) == 1:
            conditional = engine.cmi_shared(treatment, rest[0], (attribute,))
        elif rest:
            conditional = engine.mutual_information((treatment,), rest, (attribute,))
        else:
            conditional = 0.0
        # Submodularity guarantees >= 0 for Z in V; estimator noise can
        # produce tiny negatives, which we clamp.
        drops[attribute] = max(total_information - conditional, 0.0)
    denominator = sum(drops.values())
    explanations = [
        CoarseExplanation(
            attribute=attribute,
            responsibility=(drops[attribute] / denominator) if denominator > 0 else 0.0,
            information_drop=drops[attribute],
        )
        for attribute in names
    ]
    explanations.sort(key=lambda item: (-item.responsibility, item.attribute))
    return explanations


def fine_grained_explanations(
    context_table: Table,
    treatment: str,
    outcome: str,
    attribute: str,
    top_k: int = 2,
) -> list[FineExplanation]:
    """Top-k ground-level triples for one explanation attribute (Alg. 3).

    Every observed triple ``(t, y, z)`` in the context is scored by the
    contribution of ``(t, z)`` to ``I(T;Z)`` and of ``(y, z)`` to
    ``I(Y;Z)``; the two descending rankings are aggregated with the Borda
    count and the ``top_k`` winners are returned.
    """
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    kappa_treatment = contribution_table(context_table, treatment, attribute)
    kappa_outcome = contribution_table(context_table, outcome, attribute)
    triples = context_table.distinct([treatment, outcome, attribute])
    if not triples:
        return []
    by_treatment = {
        (t, y, z): kappa_treatment[(t, z)] for (t, y, z) in triples
    }
    by_outcome = {
        (t, y, z): kappa_outcome[(y, z)] for (t, y, z) in triples
    }
    merged = borda_aggregate(
        [rank_by_value(by_treatment), rank_by_value(by_outcome)]
    )
    return [
        FineExplanation(
            treatment_value=t,
            outcome_value=y,
            attribute_value=z,
            kappa_treatment=by_treatment[(t, y, z)],
            kappa_outcome=by_outcome[(t, y, z)],
        )
        for (t, y, z) in merged[:top_k]
    ]
