"""Emit the rewritten query as SQL text (paper Listing 2 / Listing 3).

HypDB evaluates the adjustment formula natively, but the paper's pitch is
that the rewriting is *just SQL*: a ``WITH Blocks / Weights`` query any
engine can run.  :func:`rewritten_total_effect_sql` renders exactly the
paper's Listing 2 for a given query and covariate set -- including the
exact-matching ``HAVING count(DISTINCT T) = k`` clause -- so users can take
HypDB's discovered covariates back to their own warehouse.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.query import GroupByQuery
from repro.relation.predicates import (
    And,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    NotIn,
    Or,
    Predicate,
    _True,
)


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (single-quote escaping)."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def predicate_to_sql(predicate: Predicate) -> str:
    """Render a predicate AST as a SQL boolean expression."""
    if isinstance(predicate, _True):
        return "TRUE"
    if isinstance(predicate, Eq):
        return f"{predicate.column} = {sql_literal(predicate.value)}"
    if isinstance(predicate, Ne):
        return f"{predicate.column} <> {sql_literal(predicate.value)}"
    if isinstance(predicate, In):
        values = ", ".join(sql_literal(value) for value in predicate.values)
        return f"{predicate.column} IN ({values})"
    if isinstance(predicate, NotIn):
        values = ", ".join(sql_literal(value) for value in predicate.values)
        return f"{predicate.column} NOT IN ({values})"
    if isinstance(predicate, Lt):
        return f"{predicate.column} < {sql_literal(predicate.value)}"
    if isinstance(predicate, Le):
        return f"{predicate.column} <= {sql_literal(predicate.value)}"
    if isinstance(predicate, Gt):
        return f"{predicate.column} > {sql_literal(predicate.value)}"
    if isinstance(predicate, Ge):
        return f"{predicate.column} >= {sql_literal(predicate.value)}"
    if isinstance(predicate, And):
        if not predicate.operands:
            return "TRUE"
        return " AND ".join(f"({predicate_to_sql(op)})" for op in predicate.operands)
    if isinstance(predicate, Or):
        if not predicate.operands:
            return "FALSE"
        return " OR ".join(f"({predicate_to_sql(op)})" for op in predicate.operands)
    if isinstance(predicate, Not):
        return f"NOT ({predicate_to_sql(predicate.operand)})"
    raise TypeError(f"cannot render predicate of type {type(predicate).__name__}")


def rewritten_total_effect_sql(
    query: GroupByQuery,
    covariates: Sequence[str],
    table_name: str = "D",
    n_treatments: int = 2,
) -> str:
    """The rewritten query Q_rw of paper Listing 2, as executable SQL.

    Parameters
    ----------
    query:
        The original (possibly biased) group-by-average query.
    covariates:
        The covariate set ``Z`` to adjust for (e.g. from the CD algorithm).
    table_name:
        Relation name to render in the FROM clauses.
    n_treatments:
        Number of treatment values the exact-matching clause requires per
        block (the paper's binary setting uses 2).

    The emitted SQL computes, per treatment value (and per grouping value
    ``X``), the weighted average of within-block outcome averages where
    blocks are homogeneous on ``Z`` and weights are the block probabilities
    re-normalized over exactly-matched blocks.
    """
    z = list(covariates)
    if not z:
        raise ValueError("rewriting requires at least one covariate; Z is empty")
    t = query.treatment
    x = list(query.groupings)
    where_sql = predicate_to_sql(query.where)

    blocks_group = ", ".join([t] + z + x)
    weights_group = ", ".join(z + x)
    avg_items = ",\n         ".join(
        f"avg({y}) AS avg_{y}" for y in query.outcomes
    )
    sum_items = ",\n       ".join(
        f"sum(Blocks.avg_{y} * Weights.W) AS adj_avg_{y}" for y in query.outcomes
    )
    join_keys = z + x
    join_condition = "\n  AND ".join(
        f"Blocks.{column} = Weights.{column}" for column in join_keys
    )
    outer_group = ", ".join([f"Blocks.{t}"] + [f"Blocks.{column}" for column in x])
    outer_select = ", ".join([f"Blocks.{t}"] + [f"Blocks.{column}" for column in x])

    return f"""WITH Blocks AS (
  SELECT {blocks_group},
         {avg_items}
  FROM {table_name}
  WHERE {where_sql}
  GROUP BY {blocks_group}
),
Weights AS (
  SELECT {weights_group},
         count(*) * 1.0 / sum(count(*)) OVER () AS W
  FROM {table_name}
  WHERE {where_sql}
  GROUP BY {weights_group}
  HAVING count(DISTINCT {t}) = {n_treatments}
)
SELECT {outer_select},
       {sum_items}
FROM Blocks
JOIN Weights
   ON {join_condition}
GROUP BY {outer_group}"""
