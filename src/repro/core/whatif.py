"""What-if (interventional) queries over the discovered causal structure.

Paper Sec. 8: hypothetical-OLAP systems compute query answers under
hypothetical database *updates*, but a causal what-if -- "what would the
average delay be if every flight in this region were operated by UA?" --
requires accounting for confounding, not just editing tuples.  HypDB's
machinery answers it directly: under unconfoundedness w.r.t. ``Z``,

    E[Y | do(T = t), subpopulation] =
        sum_z Pr(z | subpopulation) * E[Y | T = t, Z = z, subpopulation]

which is the per-treatment-arm component of the adjustment formula
(Eq. 2) restricted to the subpopulation.  The paper lists efficient
what-if/how-so support as future work; this module provides the
laptop-scale version on top of the rewriting engine.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.rewrite import total_effect
from repro.relation.predicates import Predicate
from repro.relation.table import Table


@dataclass(frozen=True)
class WhatIfAnswer:
    """The estimated outcome averages under hypothetical interventions."""

    treatment: str
    outcome: str
    factual_average: float
    interventions: dict[Any, float]  # treatment value -> E[Y | do(T = t)]
    n_rows: int
    matched_fraction: float
    covariates: tuple[str, ...] = ()  # the adjustment set used

    def effect_of(self, value: Any) -> float:
        """Change vs the factual average if everyone received ``value``."""
        return self.interventions[value] - self.factual_average

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; interventions keep the answer's value order."""
        from repro.core.report import json_value

        return {
            "treatment": self.treatment,
            "outcome": self.outcome,
            "covariates": list(self.covariates),
            "factual_average": json_value(self.factual_average),
            "interventions": [
                {"treatment_value": json_value(value), "average": json_value(average)}
                for value, average in self.interventions.items()
            ],
            "n_rows": self.n_rows,
            "matched_fraction": json_value(self.matched_fraction),
        }

    def __repr__(self) -> str:
        rendered = {value: round(avg, 4) for value, avg in self.interventions.items()}
        return (
            f"WhatIfAnswer(do({self.treatment}=...): {rendered}; "
            f"factual={self.factual_average:.4f})"
        )


def what_if(
    table: Table,
    treatment: str,
    outcome: str,
    covariates: Sequence[str],
    where: Predicate | None = None,
) -> WhatIfAnswer:
    """Estimate ``E[Y | do(T = t), where]`` for every treatment value.

    Parameters
    ----------
    table:
        The full relation.
    treatment, outcome:
        The intervened attribute and the numeric outcome.
    covariates:
        A set satisfying unconfoundedness (e.g. HypDB's discovered ``Z``).
    where:
        Optional subpopulation ("for flights out of Colorado, what if...").

    The factual average is the subpopulation's observed ``avg(outcome)``;
    each intervention value's estimate comes from the adjustment formula
    with exact matching, so unsupported strata are excluded (and reported
    through ``matched_fraction``).
    """
    context = table.where(where)
    if context.n_rows == 0:
        raise ValueError("the WHERE clause selects no rows")
    factual = float(context.numeric(outcome).mean())
    answer = total_effect(context, treatment, [outcome], list(covariates))
    interventions = {
        value: answer.average(value, outcome) for value in answer.treatment_values
    }
    return WhatIfAnswer(
        treatment=treatment,
        outcome=outcome,
        factual_average=factual,
        interventions=interventions,
        n_rows=context.n_rows,
        matched_fraction=answer.matched_fraction,
        covariates=tuple(covariates),
    )
