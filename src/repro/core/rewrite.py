"""Query rewriting: adjusted effects with exact matching (paper Sec. 3.3).

The rewritten query (Listing 2) implements the adjustment formula (Eq. 2):

* **Blocks** -- partition the context into groups homogeneous on the
  covariates ``Z`` and average each outcome per treatment within a block;
* **Exact matching** -- discard blocks that do not contain *every*
  treatment value (the SQL ``HAVING count(DISTINCT T) = 2``), enforcing the
  overlap requirement of Assumption 2.1;
* **Weights** -- re-average the block averages with weights proportional
  to the retained blocks' sizes (probabilities are re-normalized w.r.t.
  the data remaining after pruning, as the paper specifies).

The natural direct effect (Eq. 3) is computed analogously with the
mediator formula: outcome averages are taken per ``(T, M)`` cell and the
cell weights are ``sum_z Pr(z) * Pr(m | T = t_ref, z)`` where ``t_ref`` is
the treatment whose mediator distribution is held fixed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.relation.table import Table


@dataclass(frozen=True)
class AdjustedAnswer:
    """Adjusted per-treatment averages for one context.

    ``averages[t][outcome]`` is the adjusted mean of ``outcome`` under
    treatment value ``t``; ``matched_fraction`` reports how much of the
    context survived exact matching (1.0 = full overlap).
    """

    treatment: str
    treatment_values: tuple[Any, ...]
    outcomes: tuple[str, ...]
    averages: dict[Any, dict[str, float]]
    n_blocks: int
    n_matched_blocks: int
    matched_fraction: float
    kind: str = "total"
    reference: Any = None

    def average(self, treatment_value: Any, outcome: str | None = None) -> float:
        """Adjusted average for one treatment group."""
        chosen = outcome if outcome is not None else self.outcomes[0]
        return self.averages[treatment_value][chosen]

    def difference(self, outcome: str | None = None) -> float:
        """``avg(t1) - avg(t0)`` for binary treatments (Eq. 1 / Eq. 7)."""
        if len(self.treatment_values) != 2:
            raise ValueError(
                "difference is only defined for binary treatments; "
                f"observed values {self.treatment_values}"
            )
        t0, t1 = self.treatment_values
        return self.average(t1, outcome) - self.average(t0, outcome)

    def __repr__(self) -> str:
        rendered = {
            value: {name: round(avg, 4) for name, avg in per_outcome.items()}
            for value, per_outcome in self.averages.items()
        }
        return (
            f"AdjustedAnswer({self.kind}, {rendered}, "
            f"matched={self.matched_fraction:.2%})"
        )


class NoOverlapError(Exception):
    """Raised when exact matching prunes every block.

    No block contains all treatment values, so the adjustment formula is
    undefined on this context (Assumption 2.1's overlap fails everywhere).
    """

    def __init__(self, treatment: str, covariates: tuple[str, ...] = ()) -> None:
        self.treatment = treatment
        self.covariates = tuple(covariates)
        super().__init__(
            f"no block over covariates {list(self.covariates)} contains every value "
            f"of treatment {treatment!r}; overlap fails on the whole context"
        )


def total_effect(
    context_table: Table,
    treatment: str,
    outcomes: Sequence[str],
    covariates: Sequence[str],
) -> AdjustedAnswer:
    """Adjusted averages per treatment value (Listing 2 / Eq. 2).

    With no covariates this degrades gracefully to the plain group-by
    averages (a single all-containing block).
    """
    outcome_names = tuple(outcomes)
    z = tuple(covariates)
    values = _treatment_values(context_table, treatment)
    numeric = {name: context_table.numeric(name) for name in outcome_names}
    t_codes = context_table.codes(treatment)
    value_code = {value: context_table.domain(treatment).index(value) for value in values}

    blocks = context_table.group_indices(z)
    matched: list[tuple[np.ndarray, dict[Any, np.ndarray]]] = []
    for _, indices in blocks:
        block_t = t_codes[indices]
        per_value = {
            value: indices[block_t == value_code[value]] for value in values
        }
        if all(len(rows) > 0 for rows in per_value.values()):
            matched.append((indices, per_value))
    if not matched:
        raise NoOverlapError(treatment=treatment, covariates=z)

    total_rows = sum(len(indices) for indices, _ in matched)
    averages: dict[Any, dict[str, float]] = {
        value: {name: 0.0 for name in outcome_names} for value in values
    }
    for indices, per_value in matched:
        weight = len(indices) / total_rows
        for value in values:
            rows = per_value[value]
            for name in outcome_names:
                averages[value][name] += weight * float(np.mean(numeric[name][rows]))

    return AdjustedAnswer(
        treatment=treatment,
        treatment_values=tuple(values),
        outcomes=outcome_names,
        averages=averages,
        n_blocks=len(blocks),
        n_matched_blocks=len(matched),
        matched_fraction=total_rows / context_table.n_rows,
        kind="total",
    )


def direct_effect(
    context_table: Table,
    treatment: str,
    outcomes: Sequence[str],
    covariates: Sequence[str],
    mediators: Sequence[str],
    reference: Any = None,
) -> AdjustedAnswer:
    """Natural-direct-effect averages via the mediator formula (Eq. 3).

    For each treatment value ``t`` this reports::

        E[Y(t, M(t_ref))] = sum_{z,m} w(z, m) * E[Y | T = t, Z = z, M = m]
        w(z, m) = Pr(z) * Pr(m | T = t_ref, z)          (re-normalized)

    so the difference between two treatment values is the NDE.  ``t_ref``
    defaults to the largest treatment value (``t1`` in the paper's
    ``{t0, t1}`` convention).  The outcome expectation conditions on the
    covariates *and* the mediators jointly (Pearl's mediation formula
    [38]); the paper's Eq. 3 drops ``z`` from the expectation, which is
    equivalent when ``M ⊇ PA_Y - {T}`` renders ``Y`` independent of ``Z``
    given ``(T, M)`` -- conditioning on both is correct in either case and
    robust when the discovered ``M`` is incomplete.

    Exact matching applies twice: ``(z, m)`` cells must contain every
    treatment value, and ``z`` strata must contain the reference
    treatment; weights are re-normalized over the surviving cells.

    With no mediators the result equals the plain group averages: all of
    the effect is direct.
    """
    outcome_names = tuple(outcomes)
    z = tuple(covariates)
    m = tuple(mediators)
    overlap = set(z) & set(m)
    if overlap:
        raise ValueError(f"covariates and mediators overlap: {sorted(overlap)}")
    values = _treatment_values(context_table, treatment)
    if reference is None:
        reference = values[-1]
    elif reference not in values:
        raise ValueError(
            f"reference {reference!r} is not an observed treatment value {values}"
        )
    if not m:
        return _replace_kind(
            total_effect(context_table, treatment, outcome_names, ()),
            kind="direct",
            reference=reference,
        )

    numeric = {name: context_table.numeric(name) for name in outcome_names}
    t_codes = context_table.codes(treatment)
    value_code = {value: context_table.domain(treatment).index(value) for value in values}
    reference_code = value_code[reference]
    n = context_table.n_rows
    zm = z + m

    # One pass over the (z, m) cells: collect matched cells' conditional
    # means, the reference counts per cell, and the reference totals per
    # z stratum (the denominator of Pr(m | t_ref, z)).
    cell_means: dict[tuple[Any, ...], dict[Any, dict[str, float]]] = {}
    cell_reference_counts: dict[tuple[Any, ...], int] = {}
    cell_sizes: dict[tuple[Any, ...], int] = {}
    stratum_reference_totals: dict[tuple[Any, ...], int] = {}
    for zm_value, indices in context_table.group_indices(zm):
        z_value = zm_value[: len(z)]
        cell_t = t_codes[indices]
        reference_rows = int(np.count_nonzero(cell_t == reference_code))
        stratum_reference_totals[z_value] = (
            stratum_reference_totals.get(z_value, 0) + reference_rows
        )
        per_value = {value: indices[cell_t == value_code[value]] for value in values}
        if not all(len(rows) > 0 for rows in per_value.values()):
            continue
        cell_means[zm_value] = {
            value: {
                name: float(np.mean(numeric[name][per_value[value]]))
                for name in outcome_names
            }
            for value in values
        }
        cell_reference_counts[zm_value] = reference_rows
        cell_sizes[zm_value] = len(indices)
    if not cell_means:
        raise NoOverlapError(treatment=treatment, covariates=zm)

    # w(z, m) = Pr(z) * Pr(m | t_ref, z) over matched cells, re-normalized.
    z_totals = context_table.value_counts(z) if z else {(): n}
    weights: dict[tuple[Any, ...], float] = {}
    for zm_value in cell_means:
        z_value = zm_value[: len(z)]
        reference_total = stratum_reference_totals.get(z_value, 0)
        if reference_total == 0:
            continue
        pr_z = z_totals[z_value] / n
        weights[zm_value] = pr_z * cell_reference_counts[zm_value] / reference_total
    mass = sum(weights.values())
    if mass <= 0:
        raise NoOverlapError(treatment=treatment, covariates=zm)

    averages: dict[Any, dict[str, float]] = {
        value: {name: 0.0 for name in outcome_names} for value in values
    }
    for zm_value, weight in weights.items():
        share = weight / mass
        for value in values:
            for name in outcome_names:
                averages[value][name] += share * cell_means[zm_value][value][name]

    matched_rows = sum(cell_sizes[key] for key in weights)
    return AdjustedAnswer(
        treatment=treatment,
        treatment_values=tuple(values),
        outcomes=outcome_names,
        averages=averages,
        n_blocks=context_table.n_groups(zm),
        n_matched_blocks=len(weights),
        matched_fraction=matched_rows / n,
        kind="direct",
        reference=reference,
    )


# ----------------------------------------------------------------------


def _treatment_values(table: Table, treatment: str) -> list[Any]:
    values = sorted((value for (value,) in table.value_counts([treatment])), key=repr)
    if len(values) < 2:
        raise ValueError(
            f"treatment {treatment!r} has {len(values)} observed value(s); "
            "at least two are needed to compare effects"
        )
    return values


def _replace_kind(answer: AdjustedAnswer, kind: str, reference: Any) -> AdjustedAnswer:
    return AdjustedAnswer(
        treatment=answer.treatment,
        treatment_values=answer.treatment_values,
        outcomes=answer.outcomes,
        averages=answer.averages,
        n_blocks=answer.n_blocks,
        n_matched_blocks=answer.n_matched_blocks,
        matched_fraction=answer.matched_fraction,
        kind=kind,
        reference=reference,
    )
