"""The CD algorithm: automatic covariate discovery (paper Sec. 4, Alg. 1).

Given a treatment ``T``, CD computes the parents ``PA_T`` in the (unknown)
causal DAG directly from data, without learning the whole DAG:

* **Phase I** -- for each ``Z`` in the Markov boundary ``MB(T)``, search
  for a witness ``W ∈ MB(T)`` and conditioning set ``S ⊆ MB(Z) - {T}``
  such that ``Z ⊥ W | S`` but ``Z ⊥̸ W | S ∪ {T}``: the treatment acting as
  a *collider* between ``Z`` and ``W`` is the signature that both are
  parents of ``T`` (or a parent plus a spouse -- Prop. 4.1(a)).
* **Phase II** -- discard collected candidates that some subset of
  ``MB(T)`` separates from ``T`` (they were spouses, not parents --
  Prop. 4.1(b)).

The identification assumption is that ``T`` has at least two non-adjacent
parents.  When Phase I+II produce nothing, HypDB falls back to
``Z = MB(T) - {Y}`` (the single-parent case discussed in Sec. 4).

Before any boundary is computed, logical dependencies are dropped with
:class:`~repro.core.fd.LogicalDependencyFilter`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.causal.growshrink import grow_shrink_markov_blanket
from repro.core.fd import DependencyReport, LogicalDependencyFilter
from repro.engine import (
    ExecutionEngine,
    SerialEngine,
    resolve_engine,
    resolve_table,
    spawn_seeds,
)
from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CITest
from repro.utils.subsets import bounded_subsets


@dataclass
class DiscoveryResult:
    """Everything the CD algorithm learned about one treatment."""

    treatment: str
    covariates: tuple[str, ...]
    markov_boundary: tuple[str, ...]
    used_fallback: bool
    dependency_report: DependencyReport
    boundaries: dict[str, tuple[str, ...]] = field(default_factory=dict)
    n_tests: int = 0

    def __repr__(self) -> str:
        source = "fallback MB(T)-{Y}" if self.used_fallback else "Alg. 1"
        return (
            f"DiscoveryResult(treatment={self.treatment!r}, "
            f"covariates={list(self.covariates)}, via {source})"
        )


class CovariateDiscoverer:
    """Runs the CD algorithm (Alg. 1) over a table.

    Parameters
    ----------
    test:
        Conditional-independence test (chi2 / MIT / HyMIT / oracle).
    alpha:
        Significance level (0.01 in all of the paper's experiments).
    max_cond_size:
        Cap on the conditioning-set size enumerated in Phase I/II.  The
        worst case is exponential in the boundary size; the paper's
        boundaries stay small (<= 8), so a small cap retains completeness
        in practice while bounding the cost.
    blanket_algorithm:
        Markov-boundary subroutine (Grow-Shrink by default, IAMB also
        provided).
    dependency_filter:
        The logical-dependency pre-filter; pass ``None`` to disable (e.g.
        on synthetic data with no FDs, saving the subsampling cost).
    max_blanket:
        Optional cap forwarded to the boundary algorithm.
    collider_alpha:
        Significance level for the *opened-dependence* half of the Phase I
        collider test.  Phase I enumerates many (S, W) combinations, so at
        ``alpha`` a borderline false rejection will eventually appear and a
        mediator gets collected; a true collider signature is dramatic
        (p-values tens of orders of magnitude below ``alpha``).  Defaults
        to ``alpha / 10`` as a cheap multiple-testing guard.
    symmetry_correction:
        Keep ``Z`` in ``MB(T)`` only when ``T`` is also in ``MB(Z)``.
        Boundaries of a faithful distribution are symmetric; enforcing this
        on data removes one-sided false boundary members.
    engine:
        Execution engine (or a job count) for the independent units of
        Alg. 1: the per-member boundary computations, the Phase I collider
        searches, and the Phase II separability checks.  Each unit runs on
        a re-seeded clone of ``test`` with a pre-spawned seed, so the
        discovered covariates are identical for any engine and worker
        count.
    """

    def __init__(
        self,
        test: CITest,
        alpha: float = DEFAULT_ALPHA,
        max_cond_size: int | None = 3,
        blanket_algorithm: Callable = grow_shrink_markov_blanket,
        dependency_filter: LogicalDependencyFilter | None = None,
        max_blanket: int | None = None,
        collider_alpha: float | None = None,
        symmetry_correction: bool = True,
        engine: ExecutionEngine | int | None = None,
    ) -> None:
        self.test = test
        self.alpha = alpha
        self.max_cond_size = max_cond_size
        self._blanket_algorithm = blanket_algorithm
        self._dependency_filter = dependency_filter
        self.max_blanket = max_blanket
        self.collider_alpha = collider_alpha if collider_alpha is not None else alpha / 10.0
        self.symmetry_correction = symmetry_correction
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------

    def discover(
        self,
        table: Table | None,
        treatment: str,
        outcome: str | None = None,
        candidates: Sequence[str] | None = None,
        fallback_exclude: Sequence[str] = (),
    ) -> DiscoveryResult:
        """Run CD for ``treatment`` and return the covariates ``Z``.

        ``outcome`` is only used by the single-parent fallback (it must be
        excluded from ``MB(T)`` when the boundary itself is returned).
        ``candidates`` restricts the attribute universe; by default every
        other column of the table is considered.

        ``fallback_exclude`` lists attributes that must not enter the
        fallback set ``MB(T) - {Y}`` -- HypDB passes the discovered outcome
        parents here, because a boundary member that is also a parent of
        the outcome is plausibly a *mediator*, and conditioning the total
        effect on a mediator is the worse error.  When everything is
        excluded the fallback is the empty set: the treatment is treated
        as exogenous (the Staples / Berkeley regime in Sec. 7.3).
        """
        calls_before = self.test.calls
        if candidates is None:
            if table is None:
                raise ValueError("candidates are required when no table is given")
            candidates = [name for name in table.columns if name != treatment]

        if self._dependency_filter is not None and table is not None:
            dependency_report = self._dependency_filter.filter(table, treatment, candidates)
        else:
            dependency_report = DependencyReport(
                kept=tuple(name for name in candidates if name != treatment)
            )
        universe = list(dependency_report.kept)

        mb_t = sorted(self._blanket(table, treatment, universe))
        boundaries: dict[str, tuple[str, ...]] = {}

        # Publish the table on the dataset plane once for the whole
        # discovery: every fan-out below ships a cheap handle instead of
        # re-pickling the code arrays per chunk.
        handle = self.engine.publish(table)
        try:
            extended_universe = list(dict.fromkeys(list(universe) + [treatment]))
            boundary_tasks = [
                (handle, z, extended_universe, self._blanket_algorithm,
                 self.alpha, self.max_blanket, clone)
                for z, clone in zip(mb_t, self._spawn_tests(len(mb_t)))
            ]
            for z, mb_z, counters, caches in self.engine.map(_boundary_task, boundary_tasks):
                boundaries[z] = tuple(sorted(mb_z))
                self.test.absorb_counters(counters)
                self._absorb_caches(table, caches)
            if self.symmetry_correction:
                mb_t = [z for z in mb_t if treatment in boundaries[z]]
            boundaries[treatment] = tuple(mb_t)

            collected = self._phase_one(table, handle, treatment, mb_t, boundaries)
            parents = self._phase_two(table, handle, treatment, mb_t, collected)
        finally:
            self.engine.release(handle)

        used_fallback = False
        if not parents:
            # Single-parent (or all-adjacent-parents) regime: Sec. 4 falls
            # back to the boundary minus the outcome and minus anything the
            # caller flagged as a likely mediator.
            used_fallback = True
            excluded = set(fallback_exclude) | {outcome}
            parents = {name for name in mb_t if name not in excluded}

        return DiscoveryResult(
            treatment=treatment,
            covariates=tuple(sorted(parents)),
            markov_boundary=tuple(mb_t),
            used_fallback=used_fallback,
            dependency_report=dependency_report,
            boundaries={node: tuple(sorted(mb)) for node, mb in boundaries.items()},
            n_tests=self.test.calls - calls_before,
        )

    # ------------------------------------------------------------------

    def _blanket(
        self, table: Table | None, target: str, universe: Sequence[str]
    ) -> set[str]:
        return self._blanket_algorithm(
            table,
            target,
            self.test,
            candidates=[name for name in universe if name != target],
            alpha=self.alpha,
            max_blanket=self.max_blanket,
        )

    def _spawn_tests(self, n: int) -> list[CITest]:
        """``n`` re-seeded worker clones of the test for one fan-out.

        Clones run a serial engine internally so that engine tasks never
        nest process pools; the parent keeps its own engine for work issued
        outside a fan-out.
        """
        seeds = spawn_seeds(self.test.draw_entropy(), n)
        return [self.test.spawn_worker(seed, engine=SerialEngine()) for seed in seeds]

    @staticmethod
    def _absorb_caches(table: Table | None, caches) -> None:
        """Merge a task's entropy-cache snapshot into the parent table.

        Ordered (tuple-keyed) entries only: those are bit-exact for their
        packed order no matter which process computed them, so importing
        them cannot perturb any later p-value -- it only lets the parent's
        own tests (and the next fan-out's clones) skip the scans a worker
        already paid for.  Set-keyed entries stay out: their value depends
        on which column order was computed first, and importing a worker's
        choice could change the parent's.
        """
        if table is not None and caches:
            table.merge_entropy_caches(caches, ordered_only=True)

    def _phase_one(
        self,
        table: Table | None,
        handle,
        treatment: str,
        mb_t: list[str],
        boundaries: dict[str, tuple[str, ...]],
    ) -> set[str]:
        """Collect candidates exhibiting the collider signature (Alg. 1 l.2-7).

        Every boundary member's witness search is an independent engine
        task; the collected set is the union of the per-member findings.

        Scheduling note: the earlier serial implementation skipped members
        already collected as witnesses, an order-dependent shortcut that a
        fan-out cannot reproduce.  Searching every member instead is
        engine-invariant and can only *add* collider evidence (each extra
        pair still carries a genuine signature, and Phase II still prunes
        spouses), at the cost of a few more tests per discovery.
        """
        tasks = []
        for z, clone in zip(mb_t, self._spawn_tests(len(mb_t))):
            base = [name for name in boundaries[z] if name != treatment]
            witnesses = [w for w in mb_t if w != z]
            tasks.append(
                (handle, treatment, z, base, witnesses,
                 self.max_cond_size, self.alpha, self.collider_alpha, clone)
            )
        collected: set[str] = set()
        for pair, counters, caches in self.engine.map(_phase_one_task, tasks):
            self.test.absorb_counters(counters)
            self._absorb_caches(table, caches)
            if pair is not None:
                collected.update(pair)
        return collected

    def _phase_two(
        self,
        table: Table | None,
        handle,
        treatment: str,
        mb_t: list[str],
        collected: set[str],
    ) -> set[str]:
        """Discard candidates separable from T (Alg. 1 l.9-11)."""
        candidates = sorted(collected)
        tasks = [
            (handle, treatment, candidate,
             [name for name in mb_t if name != candidate],
             self.max_cond_size, self.alpha, clone)
            for candidate, clone in zip(candidates, self._spawn_tests(len(candidates)))
        ]
        parents = set(collected)
        for candidate, separable, counters, caches in self.engine.map(
            _phase_two_task, tasks
        ):
            self.test.absorb_counters(counters)
            self._absorb_caches(table, caches)
            if separable:
                parents.discard(candidate)
        return parents


# ----------------------------------------------------------------------
# Engine task functions (module-level so they pickle)
# ----------------------------------------------------------------------


def _boundary_task(task):
    """Compute the Markov boundary of one node with a cloned test.

    Besides the boundary and the clone's counters, the task exports the
    entropy caches its table accumulated: the parent merges the ordered
    (bit-exact) entries so work a worker already scanned for is never
    re-scanned by the parent or by later fan-outs.
    """
    handle, target, universe, blanket_algorithm, alpha, max_blanket, test = task
    table = resolve_table(handle)
    boundary = blanket_algorithm(
        table,
        target,
        test,
        candidates=[name for name in universe if name != target],
        alpha=alpha,
        max_blanket=max_blanket,
    )
    return target, boundary, test.counters(), _export_caches(table)


def _phase_one_task(task):
    """Search S ⊆ MB(Z) - {T} and W with (Z ⊥ W | S) ∧ (Z ⊥̸ W | S ∪ {T})."""
    handle, treatment, z, base, witnesses, max_cond_size, alpha, collider_alpha, test = task
    table = resolve_table(handle)
    for subset in bounded_subsets(base, max_cond_size):
        for w in witnesses:
            if w in subset:
                continue
            plain = test.test(table, z, w, subset)
            if not plain.independent(alpha):
                continue
            opened = test.test(table, z, w, tuple(subset) + (treatment,))
            # Accept at collider_alpha, or -- for Monte-Carlo tests whose
            # p-resolution is coarser than collider_alpha -- at the
            # method's floor (the most significant result it can report).
            if opened.dependent(collider_alpha) or (
                opened.p_floor > collider_alpha and opened.at_floor()
            ):
                return (z, w), test.counters(), _export_caches(table)
    return None, test.counters(), _export_caches(table)


def _phase_two_task(task):
    """Decide whether some subset of MB(T) separates one candidate from T."""
    handle, treatment, candidate, base, max_cond_size, alpha, test = task
    table = resolve_table(handle)
    for subset in bounded_subsets(base, max_cond_size):
        result = test.test(table, treatment, candidate, subset)
        if result.independent(alpha):
            return candidate, True, test.counters(), _export_caches(table)
    return candidate, False, test.counters(), _export_caches(table)


def _export_caches(table):
    """A task table's entropy-cache snapshot ({} for oracle tests' None)."""
    return table.export_entropy_caches() if table is not None else {}
