"""The HypDB facade: end-to-end detect -> explain -> resolve.

Typical use::

    from repro import HypDB
    from repro.datasets import flight_data

    table = flight_data(seed=7)
    db = HypDB(table, seed=7)
    report = db.analyze(
        "SELECT Carrier, avg(Delayed) FROM FlightData "
        "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
        "GROUP BY Carrier"
    )
    print(report.format())

``analyze`` performs, per query context Γ (paper Secs. 3-4):

1. **Covariate / mediator discovery** -- the CD algorithm on the
   WHERE-filtered population (logical dependencies dropped first), giving
   ``Z = PA_T`` and ``M = PA_Y - {T} - Z``.
2. **Detection** -- the balance tests ``T ⊥ Z | Γ`` and ``T ⊥ Z∪M | Γ``.
3. **Explanation** -- responsibilities over ``Z ∪ M`` and top-k
   fine-grained triples for the leading attributes.
4. **Resolution** -- the rewritten-query answers: adjusted total effect
   (Eq. 2), natural direct effect (Eq. 3), and significance tests for the
   naive / total / direct differences.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.detector import BalanceResult, detect_bias, with_joint_column
from repro.core.discovery import CovariateDiscoverer, DiscoveryResult
from repro.core.explain import (
    coarse_grained_explanations,
    fine_grained_explanations,
)
from repro.core.fd import LogicalDependencyFilter
from repro.core.query import GroupByQuery, QueryContext
from repro.core.report import BiasReport, ContextReport, EffectEstimate, Timings
from repro.core.rewrite import NoOverlapError, direct_effect, total_effect
from repro.engine import (
    ExecutionEngine,
    SerialEngine,
    resolve_engine,
    resolve_table,
    spawn_seeds,
)
from repro.relation.table import Table
from repro.stats.base import DEFAULT_ALPHA, CIResult, CITest
from repro.stats.hybrid import HybridTest


class HypDB:
    """Detect, explain, and resolve bias in group-by queries over a table.

    Parameters
    ----------
    table:
        The relation to analyze.
    test:
        Conditional-independence test; defaults to HyMIT (the paper's
        recommended hybrid).
    alpha:
        Significance level for every test (paper: 0.01).
    max_cond_size:
        Conditioning-set cap forwarded to the CD algorithm.
    dependency_filter:
        ``"auto"`` (default) drops approximate FDs and key-like attributes
        before discovery; ``None`` disables the filter; or pass a
        pre-configured :class:`LogicalDependencyFilter`.
    estimator:
        Entropy estimator for explanations (``miller_madow`` by default).
    seed:
        Seed for all stochastic components (tests, key detection).
    engine:
        Execution engine (or a job count) scheduling the independent units
        of the pipeline: Monte-Carlo replicates inside the default test,
        discovery subtasks, and per-context detection + explanation.
        Results are bit-identical for any engine and worker count (the
        seed-spawning discipline of :mod:`repro.engine.seeds`).
    filter_source:
        Optional factory ``predicate -> Table`` for WHERE-filtered views.
        The service passes the registry's fingerprint-memoizing factory so
        a view the registry has hashed before republishes on the dataset
        plane in O(1); the default is a plain ``table.where(predicate)``.
        The factory must return a view of *this* table (same rows the
        predicate selects) -- it only changes how the view is produced.
    """

    def __init__(
        self,
        table: Table,
        test: CITest | None = None,
        alpha: float = DEFAULT_ALPHA,
        max_cond_size: int | None = 3,
        dependency_filter: LogicalDependencyFilter | str | None = "auto",
        estimator: str = "miller_madow",
        seed: int | np.random.Generator | None = None,
        engine: ExecutionEngine | int | None = None,
        filter_source=None,
    ) -> None:
        self.table = table
        self.alpha = alpha
        self.estimator = estimator
        self.engine = resolve_engine(engine)
        self._filter_source = filter_source
        # m = 1000 permutations gives the Monte-Carlo branch a p-value
        # resolution of ~0.001 -- fine enough for the CD algorithm's strict
        # collider threshold (alpha / 10).  Pass an explicit test to change.
        self.test = (
            test
            if test is not None
            else HybridTest(n_permutations=1000, seed=seed, engine=self.engine)
        )
        if dependency_filter == "auto":
            dependency_filter = LogicalDependencyFilter(seed=seed)
        elif isinstance(dependency_filter, str):
            raise ValueError(
                f"dependency_filter must be 'auto', None, or a filter instance; "
                f"got {dependency_filter!r}"
            )
        # IAMB boundaries: the ranked grow phase keeps conditioning sets
        # small, which preserves test power during the shrink phase on
        # real data (Grow-Shrink admits spurious members early and then
        # needs high-dimensional tests to remove them).
        from repro.causal.iamb import iamb_markov_blanket

        self.discoverer = CovariateDiscoverer(
            self.test,
            alpha=alpha,
            max_cond_size=max_cond_size,
            dependency_filter=dependency_filter,
            blanket_algorithm=iamb_markov_blanket,
            engine=self.engine,
        )
        # WHERE-filtered views are memoized so that covariate discovery,
        # mediator discovery, detection, and resolution all run against the
        # same Table instance and therefore share one entropy cache.
        self._filter_memo: dict[Any, Table] = {}

    def _filtered(self, predicate) -> Table:
        if predicate not in self._filter_memo:
            if self._filter_source is not None:
                view = self._filter_source(predicate)
            else:
                view = self.table.where(predicate)
            self._filter_memo[predicate] = view
        return self._filter_memo[predicate]

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def discover_covariates(
        self,
        query: GroupByQuery,
        candidates: Sequence[str] | None = None,
        fallback_exclude: Sequence[str] = (),
    ) -> DiscoveryResult:
        """Run CD for the query's treatment on the WHERE-filtered data.

        Grouping attributes and outcomes are excluded from the candidate
        covariates (they define the contexts / estimands themselves).
        ``fallback_exclude`` (typically the discovered outcome parents) is
        kept out of the single-parent fallback set -- see
        :meth:`CovariateDiscoverer.discover`.
        """
        filtered = self._filtered(query.where)
        excluded = set(query.groupings) | set(query.outcomes) | {query.treatment}
        universe = candidates if candidates is not None else [
            name for name in self.table.columns if name not in excluded
        ]
        outcome = query.outcomes[0] if query.outcomes else None
        return self.discoverer.discover(
            filtered,
            query.treatment,
            outcome=outcome,
            candidates=universe,
            fallback_exclude=fallback_exclude,
        )

    def discover_outcome_parents(self, query: GroupByQuery) -> tuple[str, ...]:
        """``M̂ = union_j PA_{Y_j} - {T}`` via CD on each outcome.

        These are the candidate mediators (paper Sec. 2: mediators for the
        direct effect are ``PA_Y - {T}``); ``analyze`` subtracts the final
        covariate set before using them.
        """
        filtered = self._filtered(query.where)
        excluded = set(query.groupings) | {*query.outcomes}
        parents: set[str] = set()
        for outcome in query.outcomes:
            universe = [
                name
                for name in self.table.columns
                if name not in excluded or name == query.treatment
            ]
            universe = [name for name in universe if name != outcome]
            result = self.discoverer.discover(
                filtered, outcome, outcome=None, candidates=universe
            )
            parents |= set(result.covariates)
        parents -= {query.treatment}
        return tuple(sorted(parents))

    # ------------------------------------------------------------------
    # End-to-end analysis
    # ------------------------------------------------------------------

    def analyze(
        self,
        query: GroupByQuery | str,
        covariates: Sequence[str] | None = None,
        mediators: Sequence[str] | None = None,
        top_k: int = 2,
        explain_top_attributes: int = 2,
        compute_direct: bool = True,
    ) -> BiasReport:
        """Run the full pipeline and return a :class:`BiasReport`.

        ``covariates`` / ``mediators`` may be supplied to skip discovery
        (the statistics-literature setting where they are known).
        """
        if isinstance(query, str):
            query = GroupByQuery.from_sql(query)

        # Pin the WHERE-filtered population for the whole pipeline: the
        # two discovery passes and the per-context fan-out all publish it
        # (or grouped tensors derived from it) on the dataset plane, and
        # the pin makes every publication after the first an O(1)
        # refcount hit on one shared segment instead of a re-creation.
        pinned = self.engine.pin(self._filtered(query.where))
        try:
            return self._analyze_pinned(
                query,
                covariates=covariates,
                mediators=mediators,
                top_k=top_k,
                explain_top_attributes=explain_top_attributes,
                compute_direct=compute_direct,
            )
        finally:
            self.engine.unpin(pinned)

    def _analyze_pinned(
        self,
        query: GroupByQuery,
        covariates: Sequence[str] | None,
        mediators: Sequence[str] | None,
        top_k: int,
        explain_top_attributes: int,
        compute_direct: bool,
    ) -> BiasReport:
        detection_start = time.perf_counter()
        discovery: DiscoveryResult | None = None
        outcome_parents: tuple[str, ...] = ()
        if mediators is None and (compute_direct or covariates is None):
            outcome_parents = self.discover_outcome_parents(query)
        if covariates is None:
            discovery = self.discover_covariates(
                query, fallback_exclude=outcome_parents
            )
            z = discovery.covariates
        else:
            z = tuple(covariates)
        if mediators is None:
            m = tuple(sorted(set(outcome_parents) - set(z))) if compute_direct else ()
        else:
            m = tuple(mediators)

        discovery_seconds = time.perf_counter() - detection_start

        # Detection and explanation are independent across query contexts:
        # each context becomes one engine task carrying a re-seeded clone
        # of the test (see CITest.spawn_worker).  The parent absorbs the
        # clones' call counters and worker-computed entropy caches, so the
        # fan-out is invisible except for wall-clock time.  Under a
        # parallel engine the per-phase timings are summed worker seconds
        # (CPU work), not wall clock.
        contexts = query.contexts(self.table, filtered=self._filtered(query.where))
        seeds = spawn_seeds(self.test.draw_entropy(), len(contexts))
        # Each context's table is published on the dataset plane once per
        # analyze; the task tuples carry O(1) handles, not code arrays.
        handles = [self.engine.publish(context.table) for context in contexts]
        tasks = [
            (
                handle,
                query.treatment,
                z,
                m,
                self.alpha,
                compute_direct,
                query.outcomes[0] if query.outcomes else None,
                explain_top_attributes,
                top_k,
                self.estimator,
                self.test.spawn_worker(seed, engine=SerialEngine()),
            )
            for handle, seed in zip(handles, seeds)
        ]
        balances_total: list[BalanceResult | None] = []
        balances_direct: list[BalanceResult | None] = []
        coarse_per_context = []
        fine_per_context = []
        detection_seconds = discovery_seconds
        explanation_seconds = 0.0
        try:
            outcomes = self.engine.map(_context_analysis_task, tasks)
        finally:
            for handle in handles:
                self.engine.release(handle)
        for context, outcome in zip(contexts, outcomes):
            balance_total, balance_direct, coarse, fine, det_s, exp_s, counters, caches = outcome
            balances_total.append(balance_total)
            balances_direct.append(balance_direct)
            coarse_per_context.append(coarse)
            fine_per_context.append(fine)
            detection_seconds += det_s
            explanation_seconds += exp_s
            self.test.absorb_counters(counters)
            context.table.merge_entropy_caches(caches)

        resolution_start = time.perf_counter()
        context_reports: list[ContextReport] = []
        for index, context in enumerate(contexts):
            naive = self._naive_estimate(query, context)
            total = self._total_estimate(query, context, z)
            direct = (
                self._direct_estimate(query, context, z, m) if compute_direct else None
            )
            context_reports.append(
                ContextReport(
                    values=context.values,
                    label=context.label(query.groupings),
                    n_rows=context.n_rows,
                    balance_total=balances_total[index],
                    balance_direct=balances_direct[index],
                    naive=naive,
                    total=total,
                    direct=direct,
                    coarse=coarse_per_context[index],
                    fine=fine_per_context[index],
                )
            )
        resolution_seconds = time.perf_counter() - resolution_start

        return BiasReport(
            query=query,
            covariates=z,
            mediators=m,
            covariate_discovery=discovery,
            contexts=tuple(context_reports),
            timings=Timings(
                detection=detection_seconds,
                explanation=explanation_seconds,
                resolution=resolution_seconds,
            ),
        )

    # ------------------------------------------------------------------
    # What-if queries
    # ------------------------------------------------------------------

    def what_if(
        self,
        treatment: str,
        outcome: str,
        covariates: Sequence[str] | None = None,
        where=None,
    ):
        """Answer ``E[Y | do(T = t), where]`` for every treatment value.

        ``covariates`` defaults to the CD-discovered adjustment set for the
        implied query ``SELECT T, avg(Y) ... WHERE ... GROUP BY T``, so the
        what-if inherits HypDB's confounding handling (paper Sec. 8).
        ``where`` is a :class:`~repro.relation.predicates.Predicate`
        restricting the subpopulation (``None`` means the whole table).
        """
        from repro.core.whatif import what_if
        from repro.relation.predicates import TRUE

        query = GroupByQuery(
            treatment=treatment,
            outcomes=(outcome,),
            where=where if where is not None else TRUE,
        )
        if covariates is None:
            covariates = self.discover_covariates(query).covariates
        return what_if(
            self.table, treatment, outcome, covariates, where=query.where
        )

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def _naive_estimate(self, query: GroupByQuery, context: QueryContext) -> EffectEstimate:
        """The original SQL answer: group means per treatment value."""
        table = context.table
        values = sorted(
            (value for (value,) in table.value_counts([query.treatment])), key=repr
        )
        averages: dict[Any, dict[str, float]] = {value: {} for value in values}
        for outcome in query.outcomes:
            numeric = table.numeric(outcome)
            codes = table.codes(query.treatment)
            for value in values:
                code = table.domain(query.treatment).index(value)
                mask = codes == code
                averages[value][outcome] = (
                    float(np.mean(numeric[mask])) if mask.any() else float("nan")
                )
        significance = {
            outcome: self.test.test(table, query.treatment, outcome)
            for outcome in query.outcomes
        }
        return EffectEstimate(
            kind="naive",
            treatment_values=tuple(values),
            outcomes=query.outcomes,
            averages=averages,
            significance=significance,
        )

    def _total_estimate(
        self, query: GroupByQuery, context: QueryContext, z: tuple[str, ...]
    ) -> EffectEstimate:
        try:
            answer = total_effect(context.table, query.treatment, query.outcomes, z)
        except (NoOverlapError, ValueError) as exc:
            return EffectEstimate(
                kind="total",
                treatment_values=(),
                outcomes=query.outcomes,
                error=str(exc),
            )
        significance = {
            outcome: self._conditional_significance(context.table, query.treatment, outcome, z)
            for outcome in query.outcomes
        }
        return EffectEstimate(
            kind="total",
            treatment_values=answer.treatment_values,
            outcomes=query.outcomes,
            averages=answer.averages,
            significance=significance,
            matched_fraction=answer.matched_fraction,
        )

    def _direct_estimate(
        self,
        query: GroupByQuery,
        context: QueryContext,
        z: tuple[str, ...],
        m: tuple[str, ...],
    ) -> EffectEstimate:
        try:
            answer = direct_effect(
                context.table, query.treatment, query.outcomes, z, m
            )
        except (NoOverlapError, ValueError) as exc:
            return EffectEstimate(
                kind="direct",
                treatment_values=(),
                outcomes=query.outcomes,
                error=str(exc),
            )
        significance = {
            outcome: self._conditional_significance(
                context.table, query.treatment, outcome, z + m
            )
            for outcome in query.outcomes
        }
        return EffectEstimate(
            kind="direct",
            treatment_values=answer.treatment_values,
            outcomes=query.outcomes,
            averages=answer.averages,
            significance=significance,
            matched_fraction=answer.matched_fraction,
        )

    def _conditional_significance(
        self, table: Table, treatment: str, outcome: str, conditioning: tuple[str, ...]
    ) -> CIResult:
        """Significance of the rewritten difference: ``I(Y;T|V) = 0`` (Sec. 7.1)."""
        if not conditioning:
            return self.test.test(table, treatment, outcome)
        augmented = with_joint_column(table, conditioning, "__hypdb_cond__")
        return self.test.test(augmented, treatment, outcome, ("__hypdb_cond__",))


def _context_analysis_task(task):
    """Engine task: detection + explanation for one query context Γ.

    Returns the balance verdicts, explanations, per-phase seconds, the
    clone's counter snapshot, and the entropy caches the worker built on
    its (worker-resident) copy of the context table -- merged back by the
    parent.  The context table arrives as a dataset-plane handle; a
    worker that sees the same fingerprint across tasks reuses one
    resident instance, so its entropy memos stay warm between tasks.
    """
    (
        handle,
        treatment,
        z,
        m,
        alpha,
        compute_direct,
        outcome,
        explain_top_attributes,
        top_k,
        estimator,
        test,
    ) = task
    table = resolve_table(handle)
    detection_start = time.perf_counter()
    balance_total = (
        detect_bias(table, treatment, z, test, alpha) if z else None
    )
    balance_direct = (
        detect_bias(table, treatment, z + m, test, alpha)
        if (compute_direct and (z or m))
        else None
    )
    detection_seconds = time.perf_counter() - detection_start

    explanation_start = time.perf_counter()
    coarse = tuple(
        coarse_grained_explanations(table, treatment, z + m, estimator=estimator)
    )
    fine: dict[str, tuple] = {}
    for item in coarse[:explain_top_attributes]:
        fine[item.attribute] = tuple(
            fine_grained_explanations(
                table, treatment, outcome, item.attribute, top_k=top_k
            )
        )
    explanation_seconds = time.perf_counter() - explanation_start
    return (
        balance_total,
        balance_direct,
        coarse,
        fine,
        detection_seconds,
        explanation_seconds,
        test.counters(),
        table.export_entropy_caches(),
    )
