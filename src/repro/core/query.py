"""The group-by-average query model (paper Listing 1).

A :class:`GroupByQuery` captures the causal reading of an OLAP query:

* ``treatment`` -- the grouping attribute ``T`` whose effect the analyst
  intends to compare;
* ``outcomes`` -- the averaged attributes ``Y1..Ye``;
* ``groupings`` -- the remaining GROUP BY attributes ``X``; each of their
  value combinations, conjoined with the WHERE clause ``C``, forms a
  *context* Γᵢ (Sec. 2), and HypDB analyzes every context independently;
* ``where`` -- the WHERE predicate ``C``.

Queries can be built directly or parsed from SQL text; by convention the
*first* GROUP BY attribute is the treatment unless the caller says
otherwise.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.relation.predicates import And, Eq, Predicate, TRUE
from repro.relation.table import Table
from repro.sql.parser import parse_select
from repro.utils.validation import check_disjoint


@dataclass(frozen=True)
class QueryContext:
    """One context Γᵢ = C ∧ (X = xᵢ) of a query (Sec. 2)."""

    values: tuple[Any, ...]  # the X values; () when the query has no X
    predicate: Predicate
    table: Table

    @property
    def n_rows(self) -> int:
        """Rows in the context's subpopulation."""
        return self.table.n_rows

    def label(self, groupings: Sequence[str]) -> str:
        """Human-readable name, e.g. ``"Month=3, Year=2010"``."""
        if not self.values:
            return "(all)"
        return ", ".join(
            f"{name}={value}" for name, value in zip(groupings, self.values)
        )


@dataclass(frozen=True)
class GroupByQuery:
    """A group-by-average OLAP query with its causal interpretation."""

    treatment: str
    outcomes: tuple[str, ...]
    groupings: tuple[str, ...] = field(default=())
    where: Predicate = TRUE

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ValueError("a query needs at least one avg(...) outcome")
        check_disjoint(
            treatment=[self.treatment],
            outcomes=self.outcomes,
            groupings=self.groupings,
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_sql(cls, sql: str, treatment: str | None = None) -> "GroupByQuery":
        """Parse a SQL string into a query.

        ``treatment`` defaults to the first GROUP BY attribute (the paper's
        convention in every example: ``GROUP BY Carrier``, ``GROUP BY
        Gender``, ...).
        """
        statement = parse_select(sql)
        if not statement.group_by:
            raise ValueError("the query must GROUP BY the treatment attribute")
        chosen = treatment if treatment is not None else statement.group_by[0]
        if chosen not in statement.group_by:
            raise ValueError(
                f"treatment {chosen!r} must appear in GROUP BY {statement.group_by}"
            )
        groupings = tuple(name for name in statement.group_by if name != chosen)
        return cls(
            treatment=chosen,
            outcomes=statement.outcome_columns(),
            groupings=groupings,
            where=statement.where,
        )

    # ------------------------------------------------------------------

    def group_by_columns(self) -> tuple[str, ...]:
        """The full GROUP BY list ``(T, X...)``."""
        return (self.treatment,) + self.groupings

    def analysis_columns(self) -> tuple[str, ...]:
        """Attributes named anywhere in the query."""
        where_columns = tuple(sorted(self.where.columns()))
        return self.group_by_columns() + self.outcomes + where_columns

    def contexts(self, table: Table, filtered: Table | None = None) -> list[QueryContext]:
        """Materialize every context Γᵢ against ``table``.

        Without extra groupings there is a single context defined by the
        WHERE clause.  With groupings ``X``, one context is produced per
        observed value combination of ``X`` in the filtered data.
        ``filtered`` lets callers pass an already WHERE-filtered table so
        its entropy cache is shared across pipeline phases.
        """
        if filtered is None:
            filtered = table.where(self.where)
        if not self.groupings:
            return [QueryContext(values=(), predicate=self.where, table=filtered)]
        contexts: list[QueryContext] = []
        for values, indices in filtered.group_indices(self.groupings):
            condition = And(
                [self.where]
                + [Eq(name, value) for name, value in zip(self.groupings, values)]
            )
            contexts.append(
                QueryContext(
                    values=values,
                    predicate=condition,
                    table=filtered.take(indices),
                )
            )
        contexts.sort(key=lambda context: repr(context.values))
        return contexts

    def treatment_values(self, table: Table) -> list[Any]:
        """The treatment's observed values after the WHERE clause (sorted)."""
        filtered = table.where(self.where)
        return sorted(
            (value for (value,) in filtered.value_counts([self.treatment])), key=repr
        )

    def __repr__(self) -> str:
        aggregates = ", ".join(f"avg({name})" for name in self.outcomes)
        parts = [f"SELECT {', '.join(self.group_by_columns())}, {aggregates}"]
        if self.where is not TRUE:
            parts.append(f"WHERE {self.where!r}")
        parts.append(f"GROUP BY {', '.join(self.group_by_columns())}")
        return " ".join(parts)
