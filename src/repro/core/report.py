"""Report objects produced by the HypDB pipeline.

A :class:`BiasReport` bundles, per query context: the naive (SQL) answers,
the balance verdicts, coarse- and fine-grained explanations, and the
rewritten-query answers for total and direct effects with their
significance -- i.e. everything shown in the paper's Figs. 1, 3 and 4.
``format()`` renders the report in the same layout those figures use.

Reports are also JSON-serializable: ``to_dict()`` produces a plain dict of
JSON types and ``json_bytes()`` its canonical encoding (sorted keys, no
whitespace, NaN mapped to null).  The canonical form is *deterministic* --
two reports computed from the same table, query, and seed serialize to the
same bytes regardless of execution engine or worker count -- which is what
lets the analysis service cache and replay results verbatim.  Wall-clock
``timings`` are therefore excluded from the canonical form; serialize them
separately via ``Timings.to_dict()`` when needed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.detector import BalanceResult
from repro.core.discovery import DiscoveryResult
from repro.core.explain import CoarseExplanation, FineExplanation
from repro.core.query import GroupByQuery
from repro.stats.base import CIResult


def json_value(value: Any) -> Any:
    """Map one cell value onto a JSON type.

    Domain values are strings or ints in practice; NaN / infinities (which
    JSON proper cannot carry) become ``None``, and anything exotic falls
    back to its ``repr`` so serialization never fails.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def canonical_json_bytes(payload: Any) -> bytes:
    """The canonical JSON encoding used across the service layer.

    Sorted keys and fixed separators make the encoding a pure function of
    the payload's values, so equal results are equal bytes -- the property
    the result cache and the byte-identity tests rely on.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def ci_result_to_dict(result: CIResult) -> dict[str, Any]:
    """Serialize one conditional-independence test outcome."""
    return {
        "statistic": json_value(result.statistic),
        "p_value": json_value(result.p_value),
        "method": result.method,
        "df": result.df,
        "p_interval": list(result.p_interval) if result.p_interval is not None else None,
        "p_floor": json_value(result.p_floor),
    }


def balance_to_dict(balance: BalanceResult | None) -> dict[str, Any] | None:
    """Serialize one balance verdict (``None`` stays ``None``)."""
    if balance is None:
        return None
    return {
        "variables": list(balance.variables),
        "biased": balance.biased,
        "alpha": balance.alpha,
        "result": ci_result_to_dict(balance.result),
    }


def discovery_to_dict(discovery: DiscoveryResult | None) -> dict[str, Any] | None:
    """Serialize a CD run: the sets it found and why attributes dropped."""
    if discovery is None:
        return None
    return {
        "treatment": discovery.treatment,
        "covariates": list(discovery.covariates),
        "markov_boundary": list(discovery.markov_boundary),
        "used_fallback": discovery.used_fallback,
        "n_tests": discovery.n_tests,
        "boundaries": {
            name: list(members) for name, members in sorted(discovery.boundaries.items())
        },
        "dropped": dict(sorted(discovery.dependency_report.dropped.items())),
    }


def _coarse_to_dict(item: CoarseExplanation) -> dict[str, Any]:
    return {
        "attribute": item.attribute,
        "responsibility": json_value(item.responsibility),
        "information_drop": json_value(item.information_drop),
    }


def _fine_to_dict(triple: FineExplanation) -> dict[str, Any]:
    return {
        "treatment_value": json_value(triple.treatment_value),
        "outcome_value": json_value(triple.outcome_value),
        "attribute_value": json_value(triple.attribute_value),
        "kappa_treatment": json_value(triple.kappa_treatment),
        "kappa_outcome": json_value(triple.kappa_outcome),
    }


@dataclass(frozen=True)
class EffectEstimate:
    """Per-treatment averages of one estimand, with significance.

    ``kind`` is ``"naive"`` (the original SQL answer), ``"total"`` (Eq. 2),
    or ``"direct"`` (Eq. 3).  ``significance`` holds the independence test
    whose null is "this estimand's difference is zero" (Sec. 7.1), keyed by
    outcome.  ``error`` is set (and ``averages`` empty) when the estimand
    is undefined on the context, e.g. total overlap failure.
    """

    kind: str
    treatment_values: tuple[Any, ...]
    outcomes: tuple[str, ...]
    averages: dict[Any, dict[str, float]] = field(default_factory=dict)
    significance: dict[str, CIResult] = field(default_factory=dict)
    matched_fraction: float = 1.0
    error: str | None = None

    def average(self, treatment_value: Any, outcome: str | None = None) -> float:
        """The estimated average for one treatment group."""
        if self.error is not None:
            raise ValueError(f"{self.kind} estimate unavailable: {self.error}")
        chosen = outcome if outcome is not None else self.outcomes[0]
        return self.averages[treatment_value][chosen]

    def difference(self, outcome: str | None = None) -> float:
        """``avg(t1) - avg(t0)`` for binary treatments."""
        if len(self.treatment_values) != 2:
            raise ValueError("difference requires a binary treatment")
        t0, t1 = self.treatment_values
        return self.average(t1, outcome) - self.average(t0, outcome)

    def p_value(self, outcome: str | None = None) -> float:
        """p-value of the zero-difference null for one outcome."""
        chosen = outcome if outcome is not None else self.outcomes[0]
        return self.significance[chosen].p_value

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; per-group averages keep ``treatment_values`` order."""
        return {
            "kind": self.kind,
            "treatment_values": [json_value(value) for value in self.treatment_values],
            "outcomes": list(self.outcomes),
            "averages": [
                {
                    "treatment_value": json_value(value),
                    "by_outcome": {
                        outcome: json_value(average)
                        for outcome, average in sorted(self.averages[value].items())
                    },
                }
                for value in self.treatment_values
            ],
            "significance": {
                outcome: ci_result_to_dict(result)
                for outcome, result in sorted(self.significance.items())
            },
            "matched_fraction": json_value(self.matched_fraction),
            "error": self.error,
        }


@dataclass(frozen=True)
class ContextReport:
    """Everything HypDB derived for one query context Γ."""

    values: tuple[Any, ...]
    label: str
    n_rows: int
    balance_total: BalanceResult | None
    balance_direct: BalanceResult | None
    naive: EffectEstimate
    total: EffectEstimate | None
    direct: EffectEstimate | None
    coarse: tuple[CoarseExplanation, ...] = field(default=())
    fine: dict[str, tuple[FineExplanation, ...]] = field(default_factory=dict)

    @property
    def biased(self) -> bool:
        """True when either balance test rejected.

        A query can be balanced w.r.t. the covariates (e.g. when the
        treatment is exogenous and ``Z = ()``) yet still biased for the
        *direct* effect reading because the mediators are unbalanced --
        the Berkeley admissions case.
        """
        for balance in (self.balance_total, self.balance_direct):
            if balance is not None and balance.biased:
                return True
        return False

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of everything derived for this context."""
        return {
            "values": [json_value(value) for value in self.values],
            "label": self.label,
            "n_rows": self.n_rows,
            "biased": self.biased,
            "balance_total": balance_to_dict(self.balance_total),
            "balance_direct": balance_to_dict(self.balance_direct),
            "naive": self.naive.to_dict(),
            "total": self.total.to_dict() if self.total is not None else None,
            "direct": self.direct.to_dict() if self.direct is not None else None,
            "coarse": [_coarse_to_dict(item) for item in self.coarse],
            "fine": {
                attribute: [_fine_to_dict(triple) for triple in triples]
                for attribute, triples in sorted(self.fine.items())
            },
        }


@dataclass(frozen=True)
class Timings:
    """Seconds per pipeline phase (paper Table 1 columns).

    Under a serial engine these are wall-clock seconds.  Under a parallel
    engine, detection and explanation are the *summed* per-context worker
    seconds (the CPU work done), which can exceed wall clock by up to the
    worker count; use them to compare workloads, not to measure latency.
    """

    detection: float = 0.0
    explanation: float = 0.0
    resolution: float = 0.0

    @property
    def total(self) -> float:
        return self.detection + self.explanation + self.resolution

    def to_dict(self) -> dict[str, float]:
        """JSON-ready form (not part of the canonical report payload)."""
        return {
            "detection": self.detection,
            "explanation": self.explanation,
            "resolution": self.resolution,
            "total": self.total,
        }


@dataclass(frozen=True)
class BiasReport:
    """The full output of ``HypDB.analyze`` for one query."""

    query: GroupByQuery
    covariates: tuple[str, ...]
    mediators: tuple[str, ...]
    covariate_discovery: DiscoveryResult | None
    contexts: tuple[ContextReport, ...]
    timings: Timings = field(default_factory=Timings)

    @property
    def biased(self) -> bool:
        """True when any context is biased."""
        return any(context.biased for context in self.contexts)

    def context(self, values: tuple[Any, ...] = ()) -> ContextReport:
        """Look up a context report by its grouping values."""
        for report in self.contexts:
            if report.values == values:
                return report
        raise KeyError(f"no context with values {values!r}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical, deterministic JSON-ready form of the report.

        Excludes :attr:`timings` (wall-clock, run-dependent) so that equal
        analyses serialize to equal payloads; the service layer reports
        timings in its response envelope instead.
        """
        return {
            "query": repr(self.query),
            "treatment": self.query.treatment,
            "outcomes": list(self.query.outcomes),
            "groupings": list(self.query.groupings),
            "covariates": list(self.covariates),
            "mediators": list(self.mediators),
            "biased": self.biased,
            "covariate_discovery": discovery_to_dict(self.covariate_discovery),
            "contexts": [context.to_dict() for context in self.contexts],
        }

    def json_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`to_dict` (cache-stable)."""
        return canonical_json_bytes(self.to_dict())

    # ------------------------------------------------------------------

    def format(self, precision: int = 4) -> str:
        """Render the report in the layout of the paper's result figures."""
        lines: list[str] = []
        lines.append(f"Query: {self.query!r}")
        lines.append(f"Covariates (Z): {list(self.covariates)}")
        lines.append(f"Mediators  (M): {list(self.mediators)}")
        verdict = "BIASED" if self.biased else "unbiased"
        lines.append(f"Verdict: query is {verdict}")
        for context in self.contexts:
            lines.append("")
            lines.append(f"-- Context {context.label} ({context.n_rows} rows) --")
            if context.balance_total is not None:
                lines.append(
                    f"  balance wrt Z:   I={context.balance_total.result.statistic:.4f} "
                    f"p={context.balance_total.p_value:.4g} "
                    f"-> {'BIASED' if context.balance_total.biased else 'balanced'}"
                )
            if context.balance_direct is not None:
                lines.append(
                    f"  balance wrt Z+M: I={context.balance_direct.result.statistic:.4f} "
                    f"p={context.balance_direct.p_value:.4g} "
                    f"-> {'BIASED' if context.balance_direct.biased else 'balanced'}"
                )
            lines.extend(self._format_estimates(context, precision))
            if context.coarse:
                lines.append("  coarse-grained explanations (responsibility):")
                for item in context.coarse:
                    lines.append(f"    {item.attribute:<20s} {item.responsibility:.2f}")
            for attribute, triples in context.fine.items():
                lines.append(f"  fine-grained explanations for {attribute}:")
                for rank, triple in enumerate(triples, start=1):
                    lines.append(
                        f"    {rank}. T={triple.treatment_value} "
                        f"Y={triple.outcome_value} {attribute}={triple.attribute_value}"
                    )
        return "\n".join(lines)

    def _format_estimates(self, context: ContextReport, precision: int) -> list[str]:
        lines: list[str] = []
        estimates = [context.naive, context.total, context.direct]
        labels = {"naive": "SQL answer", "total": "rewritten (total)", "direct": "rewritten (direct)"}
        for estimate in estimates:
            if estimate is None:
                continue
            title = labels.get(estimate.kind, estimate.kind)
            if estimate.error is not None:
                lines.append(f"  {title}: unavailable ({estimate.error})")
                continue
            for outcome in estimate.outcomes:
                per_group = ", ".join(
                    f"{value}: {estimate.averages[value][outcome]:.{precision}f}"
                    for value in estimate.treatment_values
                )
                suffix = ""
                if len(estimate.treatment_values) == 2:
                    suffix = f"  diff={estimate.difference(outcome):+.{precision}f}"
                if outcome in estimate.significance:
                    suffix += f"  p={estimate.significance[outcome].p_value:.4g}"
                lines.append(f"  {title} avg({outcome}): {per_group}{suffix}")
        return lines
