"""Report objects produced by the HypDB pipeline.

A :class:`BiasReport` bundles, per query context: the naive (SQL) answers,
the balance verdicts, coarse- and fine-grained explanations, and the
rewritten-query answers for total and direct effects with their
significance -- i.e. everything shown in the paper's Figs. 1, 3 and 4.
``format()`` renders the report in the same layout those figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.detector import BalanceResult
from repro.core.discovery import DiscoveryResult
from repro.core.explain import CoarseExplanation, FineExplanation
from repro.core.query import GroupByQuery
from repro.stats.base import CIResult


@dataclass(frozen=True)
class EffectEstimate:
    """Per-treatment averages of one estimand, with significance.

    ``kind`` is ``"naive"`` (the original SQL answer), ``"total"`` (Eq. 2),
    or ``"direct"`` (Eq. 3).  ``significance`` holds the independence test
    whose null is "this estimand's difference is zero" (Sec. 7.1), keyed by
    outcome.  ``error`` is set (and ``averages`` empty) when the estimand
    is undefined on the context, e.g. total overlap failure.
    """

    kind: str
    treatment_values: tuple[Any, ...]
    outcomes: tuple[str, ...]
    averages: dict[Any, dict[str, float]] = field(default_factory=dict)
    significance: dict[str, CIResult] = field(default_factory=dict)
    matched_fraction: float = 1.0
    error: str | None = None

    def average(self, treatment_value: Any, outcome: str | None = None) -> float:
        """The estimated average for one treatment group."""
        if self.error is not None:
            raise ValueError(f"{self.kind} estimate unavailable: {self.error}")
        chosen = outcome if outcome is not None else self.outcomes[0]
        return self.averages[treatment_value][chosen]

    def difference(self, outcome: str | None = None) -> float:
        """``avg(t1) - avg(t0)`` for binary treatments."""
        if len(self.treatment_values) != 2:
            raise ValueError("difference requires a binary treatment")
        t0, t1 = self.treatment_values
        return self.average(t1, outcome) - self.average(t0, outcome)

    def p_value(self, outcome: str | None = None) -> float:
        """p-value of the zero-difference null for one outcome."""
        chosen = outcome if outcome is not None else self.outcomes[0]
        return self.significance[chosen].p_value


@dataclass(frozen=True)
class ContextReport:
    """Everything HypDB derived for one query context Γ."""

    values: tuple[Any, ...]
    label: str
    n_rows: int
    balance_total: BalanceResult | None
    balance_direct: BalanceResult | None
    naive: EffectEstimate
    total: EffectEstimate | None
    direct: EffectEstimate | None
    coarse: tuple[CoarseExplanation, ...] = field(default=())
    fine: dict[str, tuple[FineExplanation, ...]] = field(default_factory=dict)

    @property
    def biased(self) -> bool:
        """True when either balance test rejected.

        A query can be balanced w.r.t. the covariates (e.g. when the
        treatment is exogenous and ``Z = ()``) yet still biased for the
        *direct* effect reading because the mediators are unbalanced --
        the Berkeley admissions case.
        """
        for balance in (self.balance_total, self.balance_direct):
            if balance is not None and balance.biased:
                return True
        return False


@dataclass(frozen=True)
class Timings:
    """Seconds per pipeline phase (paper Table 1 columns).

    Under a serial engine these are wall-clock seconds.  Under a parallel
    engine, detection and explanation are the *summed* per-context worker
    seconds (the CPU work done), which can exceed wall clock by up to the
    worker count; use them to compare workloads, not to measure latency.
    """

    detection: float = 0.0
    explanation: float = 0.0
    resolution: float = 0.0

    @property
    def total(self) -> float:
        return self.detection + self.explanation + self.resolution


@dataclass(frozen=True)
class BiasReport:
    """The full output of ``HypDB.analyze`` for one query."""

    query: GroupByQuery
    covariates: tuple[str, ...]
    mediators: tuple[str, ...]
    covariate_discovery: DiscoveryResult | None
    contexts: tuple[ContextReport, ...]
    timings: Timings = field(default_factory=Timings)

    @property
    def biased(self) -> bool:
        """True when any context is biased."""
        return any(context.biased for context in self.contexts)

    def context(self, values: tuple[Any, ...] = ()) -> ContextReport:
        """Look up a context report by its grouping values."""
        for report in self.contexts:
            if report.values == values:
                return report
        raise KeyError(f"no context with values {values!r}")

    # ------------------------------------------------------------------

    def format(self, precision: int = 4) -> str:
        """Render the report in the layout of the paper's result figures."""
        lines: list[str] = []
        lines.append(f"Query: {self.query!r}")
        lines.append(f"Covariates (Z): {list(self.covariates)}")
        lines.append(f"Mediators  (M): {list(self.mediators)}")
        verdict = "BIASED" if self.biased else "unbiased"
        lines.append(f"Verdict: query is {verdict}")
        for context in self.contexts:
            lines.append("")
            lines.append(f"-- Context {context.label} ({context.n_rows} rows) --")
            if context.balance_total is not None:
                lines.append(
                    f"  balance wrt Z:   I={context.balance_total.result.statistic:.4f} "
                    f"p={context.balance_total.p_value:.4g} "
                    f"-> {'BIASED' if context.balance_total.biased else 'balanced'}"
                )
            if context.balance_direct is not None:
                lines.append(
                    f"  balance wrt Z+M: I={context.balance_direct.result.statistic:.4f} "
                    f"p={context.balance_direct.p_value:.4g} "
                    f"-> {'BIASED' if context.balance_direct.biased else 'balanced'}"
                )
            lines.extend(self._format_estimates(context, precision))
            if context.coarse:
                lines.append("  coarse-grained explanations (responsibility):")
                for item in context.coarse:
                    lines.append(f"    {item.attribute:<20s} {item.responsibility:.2f}")
            for attribute, triples in context.fine.items():
                lines.append(f"  fine-grained explanations for {attribute}:")
                for rank, triple in enumerate(triples, start=1):
                    lines.append(
                        f"    {rank}. T={triple.treatment_value} "
                        f"Y={triple.outcome_value} {attribute}={triple.attribute_value}"
                    )
        return "\n".join(lines)

    def _format_estimates(self, context: ContextReport, precision: int) -> list[str]:
        lines: list[str] = []
        estimates = [context.naive, context.total, context.direct]
        labels = {"naive": "SQL answer", "total": "rewritten (total)", "direct": "rewritten (direct)"}
        for estimate in estimates:
            if estimate is None:
                continue
            title = labels.get(estimate.kind, estimate.kind)
            if estimate.error is not None:
                lines.append(f"  {title}: unavailable ({estimate.error})")
                continue
            for outcome in estimate.outcomes:
                per_group = ", ".join(
                    f"{value}: {estimate.averages[value][outcome]:.{precision}f}"
                    for value in estimate.treatment_values
                )
                suffix = ""
                if len(estimate.treatment_values) == 2:
                    suffix = f"  diff={estimate.difference(outcome):+.{precision}f}"
                if outcome in estimate.significance:
                    suffix += f"  p={estimate.significance[outcome].p_value:.4g}"
                lines.append(f"  {title} avg({outcome}): {per_group}{suffix}")
        return lines
