"""Figure 4: BerkeleyData (top) and CancerData (bottom).

* BerkeleyData (real 1973 admissions data) -- the naive query shows a
  large disparity against women (0.30 vs 0.45); conditioning on
  Department not only explains it away but *reverses* the trend, which is
  the insight HypDB adds over FairTest; the fine-grained explanations say
  why (men applied to the permissive departments A/B, women to F).
* CancerData (simulated from the Fig. 7 ground-truth DAG) -- lung cancer
  shows a significant total effect on car accidents (mediated by fatigue)
  and no significant direct effect, matching the ground truth exactly;
  Fatigue is the most responsible attribute.
"""

from __future__ import annotations

from conftest import scaled

from repro.core.hypdb import HypDB
from repro.datasets import berkeley_data, cancer_data

ALPHA = 0.01


def test_fig4_berkeley(benchmark, report_sink):
    db = HypDB(berkeley_data(), seed=1)
    report = benchmark.pedantic(
        lambda: db.analyze("SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender"),
        rounds=1,
        iterations=1,
    )
    emit = lambda line="": report_sink("fig4_berkeley", line)  # noqa: E731
    context = report.contexts[0]

    emit("=== Fig. 4 (top): gender and admission rate, BerkeleyData (real 1973 data) ===")
    emit(f"verdict: {'BIASED' if report.biased else 'unbiased'}   mediators: {list(report.mediators)}")
    for estimate in (context.naive, context.direct):
        row = "  ".join(
            f"{value}: {estimate.average(value):.3f}" for value in estimate.treatment_values
        )
        emit(f"  {estimate.kind:<7s} {row}  diff={estimate.difference():+.4f}  p={estimate.p_value():.4g}")
    for rank, triple in enumerate(context.fine.get("Department", ()), start=1):
        emit(
            f"  fine #{rank}: Gender={triple.treatment_value} "
            f"Accepted={triple.outcome_value} Department={triple.attribute_value}"
        )

    assert report.biased
    assert context.naive.average("Male") > context.naive.average("Female")
    assert context.naive.p_value() < ALPHA
    # The paper's headline: conditioning on Department REVERSES the trend
    # and the association stays significant.
    assert context.direct.average("Female") > context.direct.average("Male")
    assert context.direct.p_value() < ALPHA
    assert context.coarse[0].attribute == "Department"


def test_fig4_cancer(benchmark, report_sink):
    table = cancer_data(n_rows=scaled(2000), seed=3)
    db = HypDB(table, seed=1)
    report = benchmark.pedantic(
        lambda: db.analyze(
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer"
        ),
        rounds=1,
        iterations=1,
    )
    emit = lambda line="": report_sink("fig4_cancer", line)  # noqa: E731
    context = report.contexts[0]

    emit("=== Fig. 4 (bottom): lung cancer and car accidents, CancerData ===")
    emit(f"covariates Z: {list(report.covariates)}   mediators M: {list(report.mediators)}")
    for estimate in (context.naive, context.total, context.direct):
        row = "  ".join(
            f"{value}: {estimate.average(value):.3f}" for value in estimate.treatment_values
        )
        emit(f"  {estimate.kind:<7s} {row}  diff={estimate.difference():+.4f}  p={estimate.p_value():.4g}")
    emit("  coarse explanations:")
    for item in context.coarse:
        emit(f"    {item.attribute:<20s} {item.responsibility:.2f}")

    # Ground-truth checks (the generating DAG is known):
    assert set(report.covariates) == {"Genetics", "Smoking"}  # PA(Lung_Cancer)
    assert set(report.mediators) == {"Attention_Disorder", "Fatigue"}  # PA(Car_Accident)
    assert context.total.p_value() < ALPHA  # real total effect
    assert context.direct.p_value() >= ALPHA  # no direct edge in the DAG
    assert context.coarse[0].attribute == "Fatigue"
