"""Figure 6(a): number of independence tests -- CD vs full-structure FGS.

The number of conditional-independence tests issued is the standard
efficiency metric for constraint-based discovery.  The paper's point:
learning just the *parents of one node* (CD) needs far fewer tests than
learning the whole DAG (FGS), and even per node CD stays below FGS.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.causal.structure.fgs import FullGrowShrink
from repro.core.discovery import CovariateDiscoverer
from repro.datasets.random_data import random_dataset
from repro.stats.base import CountingTest
from repro.stats.chi2 import ChiSquaredTest

SIZES = [2000, 6000, 12000]


@pytest.mark.parametrize("base_rows", SIZES)
def test_fig6a_test_counts(base_rows, benchmark, report_sink):
    n_rows = scaled(base_rows)
    dataset = random_dataset(
        n_nodes=8, n_rows=n_rows, categories=3, expected_parents=1.5,
        strength=6.0, seed=300 + base_rows,
    )

    def run():
        fgs_counter = CountingTest(ChiSquaredTest())
        FullGrowShrink(fgs_counter, max_cond_size=2).learn(dataset.table)
        fgs_total = fgs_counter.calls

        cd_counter = CountingTest(ChiSquaredTest())
        discoverer = CovariateDiscoverer(cd_counter, max_cond_size=2)
        per_node = []
        for node in dataset.nodes:
            result = discoverer.discover(dataset.table, node, candidates=dataset.nodes)
            per_node.append(result.n_tests)
        return fgs_total, per_node

    fgs_total, per_node = benchmark.pedantic(run, rounds=1, iterations=1)
    n_nodes = len(dataset.nodes)
    fgs_per_node = fgs_total / n_nodes
    cd_per_node = sum(per_node) / n_nodes
    report_sink(
        "fig6a_test_counts",
        f"n={n_rows:>7d}  FGS(total)={fgs_total:>6d}  "
        f"FGS(per node)={fgs_per_node:8.1f}  CD(per node)={cd_per_node:8.1f}",
    )
    # Paper shape: learning one node's parents costs a fraction of the DAG.
    assert cd_per_node < fgs_total
