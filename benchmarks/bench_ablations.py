"""Ablations for the design choices documented in DESIGN.md §6.

Not a paper figure: these benches justify where this reproduction deviates
from the paper's letter, by measuring what each choice buys.

* **HyMIT routing rule** -- the paper's ``df <= n/beta`` vs Cochran's
  expected-cell-count rule, scored by false-positive rate on true
  conditional nulls in the sparse regime.
* **Boundary algorithm** -- IAMB (our HypDB default) vs Grow-Shrink (the
  paper's example), scored by boundary-recovery accuracy on RandomData.
* **Phase-I collider threshold** -- alpha vs alpha/10, scored by how often
  CD reports a non-parent as a covariate.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import scaled

from repro.causal.growshrink import grow_shrink_markov_blanket
from repro.causal.iamb import iamb_markov_blanket
from repro.core.discovery import CovariateDiscoverer
from repro.datasets.random_data import random_dataset
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest


@pytest.mark.parametrize("routing", ["cells", "df"])
def test_ablation_hymit_routing(routing, benchmark, report_sink):
    """False-positive rate of HyMIT under sparse conditional nulls."""
    rng = np.random.default_rng(3)
    # n chosen so the two rules disagree: df = 2*4*96 = 768 <= n/5, so the
    # paper's rule stays parametric, while 3*5*96 = 1440 cells need
    # n >= 7200 under Cochran's rule, which defers to MIT.
    n = scaled(6000)
    tables = []
    for _ in range(10):
        tables.append(
            Table.from_columns(
                {
                    "X": rng.integers(0, 3, n).tolist(),
                    "Y": rng.integers(0, 5, n).tolist(),
                    "W": rng.integers(0, 8, n).tolist(),
                    "M": rng.integers(0, 12, n).tolist(),
                }
            )
        )

    def run():
        test = HybridTest(routing=routing, n_permutations=200, seed=1)
        rejections = sum(
            1
            for table in tables
            if test.test(table, "X", "Y", ("W", "M")).dependent(0.01)
        )
        return rejections / len(tables)

    fp_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "ablation_routing",
        f"routing={routing:<6s} sparse-null false-positive rate: {fp_rate:.2f}",
    )
    if routing == "cells":
        # The deviation exists because the default must be calibrated.
        assert fp_rate <= 0.2


@pytest.mark.parametrize(
    "name, algorithm",
    [("iamb", iamb_markov_blanket), ("grow_shrink", grow_shrink_markov_blanket)],
)
def test_ablation_boundary_algorithm(name, algorithm, benchmark, report_sink):
    """Boundary recovery accuracy (symmetric-difference size) per algorithm."""
    datasets = [
        random_dataset(
            n_nodes=7, n_rows=scaled(8000), categories=3, expected_parents=1.5,
            strength=6.0, seed=400 + i,
        )
        for i in range(3)
    ]

    def run():
        errors = 0
        checks = 0
        for dataset in datasets:
            test = ChiSquaredTest()
            for node in dataset.nodes:
                found = algorithm(dataset.table, node, test)
                truth = dataset.dag.markov_boundary(node)
                errors += len(found.symmetric_difference(truth))
                checks += 1
        return errors / checks

    mean_errors = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "ablation_boundary",
        f"{name:<12s} mean boundary errors per node: {mean_errors:.2f}",
    )
    assert mean_errors < 3.0


@pytest.mark.parametrize("strict", [True, False])
def test_ablation_collider_threshold(strict, benchmark, report_sink):
    """Non-parent covariate reports with/without the alpha/10 guard."""
    datasets = [
        random_dataset(
            n_nodes=7, n_rows=scaled(8000), categories=3, expected_parents=1.5,
            strength=6.0, seed=500 + i,
        )
        for i in range(3)
    ]

    def run():
        false_parents = 0
        claims = 0
        for dataset in datasets:
            discoverer = CovariateDiscoverer(
                ChiSquaredTest(),
                max_cond_size=2,
                collider_alpha=(0.001 if strict else 0.01),
            )
            for node in dataset.nodes:
                result = discoverer.discover(
                    dataset.table, node, candidates=dataset.nodes
                )
                if result.used_fallback:
                    continue
                truth = dataset.dag.parents(node)
                false_parents += len(set(result.covariates) - truth)
                claims += max(len(result.covariates), 1)
        return false_parents / max(claims, 1)

    false_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    label = "alpha/10" if strict else "alpha"
    report_sink(
        "ablation_collider",
        f"collider threshold={label:<9s} non-parent covariate rate: {false_rate:.3f}",
    )
    assert 0.0 <= false_rate <= 1.0
