"""Service throughput: cold/warm latency + v2 work sharing (BENCH_service.json).

Stands up the analysis service (ThreadingHTTPServer + serial engine) in
process, registers the paper's FlightData workload, and measures:

* **cold** -- one full ``analyze`` (discovery + detection + explanation +
  resolution) through the HTTP API with an empty result cache;
* **warm** -- the same request repeated against the populated cache
  (median over many requests), plus sequential and concurrent
  requests-per-second;
* **batch-of-duplicates** -- ``POST /v2/batch`` with N identical cold
  analyze specs: the planner de-duplicates, so the batch costs ~one cold
  compute instead of N;
* **jobs API** -- N identical cold specs through ``POST /v2/jobs``: the
  job-level coalescing attaches N-1 submissions to one computation.

Acceptance bars: warm-cache repeated requests at least 100x faster than
cold (the multi-level cache, cf. the cached-entropy series of Fig. 6(c)),
and both v2 duplicate workloads at least 5x fewer kernel counting passes
than N independent cold computes would cost (the coalescing bar; asserted
on ``Table.KERNEL_COUNTERS``, which is exact and machine-independent).
The emitted ``BENCH_service.json`` follows the regression-gate schema:
rows keyed by (engine, jobs), a calibration timing, and workload metadata
(the warm row sits below the gate's noise floor, so it is reported rather
than gated).
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.datasets.flights import flight_data
from repro.relation.table import KERNEL_COUNTERS
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)
ANALYZE_PARAMS = {"seed": 7}
#: The warm-over-cold factor the service must clear (acceptance bar).
MIN_WARM_SPEEDUP = 100.0
#: Identical cold specs per v2 duplicate workload.
DUPLICATES = 10
#: v2 duplicates must cost >= this factor fewer kernel passes than N solos.
MIN_COALESCE_FACTOR = 5.0


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def test_service_throughput(benchmark, report_sink):
    table = flight_data(n_rows=scaled(40000, minimum=4000), seed=7)
    warm_requests = scaled(100, minimum=30)

    service = AnalysisService()
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://{host}:{port}")
    client.register(
        "flights", columns={name: table.column(name) for name in table.columns}
    )

    benchmark.group = "service_throughput"
    try:
        KERNEL_COUNTERS.reset()
        cold_start = time.perf_counter()
        cold_response = benchmark.pedantic(
            lambda: client.analyze("flights", SQL, **ANALYZE_PARAMS), rounds=1
        )
        cold_seconds = time.perf_counter() - cold_start
        cold_passes = KERNEL_COUNTERS.total()
        assert not cold_response["cached"]

        warm_latencies: list[float] = []
        for _ in range(warm_requests):
            start = time.perf_counter()
            warm_response = client.analyze("flights", SQL, **ANALYZE_PARAMS)
            warm_latencies.append(time.perf_counter() - start)
            assert warm_response["cached"]
        warm_seconds = statistics.median(warm_latencies)
        sequential_rps = warm_requests / sum(warm_latencies)
        assert warm_response["result"] == cold_response["result"]

        concurrent_rps = _concurrent_rps(client, warm_requests)

        # -- v2 batch of N identical cold specs (planner de-duplication) --
        batch_spec = {"kind": "analyze", "dataset": "flights", "sql": SQL, "seed": 11}
        KERNEL_COUNTERS.reset()
        batch_start = time.perf_counter()
        batch_response = client.batch_v2([batch_spec] * DUPLICATES)
        batch_seconds = time.perf_counter() - batch_start
        batch_passes = KERNEL_COUNTERS.total()
        assert batch_response["plan"]["deduplicated"] == DUPLICATES - 1
        payloads = {repr(item["result"]) for item in batch_response["results"]}
        assert len(payloads) == 1  # every duplicate got the leader's bytes

        # -- v2 jobs API: N identical cold submissions coalesce --
        job_spec = {"kind": "analyze", "dataset": "flights", "sql": SQL, "seed": 13}
        KERNEL_COUNTERS.reset()
        jobs_start = time.perf_counter()
        job_ids = [client.submit(job_spec)["job_id"] for _ in range(DUPLICATES)]
        for job_id in job_ids:
            client.wait(job_id)
        jobs_seconds = time.perf_counter() - jobs_start
        jobs_passes = KERNEL_COUNTERS.total()
        coalesced_jobs = client.stats()["job_manager"]["coalesced"]
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    solo_passes = cold_passes * DUPLICATES  # what N independent colds cost
    batch_factor = solo_passes / batch_passes if batch_passes else float("inf")
    jobs_factor = solo_passes / jobs_passes if jobs_passes else float("inf")
    rows = [
        {"engine": "service-cold", "jobs": 1, "seconds": cold_seconds, "speedup": 1.0},
        {
            "engine": "service-warm",
            "jobs": 1,
            "seconds": warm_seconds,
            "speedup": speedup,
            "sequential_rps": sequential_rps,
            "concurrent_rps": concurrent_rps,
        },
        {
            "engine": "service-batch-dup",
            "jobs": 1,
            "seconds": batch_seconds,
            "kernel_passes": batch_passes,
            "coalesce_factor": batch_factor,
            "deduplicated": DUPLICATES - 1,
        },
        {
            "engine": "service-jobs-dup",
            "jobs": 1,
            "seconds": jobs_seconds,
            "kernel_passes": jobs_passes,
            "coalesce_factor": jobs_factor,
            "coalesced_jobs": coalesced_jobs,
        },
    ]
    payload = {
        "benchmark": "service_throughput",
        "workload": {
            "dataset": "flights",
            "n_rows": table.n_rows,
            "sql": SQL,
            "warm_requests": warm_requests,
            "duplicates": DUPLICATES,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "results": rows,
    }
    write_bench_json("service", payload)

    report_sink(
        "service_throughput",
        f"cold analyze      {cold_seconds:8.3f}s  ({cold_passes} kernel passes)",
    )
    report_sink(
        "service_throughput",
        f"warm analyze      {warm_seconds:8.5f}s  ({speedup:,.0f}x, "
        f"{sequential_rps:,.0f} req/s sequential, {concurrent_rps:,.0f} req/s x4 threads)",
    )
    report_sink(
        "service_throughput",
        f"batch x{DUPLICATES} dup     {batch_seconds:8.3f}s  "
        f"({batch_passes} passes = {batch_factor:,.1f}x fewer than {DUPLICATES} solos)",
    )
    report_sink(
        "service_throughput",
        f"jobs  x{DUPLICATES} dup     {jobs_seconds:8.3f}s  "
        f"({jobs_passes} passes = {jobs_factor:,.1f}x fewer, "
        f"{coalesced_jobs} submissions coalesced)",
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache must be >= {MIN_WARM_SPEEDUP:.0f}x faster than cold: "
        f"cold {cold_seconds:.3f}s vs warm median {warm_seconds:.5f}s ({speedup:.1f}x)"
    )
    assert batch_factor >= MIN_COALESCE_FACTOR, (
        f"v2 batch of {DUPLICATES} duplicates must cost >= {MIN_COALESCE_FACTOR:.0f}x "
        f"fewer kernel passes than {DUPLICATES} solo colds: "
        f"{batch_passes} vs {solo_passes}"
    )
    assert jobs_factor >= MIN_COALESCE_FACTOR, (
        f"jobs API with {DUPLICATES} duplicate submissions must cost >= "
        f"{MIN_COALESCE_FACTOR:.0f}x fewer kernel passes: {jobs_passes} vs {solo_passes}"
    )


def _concurrent_rps(client: ServiceClient, total_requests: int, threads: int = 4) -> float:
    """Warm requests/sec with several client threads (ThreadingHTTPServer)."""
    per_thread = max(1, total_requests // threads)
    errors: list[Exception] = []

    def worker() -> None:
        try:
            for _ in range(per_thread):
                client.analyze("flights", SQL, **ANALYZE_PARAMS)
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[0]
    return (per_thread * threads) / elapsed if elapsed > 0 else float("inf")
