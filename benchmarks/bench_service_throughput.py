"""Service throughput: cold vs warm latency over HTTP (BENCH_service.json).

Stands up the analysis service (ThreadingHTTPServer + serial engine) in
process, registers the paper's FlightData workload, and measures:

* **cold** -- one full ``analyze`` (discovery + detection + explanation +
  resolution) through the HTTP API with an empty result cache;
* **warm** -- the same request repeated against the populated cache
  (median over many requests), plus sequential and concurrent
  requests-per-second.

The acceptance bar for the service layer is a warm-cache repeated request
at least 100x faster than the cold run -- the multi-level cache is what
makes HypDB interactive inside the query lifecycle (cf. the cached-entropy
series of Fig. 6(c)).  The emitted ``BENCH_service.json`` follows the
regression-gate schema: rows keyed by (engine, jobs), a calibration
timing, and workload metadata (the warm row sits below the gate's noise
floor, so it is reported rather than gated).
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.datasets.flights import flight_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)
ANALYZE_PARAMS = {"seed": 7}
#: The warm-over-cold factor the service must clear (acceptance bar).
MIN_WARM_SPEEDUP = 100.0


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def test_service_throughput(benchmark, report_sink):
    table = flight_data(n_rows=scaled(40000, minimum=4000), seed=7)
    warm_requests = scaled(100, minimum=30)

    service = AnalysisService()
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://{host}:{port}")
    client.register(
        "flights", columns={name: table.column(name) for name in table.columns}
    )

    benchmark.group = "service_throughput"
    try:
        cold_start = time.perf_counter()
        cold_response = benchmark.pedantic(
            lambda: client.analyze("flights", SQL, **ANALYZE_PARAMS), rounds=1
        )
        cold_seconds = time.perf_counter() - cold_start
        assert not cold_response["cached"]

        warm_latencies: list[float] = []
        for _ in range(warm_requests):
            start = time.perf_counter()
            warm_response = client.analyze("flights", SQL, **ANALYZE_PARAMS)
            warm_latencies.append(time.perf_counter() - start)
            assert warm_response["cached"]
        warm_seconds = statistics.median(warm_latencies)
        sequential_rps = warm_requests / sum(warm_latencies)
        assert warm_response["result"] == cold_response["result"]

        concurrent_rps = _concurrent_rps(client, warm_requests)
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    rows = [
        {"engine": "service-cold", "jobs": 1, "seconds": cold_seconds, "speedup": 1.0},
        {
            "engine": "service-warm",
            "jobs": 1,
            "seconds": warm_seconds,
            "speedup": speedup,
            "sequential_rps": sequential_rps,
            "concurrent_rps": concurrent_rps,
        },
    ]
    payload = {
        "benchmark": "service_throughput",
        "workload": {
            "dataset": "flights",
            "n_rows": table.n_rows,
            "sql": SQL,
            "warm_requests": warm_requests,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "results": rows,
    }
    write_bench_json("service", payload)

    report_sink(
        "service_throughput",
        f"cold analyze      {cold_seconds:8.3f}s",
    )
    report_sink(
        "service_throughput",
        f"warm analyze      {warm_seconds:8.5f}s  ({speedup:,.0f}x, "
        f"{sequential_rps:,.0f} req/s sequential, {concurrent_rps:,.0f} req/s x4 threads)",
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache must be >= {MIN_WARM_SPEEDUP:.0f}x faster than cold: "
        f"cold {cold_seconds:.3f}s vs warm median {warm_seconds:.5f}s ({speedup:.1f}x)"
    )


def _concurrent_rps(client: ServiceClient, total_requests: int, threads: int = 4) -> float:
    """Warm requests/sec with several client threads (ThreadingHTTPServer)."""
    per_thread = max(1, total_requests // threads)
    errors: list[Exception] = []

    def worker() -> None:
        try:
            for _ in range(per_thread):
                client.analyze("flights", SQL, **ANALYZE_PARAMS)
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[0]
    return (per_thread * threads) / elapsed if elapsed > 0 else float("inf")
