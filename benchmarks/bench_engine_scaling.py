"""Execution-engine scaling on the Fig. 6(b) workload (BENCH_engine.json).

Runs the MIT permutation test (the paper's hot path) on the Fig. 6(b)
RandomData workload under ``SerialEngine`` and ``ParallelEngine`` at
increasing worker counts, verifying bit-identical p-values along the way,
and emits a machine-readable ``BENCH_engine.json`` that records:

* per-engine wall-clock seconds and the speedup over serial,
* a calibration timing (a fixed single-core numpy workload) so the CI
  regression gate can normalize away runner-speed differences,
* the workload parameters, so the gate refuses to compare timings taken
  at different ``REPRO_BENCH_SCALE``.

On a >= 4-core machine the jobs=4 row is expected to show a >= 2x speedup;
set ``REPRO_BENCH_STRICT=1`` to turn that expectation into a hard assert
(left soft by default so laptops and 1-core containers can still produce
artifacts).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.datasets.random_data import random_dataset
from repro.engine import ParallelEngine, SerialEngine
from repro.stats.permutation import PermutationTest

#: Worker counts measured after serial; each row reuses one warm pool.
PARALLEL_JOBS = (2, 4)


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def test_engine_scaling(benchmark, report_sink, bench_jobs):
    dataset = random_dataset(
        n_nodes=6, n_rows=scaled(20000), categories=4, expected_parents=1.5,
        strength=6.0, seed=41,
    )
    table = dataset.table
    nodes = dataset.nodes
    x, y, z = nodes[0], nodes[1], (nodes[2], nodes[3])
    n_permutations = scaled(8000, minimum=200)
    # Keeps each row's timing well clear of scheduler noise even at the
    # CI smoke scale (0.25): the gate compares ~0.4s rows, not ~10ms ones.
    repeats = 15

    def run(engine):
        result = None
        for _ in range(repeats):
            result = PermutationTest(
                n_permutations=n_permutations, seed=0, engine=engine
            ).test(table, x, y, z)
        return result

    benchmark.group = "engine_scaling"
    serial_start = time.perf_counter()
    serial_result = benchmark.pedantic(lambda: run(SerialEngine()), rounds=1)
    serial_seconds = time.perf_counter() - serial_start

    rows = [{"engine": "serial", "jobs": 1, "seconds": serial_seconds, "speedup": 1.0}]
    jobs_under_test = sorted({*PARALLEL_JOBS, bench_jobs} - {1})
    for jobs in jobs_under_test:
        with ParallelEngine(jobs=jobs) as engine:
            run(engine)  # warm the pool so the row times work, not forking
            start = time.perf_counter()
            result = run(engine)
            seconds = time.perf_counter() - start
        assert result.p_value == serial_result.p_value, (
            f"jobs={jobs} diverged from serial: {result.p_value} vs {serial_result.p_value}"
        )
        assert result.statistic == serial_result.statistic
        rows.append(
            {
                "engine": "parallel",
                "jobs": jobs,
                "seconds": seconds,
                "speedup": serial_seconds / seconds if seconds > 0 else float("inf"),
            }
        )

    payload = {
        "benchmark": "engine_scaling",
        "workload": {
            "figure": "fig6b",
            "n_rows": table.n_rows,
            "n_permutations": n_permutations,
            "repeats": repeats,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "results": rows,
    }
    write_bench_json("engine", payload)

    for row in rows:
        report_sink(
            "engine_scaling",
            f"{row['engine']:<9s} jobs={row['jobs']}  "
            f"{row['seconds']:8.3f}s  speedup={row['speedup']:.2f}x",
        )
    assert 0.0 <= serial_result.p_value <= 1.0

    cores = os.cpu_count() or 1
    if os.environ.get("REPRO_BENCH_STRICT") == "1" and cores >= 4:
        best = max(row["speedup"] for row in rows if row["jobs"] >= 4)
        assert best >= 2.0, f"expected >=2x speedup on {cores} cores, got {best:.2f}x"
