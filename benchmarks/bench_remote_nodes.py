"""Remote-node cluster tier: join, heartbeat, gossip (BENCH_remote.json).

Stands up the TCP cluster topology -- a router (with a journal) plus two
:class:`~repro.service.shard.cluster.ShardNode` workers that enter the
ring through the ``/v2/cluster/join`` handshake -- next to a
single-process control, and measures the costs the tier adds:

* **join latency** -- full handshake round-trips (join + leave cycles
  against a live router);
* **heartbeat overhead** -- the steady-state beat RTT, digest included;
* **gossip convergence** -- after the router is torn down and rebuilt
  from its journal (fresh epoch, no traffic replayed), how long until
  the nodes' re-sent warm-key digests restore warm routing.

Correctness bars (always asserted, any core count):

* **byte identity** -- the remote topology returns byte-identical
  canonical result bytes to the single process for every spec;
* **warm convergence** -- after the router restart, >= 90% of repeated
  requests must route warm purely from gossiped digests.

Rows follow the regression-gate schema (``jobs`` = node count for the
cluster rows, so they gate only against baselines from a matching
``cpu_count`` runner class).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.journal import RouterJournal
from repro.service.shard import ShardNode, ShardRouter, make_router_server

TOKEN = "bench-cluster-token"
SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
    "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region",
)
DATASETS = 3
#: After the restarted router converges, repeats must route warm.
MIN_WARM_ROUTE_RATE = 0.9
CONVERGENCE_TIMEOUT = 60.0


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _columns(n_rows: int, seed: int) -> dict:
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _serve(router: ShardRouter, port: int = 0):
    server = make_router_server(router, port=port)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def test_remote_nodes(benchmark, report_sink):
    n_rows = scaled(2000, minimum=400)
    join_cycles = scaled(8, minimum=3)
    beat_samples = scaled(40, minimum=10)
    repeats = scaled(4, minimum=2)

    columns = {f"d{i}": _columns(n_rows, seed=70 + i) for i in range(DATASETS)}
    specs = [(name, sql) for name in sorted(columns) for sql in SQL_VARIANTS]

    benchmark.group = "remote_nodes"
    metrics: dict = {}
    rows: list[dict] = []

    def measure_all():
        # -- control: the single-process oracle ------------------------
        single = AnalysisService()
        single_server = make_server(single)
        threading.Thread(target=single_server.serve_forever, daemon=True).start()
        control = ServiceClient(
            "http://127.0.0.1:%d" % single_server.server_address[1]
        )

        # -- cluster: journaled router + two joined nodes ---------------
        journal_dir = tempfile.mkdtemp(prefix="hypdb-bench-remote-")
        router = ShardRouter(
            [],
            cluster_token=TOKEN,
            heartbeat_interval=0.2,
            liveness_timeout=30.0,
            journal=RouterJournal(journal_dir),
        )
        server = _serve(router)
        port = server.server_address[1]
        url = "http://127.0.0.1:%d" % port
        nodes = []
        for name in ("n1", "n2"):
            node = ShardNode(url, TOKEN, name=name, heartbeat_interval=0.2)
            node.start()
            threading.Thread(target=node.serve_forever, daemon=True).start()
            node.join()
            nodes.append(node)
        cluster = ServiceClient(url)
        recovered = None
        recovered_server = None
        try:
            # -- join latency: handshake round-trips --------------------
            probe = ShardNode(url, TOKEN, name="probe", heartbeat_interval=60.0)
            probe.start()
            threading.Thread(target=probe.serve_forever, daemon=True).start()
            join_seconds = []
            for _ in range(join_cycles):
                start = time.perf_counter()
                probe.join()
                join_seconds.append(time.perf_counter() - start)
                probe._stop.set()
                probe._beat_thread.join(timeout=10)
                probe._stop.clear()
                probe._beat_thread = None
                probe.leave()
            probe.close()
            metrics["join_ms_mean"] = 1000 * sum(join_seconds) / len(join_seconds)
            rows.append(
                {
                    "engine": "remote-join-cycles",
                    "jobs": 1,
                    "seconds": sum(join_seconds),
                    "cycles": join_cycles,
                }
            )

            # -- register + cold pass on both topologies ----------------
            for name, cols in columns.items():
                control.register(name, columns=cols)
                cluster.register(name, columns=cols)
            payloads: dict[str, tuple[bytes, bytes]] = {}
            cold_start = time.perf_counter()
            for name, sql in specs:
                response = cluster.query(name, sql)
                assert response["cached"] is False
                payloads[f"{name}:{sql}"] = canonical_json_bytes(response["result"])
            cold_seconds = time.perf_counter() - cold_start
            for name, sql in specs:
                expected = canonical_json_bytes(control.query(name, sql)["result"])
                assert payloads[f"{name}:{sql}"] == expected, (
                    f"remote topology changed the answer for {name}: {sql}"
                )

            # -- sustained warm pass ------------------------------------
            warm_start = time.perf_counter()
            for _ in range(repeats):
                for name, sql in specs:
                    assert cluster.query(name, sql)["cached"] is True
            warm_seconds = time.perf_counter() - warm_start
            rows.append(
                {
                    "engine": "remote-2-nodes",
                    "jobs": 2,
                    "seconds": warm_seconds,
                    "cold_seconds": cold_seconds,
                    "rps": repeats * len(specs) / warm_seconds,
                }
            )

            # -- heartbeat overhead -------------------------------------
            beat_seconds = []
            for _ in range(beat_samples):
                start = time.perf_counter()
                nodes[0].beat()
                beat_seconds.append(time.perf_counter() - start)
            metrics["heartbeat_ms_mean"] = (
                1000 * sum(beat_seconds) / len(beat_seconds)
            )

            # -- router restart: journal recovery + gossip convergence --
            warmed = len(router.warm_keys)
            server.shutdown()
            server.server_close()
            router.close()
            recovered = ShardRouter(
                [],
                cluster_token=TOKEN,
                heartbeat_interval=0.2,
                liveness_timeout=30.0,
                journal=RouterJournal(journal_dir),
            )
            recovered_server = _serve(recovered, port=port)
            converge_start = time.perf_counter()
            deadline = converge_start + CONVERGENCE_TIMEOUT
            while (
                len(recovered.warm_keys) < 0.9 * warmed
                and time.perf_counter() < deadline
            ):
                time.sleep(0.05)
            convergence = time.perf_counter() - converge_start
            metrics["gossip_convergence_seconds"] = convergence

            hits_before = recovered._warm_hits
            replay_start = time.perf_counter()
            served = 0
            for _ in range(repeats):
                for name, sql in specs:
                    response = cluster.query(name, sql)
                    served += 1
                    expected = payloads[f"{name}:{sql}"]
                    assert canonical_json_bytes(response["result"]) == expected
            replay_seconds = time.perf_counter() - replay_start
            warm_rate = (recovered._warm_hits - hits_before) / served
            metrics["warm_route_rate_after_restart"] = warm_rate
            rows.append(
                {
                    "engine": "remote-2-nodes-restart",
                    "jobs": 2,
                    "seconds": replay_seconds,
                    "convergence_seconds": convergence,
                    "warm_hit_rate": warm_rate,
                }
            )
        finally:
            for node in nodes:
                node.close()
            if recovered_server is not None:
                recovered_server.shutdown()
                recovered_server.server_close()
            if recovered is not None:
                recovered.close()
            single_server.shutdown()
            single_server.server_close()
            single.close()
        return rows

    benchmark.pedantic(measure_all, rounds=1)

    # -- warm convergence: gossip alone must restore warm routing --
    assert metrics["warm_route_rate_after_restart"] >= MIN_WARM_ROUTE_RATE, (
        f"only {metrics['warm_route_rate_after_restart']:.0%} of repeats routed "
        f"warm after the router restart (need >= {MIN_WARM_ROUTE_RATE:.0%})"
    )

    payload = {
        "benchmark": "remote_nodes",
        "workload": {
            "datasets": DATASETS,
            "n_rows": n_rows,
            "distinct_specs": len(specs),
            "repeats": repeats,
            "join_cycles": join_cycles,
            "beat_samples": beat_samples,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "join_ms_mean": metrics["join_ms_mean"],
        "heartbeat_ms_mean": metrics["heartbeat_ms_mean"],
        "gossip_convergence_seconds": metrics["gossip_convergence_seconds"],
        "warm_route_rate_after_restart": metrics["warm_route_rate_after_restart"],
        "results": rows,
    }
    write_bench_json("remote", payload)

    report_sink(
        "remote_nodes",
        f"join handshake        {metrics['join_ms_mean']:7.2f} ms mean "
        f"({join_cycles} cycles)",
    )
    report_sink(
        "remote_nodes",
        f"heartbeat round-trip  {metrics['heartbeat_ms_mean']:7.2f} ms mean "
        f"({beat_samples} beats, digest included)",
    )
    report_sink(
        "remote_nodes",
        f"gossip convergence    {metrics['gossip_convergence_seconds']:7.2f} s "
        f"after router restart (no traffic replayed)",
    )
    report_sink(
        "remote_nodes",
        f"warm routing after restart = "
        f"{metrics['warm_route_rate_after_restart']:.0%} "
        f"(bar {MIN_WARM_ROUTE_RATE:.0%})",
    )
