"""Figure 6(d): benefits of a pre-computed OLAP data cube, varying data size.

The paper shows that answering HypDB's counting workload from a
pre-computed cube beats scanning the data, with the advantage growing with
the input size (binary RandomData, 8-12 attributes, cube built offline).
The cube build itself is excluded from the measured time, mirroring the
paper's setup where PostgreSQL pre-computes the cube.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.datasets.random_data import random_dataset
from repro.infotheory.cache import EntropyEngine
from repro.relation.cube import DataCube
from repro.utils.subsets import bounded_subsets

N_ATTRIBUTES = 8
SIZES = [10000, 40000, 100000]


def _entropy_workload(engine: EntropyEngine, nodes) -> float:
    """The counting workload CD generates: entropies over attribute subsets."""
    total = 0.0
    for subset in bounded_subsets(nodes, 3):
        if subset:
            total += engine.entropy(subset)
    return total


@pytest.mark.parametrize("base_rows", SIZES)
@pytest.mark.parametrize("mode", ["cube", "no_cube"])
def test_fig6d_cube_vs_scan(base_rows, mode, benchmark, report_sink, bench_jobs):
    n_rows = scaled(base_rows)
    dataset = random_dataset(
        n_nodes=N_ATTRIBUTES, n_rows=n_rows, categories=2, expected_parents=1.5,
        strength=4.0, seed=60,
    )
    nodes = dataset.nodes
    # bench_jobs (--jobs / REPRO_BENCH_JOBS) parallelizes the roll-up; the
    # materialized lattice is identical for any worker count.
    cube = DataCube(dataset.table, nodes, engine=bench_jobs) if mode == "cube" else None
    benchmark.group = f"fig6d_n={base_rows}"

    def run():
        # Fresh uncached engine per round: we measure answering the
        # workload, not hitting a warm memo.
        engine = EntropyEngine(dataset.table, "plugin", cube=cube, caching=False)
        return _entropy_workload(engine, nodes)

    total = benchmark(run)
    report_sink(
        "fig6d_cube",
        f"{mode:<8s} n={n_rows:>7d} attrs={N_ATTRIBUTES}  workload checksum={total:.3f}",
    )
    assert total > 0
