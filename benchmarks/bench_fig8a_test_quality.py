"""Figure 8(a): accuracy of the independence-test variants on sparse data.

The paper's appendix figure shows that MIT, MIT(sampling), and HyMIT keep
comparable accuracy to each other -- and beat chi-squared -- on small
samples.  We score each test as a binary classifier of (conditional)
dependence on labeled pairs from RandomData with a known DAG:

* positives: d-connected pairs (given a random conditioning attribute);
* negatives: d-separated pairs.

F1 over those decisions is the reported metric.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.causal.structure.metrics import F1Report
from repro.datasets.random_data import random_dataset
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest

ALPHA = 0.01


def _labeled_cases(dataset, max_cases=40):
    """(x, y, z, dependent?) cases labeled by d-separation ground truth."""
    nodes = dataset.nodes
    cases = []
    for i, x in enumerate(nodes):
        for y in nodes[i + 1 :]:
            for z in ([], *[[w] for w in nodes if w not in (x, y)][:2]):
                dependent = not dataset.dag.d_separated(x, y, z)
                cases.append((x, y, tuple(z), dependent))
    # Balance-ish deterministic subset.
    positives = [c for c in cases if c[3]][: max_cases // 2]
    negatives = [c for c in cases if not c[3]][: max_cases // 2]
    return positives + negatives


VARIANTS = {
    "chi2": lambda: ChiSquaredTest(),
    "mit": lambda: PermutationTest(n_permutations=200, seed=0),
    "mit_sampling": lambda: PermutationTest(
        n_permutations=200, group_sampling="log", seed=0
    ),
    "hymit": lambda: HybridTest(n_permutations=200, seed=0),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_fig8a_test_accuracy_sparse(variant, benchmark, report_sink):
    # Deliberately sparse: 8-category attributes on a small sample, so a
    # conditional test faces ~hundreds of cells -- the regime where the
    # chi-squared approximation degrades (paper Fig. 8(a)).
    dataset = random_dataset(
        n_nodes=7, n_rows=scaled(900), categories=8, expected_parents=1.3,
        strength=5.0, seed=77,
    )
    cases = _labeled_cases(dataset)
    test = VARIANTS[variant]()
    benchmark.group = "fig8a"

    def run():
        tp = fp = fn = 0
        for x, y, z, dependent in cases:
            verdict = test.test(dataset.table, x, y, z).dependent(ALPHA)
            if dependent and verdict:
                tp += 1
            elif dependent and not verdict:
                fn += 1
            elif not dependent and verdict:
                fp += 1
        return F1Report(true_positives=tp, false_positives=fp, false_negatives=fn)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "fig8a_test_quality",
        f"{variant:<14s} n={dataset.table.n_rows:>6d} cat=8  "
        f"precision={report.precision:.3f} recall={report.recall:.3f} F1={report.f1:.3f}",
    )
    # All variants must be meaningfully better than guessing on this task.
    assert report.f1 > 0.4
