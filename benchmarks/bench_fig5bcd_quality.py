"""Figures 5(b)-(d): quality of covariate discovery vs the CDD baselines.

The paper scores parent-recovery F1 on RandomData for:

* CD with HyMIT, MIT(sampling), and chi-squared tests;
* the constraint-based baselines FGS(chi2) and IAMB(chi2);
* score-based hill climbing with BDe / AIC / BIC.

Three views are reported: F1 vs sample size over all nodes (5b), restricted
to nodes with >= 2 parents (5c), and F1 vs the number of categories on a
fixed sample (5d) -- the sparse regime where permutation tests dominate.

Paper shape to reproduce: CD variants lead on the >=2-parent nodes, the
permutation-based tests win as the data gets sparse (more categories), and
the score-based methods trail on parent orientation.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.causal.structure.fgs import FullGrowShrink
from repro.causal.structure.hillclimb import HillClimbLearner
from repro.causal.structure.iamb_learner import IambLearner
from repro.causal.structure.metrics import parent_recovery_f1
from repro.core.discovery import CovariateDiscoverer
from repro.datasets.random_data import random_dataset
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest

N_NODES = 8
N_REPEATS = 2  # datasets per configuration (paper uses many more)


def _make_cd(test_name: str, seed: int):
    tests = {
        "hymit": lambda: HybridTest(n_permutations=200, seed=seed),
        "mit": lambda: PermutationTest(
            n_permutations=200, group_sampling="log", seed=seed
        ),
        "chi2": ChiSquaredTest,
    }
    return CovariateDiscoverer(tests[test_name](), max_cond_size=2)


def _cd_parent_sets(discoverer, dataset):
    """Run CD once per node (the per-node learning task of Sec. 7.4)."""
    parents = {}
    for node in dataset.nodes:
        result = discoverer.discover(dataset.table, node, candidates=dataset.nodes)
        # Fallback results are boundary supersets, not parent claims --
        # scoring them as parents would not measure identification.
        parents[node] = set() if result.used_fallback else set(result.covariates)
    return parents


def _score_all(dataset, seed):
    """Parent sets per algorithm for one dataset."""
    table = dataset.table
    algorithms = {}
    for test_name in ("hymit", "mit", "chi2"):
        algorithms[f"CD({test_name})"] = _cd_parent_sets(
            _make_cd(test_name, seed), dataset
        )
    algorithms["FGS(chi2)"] = FullGrowShrink(
        ChiSquaredTest(), max_cond_size=2
    ).learn(table).parent_sets()
    algorithms["IAMB(chi2)"] = IambLearner(
        ChiSquaredTest(), max_cond_size=2
    ).learn(table).parent_sets()
    for score in ("bde", "aic", "bic"):
        algorithms[f"HC({score})"] = {
            node: dag.parents(node)
            for dag in [HillClimbLearner(score, max_parents=3).learn(table)]
            for node in dag.nodes()
        }
    return algorithms


def _aggregate(configs, min_true_parents=0):
    """Run the sweep and tabulate mean F1 per algorithm per point."""
    rows = {}
    for label, datasets in configs:
        for dataset, seed in datasets:
            for algorithm, parents in _score_all(dataset, seed).items():
                report = parent_recovery_f1(
                    dataset.dag, parents, min_true_parents=min_true_parents
                )
                rows.setdefault(algorithm, {}).setdefault(label, []).append(report.f1)
    return rows


def _emit_table(emit, rows, labels):
    header = f"{'algorithm':<12s}" + "".join(f"{label:>10s}" for label in labels)
    emit(header)
    for algorithm in sorted(rows):
        cells = []
        for label in labels:
            values = rows[algorithm].get(label, [])
            cells.append(f"{sum(values) / len(values):10.3f}" if values else f"{'-':>10s}")
        emit(f"{algorithm:<12s}" + "".join(cells))


@pytest.mark.parametrize("min_parents, figure", [(0, "fig5b"), (2, "fig5c")])
def test_fig5bc_f1_vs_sample_size(benchmark, report_sink, min_parents, figure):
    sizes = [scaled(2000), scaled(5000), scaled(12000)]
    configs = [
        (
            f"n={size}",
            [
                (
                    random_dataset(
                        n_nodes=N_NODES,
                        n_rows=size,
                        categories=3,
                        expected_parents=1.5,
                        strength=6.0,
                        seed=100 + repeat,
                    ),
                    repeat,
                )
                for repeat in range(N_REPEATS)
            ],
        )
        for size in sizes
    ]
    rows = benchmark.pedantic(
        lambda: _aggregate(configs, min_true_parents=min_parents),
        rounds=1,
        iterations=1,
    )
    emit = lambda line="": report_sink(figure, line)  # noqa: E731
    title = "all nodes" if min_parents == 0 else ">=2-parent nodes"
    emit(f"=== Fig. 5({'b' if min_parents == 0 else 'c'}): parent-recovery F1 vs sample size ({title}) ===")
    _emit_table(emit, rows, [f"n={size}" for size in sizes])

    largest = f"n={sizes[-1]}"
    cd_best = max(
        sum(rows[a][largest]) / len(rows[a][largest])
        for a in rows
        if a.startswith("CD(")
    )
    hc_best = max(
        sum(rows[a][largest]) / len(rows[a][largest])
        for a in rows
        if a.startswith("HC(")
    )
    if min_parents == 2:
        # Fig. 5(c) headline: CD leads on multi-parent nodes.
        assert cd_best >= hc_best - 0.05
    assert cd_best > 0.4


def test_fig5d_f1_vs_categories(benchmark, report_sink):
    categories = [3, 6, 10]
    n_rows = scaled(4000)
    configs = [
        (
            f"cat={cat}",
            [
                (
                    random_dataset(
                        n_nodes=N_NODES,
                        n_rows=n_rows,
                        categories=cat,
                        expected_parents=1.5,
                        strength=6.0,
                        seed=200 + repeat,
                    ),
                    repeat,
                )
                for repeat in range(N_REPEATS)
            ],
        )
        for cat in categories
    ]
    rows = benchmark.pedantic(
        lambda: _aggregate(configs, min_true_parents=2), rounds=1, iterations=1
    )
    emit = lambda line="": report_sink("fig5d", line)  # noqa: E731
    emit("=== Fig. 5(d): parent-recovery F1 vs number of categories (sparse regime) ===")
    _emit_table(emit, rows, [f"cat={cat}" for cat in categories])

    sparse = f"cat={categories[-1]}"
    permutation_based = max(
        sum(rows[a][sparse]) / len(rows[a][sparse])
        for a in ("CD(hymit)", "CD(mit)")
    )
    chi2_based = sum(rows["CD(chi2)"][sparse]) / len(rows["CD(chi2)"][sparse])
    # Paper shape: on sparse data, permutation tests hold up at least as
    # well as the parametric chi-squared.
    assert permutation_based >= chi2_based - 0.05
