"""Figure 1: Simpson's paradox on FlightData, end to end.

Regenerates every panel of the paper's Fig. 1: the biased query answers,
the per-airport reversal (a), the carrier/airport mix (b), the per-airport
delay rates (c), the coarse- and fine-grained explanations (d), and the
refined (rewritten) answers with significance (e).
"""

from __future__ import annotations

from conftest import scaled

from repro.core.hypdb import HypDB
from repro.datasets.flights import flight_data
from repro.relation.groupby import group_by_average
from repro.relation.predicates import In

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)
PAPER_AIRPORTS = ("COS", "MFE", "MTJ", "ROC")


def test_fig1_flight_simpson_paradox(benchmark, report_sink):
    table = flight_data(n_rows=scaled(30000), seed=7)
    db = HypDB(table, seed=7)

    report = benchmark.pedantic(lambda: db.analyze(SQL), rounds=1, iterations=1)
    context = report.contexts[0]
    emit = lambda line="": report_sink("fig1_flights", line)  # noqa: E731

    emit("=== Figure 1: biased OLAP query on FlightData ===")
    emit(f"HypDB verdict: {'Biased Query' if report.biased else 'unbiased'}")
    emit("")
    emit("Query answers (SQL):")
    for value in context.naive.treatment_values:
        emit(f"  {value}: avg(Delayed) = {context.naive.average(value):.4f}")
    emit(f"  p-value of difference: {context.naive.p_value():.2e}")

    emit("")
    emit("(a) Carrier delay by airport (the reversal):")
    where = In("Carrier", ["AA", "UA"]) & In("Airport", list(PAPER_AIRPORTS))
    per_airport = group_by_average(table, ["Airport", "Carrier"], ["Delayed"], where=where)
    reversed_everywhere = True
    for airport in PAPER_AIRPORTS:
        aa = per_airport.average((airport, "AA"))
        ua = per_airport.average((airport, "UA"))
        reversed_everywhere &= aa > ua
        emit(f"  {airport}: AA={aa:.3f}  UA={ua:.3f}  ({'AA worse' if aa > ua else 'UA worse'})")
    assert reversed_everywhere, "per-airport ordering must oppose the aggregate"
    assert context.naive.average("AA") < context.naive.average("UA")

    emit("")
    emit("(d) Coarse-grained explanations (responsibility):")
    for item in context.coarse:
        emit(f"  {item.attribute:<12s} {item.responsibility:.2f}")
    assert context.coarse[0].attribute == "Airport"

    emit("")
    emit("(d) Fine-grained explanations (top-2 per attribute):")
    for attribute, triples in context.fine.items():
        for rank, triple in enumerate(triples, start=1):
            emit(
                f"  {rank}. Carrier={triple.treatment_value} "
                f"{attribute}={triple.attribute_value} Delayed={triple.outcome_value}"
            )
    top = context.fine["Airport"][0]
    assert (top.treatment_value, top.attribute_value, top.outcome_value) == ("UA", "ROC", 1)

    emit("")
    emit("(e) Refined query answers:")
    for kind, estimate in (("total", context.total), ("direct", context.direct)):
        row = ", ".join(
            f"{value}: {estimate.average(value):.4f}"
            for value in estimate.treatment_values
        )
        emit(f"  {kind:<7s} {row}  diff={estimate.difference():+.4f}  p={estimate.p_value():.4g}")
    assert context.total.difference() < 0  # UA better in total effect
    assert context.total.p_value() < 0.01
    assert context.direct.p_value() >= 0.01  # no significant direct difference
