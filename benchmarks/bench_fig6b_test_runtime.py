"""Figure 6(b): runtime of the independence-test variants.

The paper compares MIT, MIT with group sampling, HyMIT, and chi-squared on
RandomData samples (<= 50K rows), plus the observation that the naive
shuffle-based permutation test is orders of magnitude slower (hours vs
sub-second).  These are genuine timing benchmarks, so each variant runs
under pytest-benchmark with its own group.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.datasets.random_data import random_dataset
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.naive import NaiveShuffleTest
from repro.stats.permutation import PermutationTest


@pytest.fixture(scope="module")
def workload():
    dataset = random_dataset(
        n_nodes=6, n_rows=scaled(20000), categories=4, expected_parents=1.5,
        strength=6.0, seed=41,
    )
    nodes = dataset.nodes
    # A conditional test with a two-attribute conditioning set: the shape
    # HypDB issues constantly during discovery.
    return dataset.table, nodes[0], nodes[1], (nodes[2], nodes[3])


VARIANTS = {
    "chi2": lambda: ChiSquaredTest(),
    "mit": lambda: PermutationTest(n_permutations=100, seed=0),
    "mit_sampling": lambda: PermutationTest(
        n_permutations=100, group_sampling="log", seed=0
    ),
    "hymit": lambda: HybridTest(n_permutations=100, seed=0),
    "naive_shuffle": lambda: NaiveShuffleTest(n_permutations=20, seed=0),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_fig6b_test_runtime(variant, workload, benchmark, report_sink):
    table, x, y, z = workload
    test = VARIANTS[variant]()
    benchmark.group = "fig6b"

    result = benchmark(lambda: test.test(table, x, y, z))
    report_sink(
        "fig6b_test_runtime",
        f"{variant:<14s} n={table.n_rows:>7d}  statistic={result.statistic:.5f}  "
        f"p={result.p_value:.4f}",
    )
    assert 0.0 <= result.p_value <= 1.0
