"""Figure 6(c): efficacy of entropy caching and contingency materialization.

The paper ablates the CD algorithm's optimizations: no optimization, with
materialized contingency tables, with cached entropies, with both, and with
pre-computed entropies.  The analogue here:

* ``no_caching``      -- every entropy recomputed from the raw columns;
* ``caching``         -- the shared per-table entropy memo (Sec. 6);
* ``materialized``    -- entropies answered from a pre-computed data cube;
* ``cube+precomputed``-- cube plus pre-warmed entropy cache (the lower
  bound: discovery pays only for the test logic itself).
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.core.discovery import CovariateDiscoverer
from repro.datasets.random_data import random_dataset
from repro.infotheory.cache import EntropyEngine
from repro.relation.cube import DataCube
from repro.relation.table import Table
from repro.stats.base import CIResult, CITest
from repro.stats.chi2 import degrees_of_freedom
from repro.utils.subsets import powerset

from scipy import stats as scipy_stats


class _EngineBackedChi2(CITest):
    """Chi-squared test that evaluates entropies through a given engine.

    This makes the caching/materialization policy an injectable knob, which
    is exactly what this ablation varies.
    """

    name = "chi2_engine"

    def __init__(self, engine_factory) -> None:
        super().__init__()
        self._engine_factory = engine_factory
        self._engines: dict[int, EntropyEngine] = {}

    def _engine(self, table: Table) -> EntropyEngine:
        key = id(table)
        if key not in self._engines:
            self._engines[key] = self._engine_factory(table)
        return self._engines[key]

    def _test(self, table: Table, x: str, y: str, z: tuple[str, ...]) -> CIResult:
        engine = self._engine(table)
        cmi = engine.mutual_information((x,), (y,), z)
        df = degrees_of_freedom(table, x, y, z)
        if df <= 0 or table.n_rows == 0:
            return CIResult(statistic=cmi, p_value=1.0, method=self.name, df=df)
        g = 2.0 * table.n_rows * max(cmi, 0.0)
        return CIResult(
            statistic=cmi,
            p_value=float(scipy_stats.chi2.sf(g, df)),
            method=self.name,
            df=df,
        )


def _variants(dataset):
    nodes = dataset.nodes
    # The cube is pre-computed offline in the paper's setup (PostgreSQL
    # builds it ahead of time), so its construction is NOT part of the
    # measured discovery time.
    prebuilt_cube = DataCube(dataset.table, nodes)

    def preloaded_engine(table):
        engine = EntropyEngine(table, estimator="plugin", cube=prebuilt_cube)
        engine.preload([list(subset) for subset in powerset(nodes) if len(subset) <= 4])
        return engine

    return {
        "no_caching": lambda table: EntropyEngine(table, "plugin", caching=False),
        "caching": lambda table: EntropyEngine(table, "plugin"),
        "materialized": lambda table: EntropyEngine(table, "plugin", cube=prebuilt_cube),
        "cube+precomputed": preloaded_engine,
    }


@pytest.mark.parametrize("variant", ["no_caching", "caching", "materialized", "cube+precomputed"])
def test_fig6c_caching_ablation(variant, benchmark, report_sink):
    dataset = random_dataset(
        n_nodes=7, n_rows=scaled(20000), categories=3, expected_parents=1.5,
        strength=6.0, seed=55,
    )
    factory = _variants(dataset)[variant]
    benchmark.group = "fig6c"

    def run():
        # Fresh caches per round: the engine factory decides what survives.
        dataset.table.entropy_cache("plugin").clear()
        test = _EngineBackedChi2(factory)
        discoverer = CovariateDiscoverer(test, max_cond_size=2)
        return discoverer.discover(
            dataset.table, dataset.nodes[0], candidates=dataset.nodes
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    report_sink(
        "fig6c_caching",
        f"{variant:<17s} n={dataset.table.n_rows:>7d}  tests={result.n_tests:>5d}",
    )
    assert result.markov_boundary is not None
