"""Shard router scaling: RPS / p99 across process counts (BENCH_shard.json).

Stands up the same mixed workload against three topologies -- the
single-process service, a router over 2 shard workers, and a router over
4 shard workers -- and measures:

* **cold pass** -- every distinct spec once (empty caches everywhere);
* **sustained pass** -- a duplicate-heavy shuffle of the distinct specs
  from several client threads (every request is a repeat, the regime the
  warm-key map exists for), timed for requests-per-second and p99.

Correctness bars (always asserted, any core count):

* **byte identity** -- every topology returns byte-identical canonical
  result bytes for every spec; sharding must never change an answer;
* **warm routing** -- during the sustained pass the router must route
  >= 90% of duplicate requests via the warm-key map to the shard already
  holding the result (cache affinity, not just ring correctness).

Scaling bar (asserted only on >= 4 cores, otherwise ``pytest.skip`` --
skipped, not faked, on 1-core runners): the 4-shard topology must
sustain >= 2x the single-process RPS.  Below 4 cores the shard workers
time-slice one core, so the ratio measures the scheduler, not the tier.

The emitted ``BENCH_shard.json`` follows the regression-gate schema:
rows keyed by (engine, jobs) where ``jobs`` is the shard count -- shard
rows are parallel rows, so the gate only compares them against baselines
recorded on a matching ``cpu_count``.
"""

from __future__ import annotations

import os
import random
import threading
import time

import numpy as np
import pytest
from conftest import bench_scale, scaled, write_bench_json

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

#: Distinct GROUP BY shapes; crossed with datasets for the distinct-spec set.
SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
    "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region",
)
DATASETS = 4
CLIENT_THREADS = 4
#: 4-shard sustained RPS must clear this factor over single-process.
MIN_SCALE_FACTOR = 2.0
#: Duplicates must route to the holding shard at least this often.
MIN_WARM_ROUTE_RATE = 0.9


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _columns(n_rows: int, seed: int) -> dict:
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _topology(shards: int):
    """Start one topology; returns (client, router_or_none, shutdown)."""
    if shards == 0:
        service = AnalysisService()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

        def shutdown() -> None:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

        host, port = server.server_address[:2]
        return ServiceClient(f"http://{host}:{port}"), None, shutdown

    supervisor = ShardSupervisor(shards=shards, start_timeout=120.0)
    router = ShardRouter(supervisor.start())
    server = make_router_server(router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def shutdown() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        supervisor.close()

    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}"), router, shutdown


def _sustained_pass(client: ServiceClient, specs: list, repeats: int):
    """Duplicate-heavy traffic from several threads; returns latencies + wall."""
    orders = []
    for index in range(CLIENT_THREADS):
        order = list(specs) * repeats
        random.Random(index).shuffle(order)  # deterministic mixed order
        orders.append(order)
    latency_lists: list[list[float]] = [[] for _ in range(CLIENT_THREADS)]
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            for dataset, sql in orders[index]:
                start = time.perf_counter()
                client.query(dataset, sql)
                latency_lists[index].append(time.perf_counter() - start)
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    pool = [
        threading.Thread(target=worker, args=(i,)) for i in range(CLIENT_THREADS)
    ]
    wall_start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]
    latencies = sorted(lat for chunk in latency_lists for lat in chunk)
    return latencies, wall


def _percentile(latencies: list[float], fraction: float) -> float:
    return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]


def test_shard_scaling(benchmark, report_sink):
    n_rows = scaled(3000, minimum=600)
    repeats = scaled(6, minimum=3)
    columns = {f"d{i}": _columns(n_rows, seed=50 + i) for i in range(DATASETS)}
    specs = [
        (dataset, sql) for dataset in sorted(columns) for sql in SQL_VARIANTS
    ]

    benchmark.group = "shard_scaling"
    rows = []
    result_bytes: dict[str, dict] = {}

    def measure_all():
        for label, shards in (("single", 0), ("2-shards", 2), ("4-shards", 4)):
            client, router, shutdown = _topology(shards)
            try:
                for name, cols in columns.items():
                    client.register(name, columns=cols)

                cold_start = time.perf_counter()
                payloads = {}
                for dataset, sql in specs:
                    response = client.query(dataset, sql)
                    assert response["cached"] is False
                    payloads[f"{dataset}:{sql}"] = canonical_json_bytes(
                        response["result"]
                    )
                cold_seconds = time.perf_counter() - cold_start
                result_bytes[label] = payloads

                warm_hits_before = (
                    client.stats()["router"]["warm_hits"] if router else 0
                )
                latencies, wall = _sustained_pass(client, specs, repeats)
                row = {
                    "engine": f"shard-{label}",
                    "jobs": max(1, shards),
                    "seconds": wall,
                    "cold_seconds": cold_seconds,
                    "rps": len(latencies) / wall,
                    "p50_ms": 1000 * _percentile(latencies, 0.50),
                    "p99_ms": 1000 * _percentile(latencies, 0.99),
                }
                if router is not None:
                    warm_hits = (
                        client.stats()["router"]["warm_hits"] - warm_hits_before
                    )
                    row["warm_hit_rate"] = warm_hits / len(latencies)
                rows.append(row)
            finally:
                shutdown()
        return rows

    benchmark.pedantic(measure_all, rounds=1)

    # -- byte identity: sharding must never change an answer --
    for label in ("2-shards", "4-shards"):
        assert result_bytes[label] == result_bytes["single"], (
            f"{label} returned different result bytes than single-process"
        )

    # -- warm routing: duplicates go to the shard holding the result --
    for row in rows:
        if "warm_hit_rate" in row:
            assert row["warm_hit_rate"] >= MIN_WARM_ROUTE_RATE, (
                f"{row['engine']}: only {row['warm_hit_rate']:.0%} of duplicate "
                f"requests reached the holding shard via the warm-key map "
                f"(need >= {MIN_WARM_ROUTE_RATE:.0%})"
            )

    by_engine = {row["engine"]: row for row in rows}
    scale_factor = by_engine["shard-4-shards"]["rps"] / by_engine["shard-single"]["rps"]
    payload = {
        "benchmark": "shard_scaling",
        "workload": {
            "datasets": DATASETS,
            "n_rows": n_rows,
            "distinct_specs": len(specs),
            "repeats": repeats,
            "client_threads": CLIENT_THREADS,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "scale_factor_4_shards": scale_factor,
        "results": rows,
    }
    write_bench_json("shard", payload)

    for row in rows:
        warm = (
            f"  warm-route={row['warm_hit_rate']:.0%}"
            if "warm_hit_rate" in row
            else ""
        )
        report_sink(
            "shard_scaling",
            f"{row['engine']:<15s} cold={row['cold_seconds']:6.2f}s  "
            f"{row['rps']:7.1f} req/s  p50={row['p50_ms']:6.2f}ms  "
            f"p99={row['p99_ms']:6.2f}ms{warm}",
        )
    report_sink(
        "shard_scaling",
        f"4-shard sustained RPS = {scale_factor:.2f}x single-process "
        f"(bar {MIN_SCALE_FACTOR:.0f}x on >= 4 cores)",
    )

    cores = os.cpu_count() or 1
    if cores >= 4:
        assert scale_factor >= MIN_SCALE_FACTOR, (
            f"4 shards must sustain >= {MIN_SCALE_FACTOR:.0f}x single-process "
            f"RPS on {cores} cores, got {scale_factor:.2f}x"
        )
    else:
        pytest.skip(
            f"RPS scaling bar needs >= 4 cores (found {cores}): shards "
            f"time-slice one core, so the {scale_factor:.2f}x measured here "
            f"reflects the scheduler, not the tier -- skipped, not faked "
            f"(byte-identity and warm-routing bars asserted above)"
        )
