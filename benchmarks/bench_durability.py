"""Durability overhead and recovery speed (BENCH_durability.json).

Three timings around the job journal and router job failover, each with
its correctness bar asserted (byte identity is never traded for
durability -- the timings are only reported, the bytes are checked):

* **journal append overhead** -- warm job submits with and without a
  journal attached.  The delta is the fsync'd WAL line per transition;
  the ``journal-overhead`` row reports the journaled pass (the one a
  durable deployment pays).
* **journal replay** -- a fresh service pointed at the journal left by
  a "crashed" one (N jobs, disk cache holding every result) must
  resume all N under their original ids without recompute, and every
  restored payload must be byte-identical to the crashed service's.
* **failover re-read** -- a 2-shard K=2 cluster with finished jobs
  homed on the victim: after the kill, reading every job id through the
  router (lazy resurrection onto the warm survivor) must answer under
  the original public ids with identical bytes; the row times the whole
  re-read loop, kill to last byte.

Rows follow the regression-gate schema (``engine``/``jobs``/``seconds``
plus workload metadata and ``calibration_seconds``).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server
from repro.service.spec import spec_from_dict

DATASET = "staples"
SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
    "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region",
)


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _columns(n_rows: int, seed: int) -> dict:
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _spec(sql: str) -> object:
    return spec_from_dict({"kind": "query", "dataset": DATASET, "sql": sql})


def _warm_submits(service: AnalysisService, submits: int) -> float:
    """Seconds for ``submits`` warm (already-cached) job submissions."""
    manager = service.job_manager
    start = time.perf_counter()
    for index in range(submits):
        job = manager.submit(_spec(SQL_VARIANTS[index % len(SQL_VARIANTS)]))
        manager.wait(job.id, timeout=120)
    return time.perf_counter() - start


def _journal_rows(columns: dict, submits: int, tmp_path) -> tuple[list, dict]:
    """The append-overhead and replay rows, plus replay metadata."""
    rows = []
    journal_dir = str(tmp_path / "journal")
    disk_cache = str(tmp_path / "cache")

    expected: dict[str, bytes] = {}
    crashed = AnalysisService(job_journal=journal_dir, disk_cache=disk_cache)
    try:
        crashed.register(DATASET, columns=columns)
        for sql in SQL_VARIANTS:
            expected[sql] = crashed.query(DATASET, sql).payload  # warm-up
        journaled_seconds = _warm_submits(crashed, submits)
    finally:
        crashed.close()  # "crash": the journal and disk cache remain

    plain = AnalysisService(disk_cache=disk_cache)
    try:
        plain.register(DATASET, columns=columns)
        for sql in SQL_VARIANTS:
            plain.query(DATASET, sql)
        plain_seconds = _warm_submits(plain, submits)
    finally:
        plain.close()

    rows.append(
        {"engine": "journal-overhead", "jobs": 1, "seconds": journaled_seconds}
    )

    restarted = AnalysisService(job_journal=journal_dir, disk_cache=disk_cache)
    try:
        restarted.register(DATASET, columns=columns)
        start = time.perf_counter()
        recovery = restarted.recover_jobs()
        replay_seconds = time.perf_counter() - start
        # Automatic compaction may have dropped durable finished records
        # at large scales; whatever the journal kept must all come back.
        resumed = recovery["resumed"]
        assert 1 <= resumed <= submits, recovery
        assert recovery["corrupt"] == 0, recovery
        assert recovery["skipped"] == 0, recovery
        manager = restarted.job_manager
        replayed = manager.list(limit=submits)
        assert len(replayed) == resumed, (len(replayed), recovery)
        for snapshot in replayed:
            job = manager.wait(snapshot["id"], timeout=120)
            payload = job.service_result().payload
            assert payload == expected[job.spec.sql], (
                f"replayed job {job.id} diverged from the pre-crash bytes"
            )
    finally:
        restarted.close()
    rows.append({"engine": "journal-replay", "jobs": 1, "seconds": replay_seconds})

    meta = {
        "journaled_submit_ms": 1000 * journaled_seconds / submits,
        "plain_submit_ms": 1000 * plain_seconds / submits,
        "replayed_jobs": resumed,
        "replay_jobs_per_second": resumed / replay_seconds,
    }
    return rows, meta


def _failover_row(columns: dict, jobs: int) -> tuple[dict, dict]:
    """Kill the primary and time re-reading every job id it owned."""
    supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
    router = ShardRouter(supervisor.start(), replicas=2)
    server = make_router_server(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    try:
        client.register(DATASET, columns=columns)
        record = router._registrations[DATASET]
        primary = record.locations[0]
        expected = {}
        for sql in SQL_VARIANTS:
            response = client.query(DATASET, sql)
            expected[sql] = canonical_json_bytes(response["result"])
            client.query(DATASET, sql)  # warm the round-robin partner too

        victims = []
        for index in range(jobs):
            sql = SQL_VARIANTS[index % len(SQL_VARIANTS)]
            accepted = client.submit(
                {"kind": "query", "dataset": DATASET, "sql": sql}
            )
            client.wait(accepted["job_id"], timeout=120)
            if accepted["job_id"].startswith(f"{primary}."):
                victims.append((accepted["job_id"], sql))
        assert victims, "no job landed on the primary replica"

        supervisor.kill(primary)
        start = time.perf_counter()
        router.mark_dead(router._backends[primary])
        for job_id, sql in victims:
            finished = client.wait(job_id, timeout=120)
            assert finished["job"]["id"] == job_id
            assert canonical_json_bytes(finished["result"]) == expected[sql], (
                f"failover changed the bytes of {job_id}"
            )
        seconds = time.perf_counter() - start
        failovers = client.stats()["router"]["job_failovers"]
        assert failovers >= len(victims), (failovers, len(victims))
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()
    row = {"engine": "job-failover", "jobs": 1, "seconds": seconds}
    return row, {"victim_jobs": len(victims)}


def test_durability_overhead_and_recovery(benchmark, report_sink, tmp_path):
    n_rows = scaled(2000, minimum=400)
    submits = scaled(60, minimum=12)
    failover_jobs = scaled(12, minimum=6)
    columns = _columns(n_rows, seed=80)

    benchmark.group = "durability"
    rows: list[dict] = []
    meta: dict = {}

    def measure_all():
        journal_rows, journal_meta = _journal_rows(columns, submits, tmp_path)
        rows.extend(journal_rows)
        meta.update(journal_meta)
        failover_row, failover_meta = _failover_row(columns, failover_jobs)
        rows.append(failover_row)
        meta.update(failover_meta)
        return rows

    benchmark.pedantic(measure_all, rounds=1)

    payload = {
        "benchmark": "durability",
        "workload": {
            "n_rows": n_rows,
            "submits": submits,
            "failover_jobs": failover_jobs,
            "distinct_specs": len(SQL_VARIANTS),
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        **meta,
        "results": rows,
    }
    write_bench_json("durability", payload)

    report_sink(
        "durability",
        f"warm submit     {meta['journaled_submit_ms']:6.2f} ms journaled  "
        f"vs {meta['plain_submit_ms']:6.2f} ms plain",
    )
    report_sink(
        "durability",
        f"journal replay  {meta['replay_jobs_per_second']:7.1f} jobs/s "
        f"(all byte-identical)",
    )
    for row in rows:
        report_sink(
            "durability", f"{row['engine']:<16s} {row['seconds']:7.3f} s"
        )
