"""Figure 8(b): cube benefit as the number of attributes grows (8/10/12).

Companion to Fig. 6(d): fixed data size, growing cube width.  The cube's
advantage holds across widths; the cube build itself grows exponentially
with the attribute count (which is why engines cap cubes at ~12
attributes -- the paper's observation about PostgreSQL).
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.datasets.random_data import random_dataset
from repro.infotheory.cache import EntropyEngine
from repro.relation.cube import DataCube
from repro.utils.subsets import bounded_subsets

ATTRIBUTE_COUNTS = [8, 10, 12]


@pytest.mark.parametrize("n_attributes", ATTRIBUTE_COUNTS)
@pytest.mark.parametrize("mode", ["cube", "no_cube"])
def test_fig8b_cube_vs_attributes(n_attributes, mode, benchmark, report_sink, bench_jobs):
    dataset = random_dataset(
        n_nodes=n_attributes, n_rows=scaled(30000), categories=2,
        expected_parents=1.5, strength=4.0, seed=80,
    )
    nodes = dataset.nodes
    cube = DataCube(dataset.table, nodes, engine=bench_jobs) if mode == "cube" else None
    benchmark.group = f"fig8b_attrs={n_attributes}"

    def run():
        engine = EntropyEngine(dataset.table, "plugin", cube=cube, caching=False)
        return sum(
            engine.entropy(subset) for subset in bounded_subsets(nodes, 2) if subset
        )

    total = benchmark(run)
    report_sink(
        "fig8b_cube_attrs",
        f"{mode:<8s} attrs={n_attributes:>2d} n={dataset.table.n_rows:>7d}  "
        f"workload checksum={total:.3f}",
    )
    assert total > 0
