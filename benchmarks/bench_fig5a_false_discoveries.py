"""Figure 5(a): how often do random SQL queries mislead the analyst?

The paper generates 1000 random carrier-comparison queries on FlightData,
rewrites each w.r.t. the covariates {Airport, Day, Month, DayOfWeek}, and
scatter-plots the naive difference against the rewritten difference.  The
headline numbers: for >10% of queries a significant difference becomes
insignificant after rewriting, and for ~20% the trend *reverses*.

This bench regenerates the two headline fractions (plus the raw pairs for
the scatter) on the FlightData generator.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
from conftest import scaled

from repro.core.rewrite import NoOverlapError, total_effect
from repro.datasets.flights import AIRPORTS, CARRIERS, flight_data
from repro.relation.predicates import And, In
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest
from repro.utils.validation import ensure_rng

ALPHA = 0.05
# The paper rewrites w.r.t. {Airport, Day, Month, DayOfWeek} on 50M rows.
# At laptop scale, conditioning on Day (28 values) splinters every query's
# subpopulation below testing power, so the rewritten difference would be
# "insignificant" for trivial reasons; we keep the informative covariates.
COVARIATES = ("Airport", "Month", "DayOfWeek")


def _random_query(rng: np.random.Generator) -> tuple[tuple[str, str], list[str]]:
    pair = tuple(sorted(rng.choice(len(CARRIERS), size=2, replace=False)))
    carriers = (CARRIERS[pair[0]], CARRIERS[pair[1]])
    n_airports = int(rng.integers(2, len(AIRPORTS) + 1))
    chosen = rng.choice(len(AIRPORTS), size=n_airports, replace=False)
    return carriers, [AIRPORTS[index] for index in sorted(chosen)]


def _query_outcome(table: Table, carriers, airports, conditional_test):
    where = And([In("Carrier", list(carriers)), In("Airport", airports)])
    context = table.where(where)
    if context.n_groups(["Carrier"]) < 2:
        return None
    chi2 = ChiSquaredTest()
    naive = total_effect(context, "Carrier", ["Delayed"], [])
    naive_p = chi2.test(context, "Carrier", "Delayed").p_value
    try:
        adjusted = total_effect(context, "Carrier", ["Delayed"], list(COVARIATES))
    except NoOverlapError:
        return None
    from repro.core.detector import with_joint_column

    augmented = with_joint_column(context, COVARIATES, "__z__")
    adjusted_p = conditional_test.test(augmented, "Carrier", "Delayed", ("__z__",)).p_value
    return (
        naive.difference("Delayed"),
        naive_p,
        adjusted.difference("Delayed"),
        adjusted_p,
    )


def test_fig5a_false_discoveries(benchmark, report_sink):
    table = flight_data(n_rows=scaled(40000), seed=17)
    n_queries = scaled(200, minimum=50)
    rng = ensure_rng(99)
    from repro.stats.hybrid import HybridTest

    conditional_test = HybridTest(n_permutations=200, seed=5)

    def run():
        outcomes = []
        for _ in range(n_queries):
            carriers, airports = _random_query(rng)
            result = _query_outcome(table, carriers, airports, conditional_test)
            if result is not None:
                outcomes.append(result)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit = lambda line="": report_sink("fig5a_false_discoveries", line)  # noqa: E731

    significant = [o for o in outcomes if o[1] < ALPHA]
    became_insignificant = [o for o in significant if o[3] >= ALPHA]
    reversed_trend = [
        o for o in outcomes if o[0] * o[2] < 0 and (o[1] < ALPHA or o[3] < ALPHA)
    ]

    emit("=== Fig. 5(a): effect of query rewriting on random FlightData queries ===")
    emit(f"random queries evaluated:          {len(outcomes)}")
    emit(f"significant naive differences:     {len(significant)}")
    emit(
        f"became insignificant after rewrite: {len(became_insignificant)} "
        f"({100 * len(became_insignificant) / max(len(significant), 1):.1f}% of significant)"
    )
    emit(
        f"trend reversed by rewriting:        {len(reversed_trend)} "
        f"({100 * len(reversed_trend) / max(len(outcomes), 1):.1f}% of all)"
    )
    emit("")
    emit("scatter pairs (naive diff, rewritten diff) -- first 20:")
    for naive_diff, _, adjusted_diff, _ in outcomes[:20]:
        emit(f"  {naive_diff:+.4f}  ->  {adjusted_diff:+.4f}")

    # Paper shape: a non-trivial fraction of discoveries are spurious.
    assert len(outcomes) >= n_queries * 0.5
    assert len(became_insignificant) / max(len(significant), 1) > 0.05
    assert len(reversed_trend) / max(len(outcomes), 1) > 0.05
