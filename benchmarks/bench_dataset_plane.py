"""Dataset plane + grouped contingency kernel (BENCH_kernels.json).

Two measurements back the PR-3 performance claims:

* **Task dispatch** -- an engine fan-out over the 4-attribute flights
  workload, once with tasks embedding the full ``Table`` (the pre-plane
  transport) and once with tasks carrying a published ``TableRef``.
  Records wall time per fan-out and the pickled payload per task; the
  bytes ratio is asserted >= 10x (it is deterministic, not a timing).
* **Grouped kernel** -- ``conditional_contingencies`` via the single-pass
  ``(z, x, y)`` bincount kernel vs the per-group scan, across conditioning
  group counts.  Under ``REPRO_BENCH_STRICT=1`` the kernel must be >= 3x
  faster at >= 1000 groups (the wide-Z regime group sampling targets).
* **Replicate payloads** -- MIT's replicate fan-out over wide marginals,
  once with tasks embedding each group's marginal vectors (the pre-plane
  transport) and once with tasks carrying ``(GroupedRef, group_index)``
  against the tensor published once on the plane.  The bytes-per-task
  ratio is asserted >= 10x (deterministic, not a timing), and both
  fan-outs must produce bit-identical replicate statistics.

Emits ``BENCH_kernels.json`` with calibration + workload metadata for
``scripts/check_bench_regression.py``.  Parallel (jobs=2) dispatch rows
gate only on runners whose ``cpu_count`` matches the committed baseline;
the single-threaded kernel rows gate everywhere via calibration
normalization.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.datasets.flights import flight_data
from repro.engine import ParallelEngine, resolve_table, spawn_seeds
from repro.relation.table import Table
from repro.stats.contingency import (
    _conditional_contingencies_scan,
    conditional_contingencies,
    contingencies_from_grouped,
)
from repro.stats.permutation import _null_replicate_chunk

#: Fan-out shape for the dispatch comparison (tasks per map call).
DISPATCH_TASKS = 32
DISPATCH_JOBS = 2

#: Replicate-payload workload: wide marginals (|Pi_X| x |Pi_Y|) across a
#: conditioning attribute -- the regime where marginal-list payloads grow
#: while GroupedRef payloads stay O(1).
REPLICATE_CARDINALITIES = (128, 96, 16)  # |X|, |Y|, |Z| domains
#: Replicates per task.  Small on purpose: the payload measurement (the
#: actual gate) is independent of it, and Patefield sampling over
#: 128 x 96 marginals is expensive enough that the full in-test block
#: size would dominate the smoke-benchmark budget for no extra signal.
REPLICATE_CHUNK = 25

#: (label, z-column cardinalities) for the kernel comparison; observed
#: group counts land near the cardinality product.
KERNEL_CASES = (
    ("g32", (32,)),
    ("g1024", (32, 32)),
    ("g4096", (64, 64)),
)


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _dispatch_task(task):
    """Minimal engine task: resolve the handle, touch one column."""
    handle, column = task
    table = resolve_table(handle)
    return int(table.codes(column)[0])


def test_dispatch_payloads(benchmark, report_sink):
    table = flight_data(n_rows=scaled(50000, minimum=5000), seed=7).project(
        ["Carrier", "Airport", "Year", "Delayed"]
    )
    benchmark.group = "dataset_plane"

    def fan_out(handle):
        with ParallelEngine(jobs=DISPATCH_JOBS, min_tasks=1) as engine:
            tasks = [(handle, "Carrier")] * DISPATCH_TASKS
            engine.map(_dispatch_task, tasks)  # warm the pool (fork cost)
            start = time.perf_counter()
            engine.map(_dispatch_task, tasks)
            return time.perf_counter() - start

    table_seconds = benchmark.pedantic(lambda: fan_out(table), rounds=1)

    with ParallelEngine(jobs=DISPATCH_JOBS, min_tasks=1) as publisher:
        ref = publisher.publish(table)
        ref_bytes = len(pickle.dumps((ref, "Carrier")))
        table_bytes = len(pickle.dumps((table, "Carrier")))
        tasks = [(ref, "Carrier")] * DISPATCH_TASKS
        publisher.map(_dispatch_task, tasks)  # warm pool + resident tables
        start = time.perf_counter()
        publisher.map(_dispatch_task, tasks)
        ref_seconds = time.perf_counter() - start

    rows = [
        {
            "engine": "dispatch_table",
            "jobs": DISPATCH_JOBS,
            "seconds": table_seconds,
            "bytes_per_task": table_bytes,
        },
        {
            "engine": "dispatch_ref",
            "jobs": DISPATCH_JOBS,
            "seconds": ref_seconds,
            "bytes_per_task": ref_bytes,
        },
    ]
    for row in rows:
        report_sink(
            "dataset_plane",
            f"{row['engine']:<15s} jobs={row['jobs']}  "
            f"{row['seconds']:8.3f}s  {row['bytes_per_task']:>10d} B/task",
        )
    ratio = table_bytes / ref_bytes
    report_sink("dataset_plane", f"payload reduction: {ratio:.0f}x fewer bytes/task")
    assert ratio >= 10.0, (
        f"TableRef payload only {ratio:.1f}x smaller than table payload"
    )
    _merge_payload(rows)


def test_replicate_payload(benchmark, report_sink):
    """bytes/task of MIT replicate tasks: marginal lists vs GroupedRef."""
    rng = np.random.default_rng(29)
    n = scaled(60000, minimum=20000)
    x_card, y_card, z_card = REPLICATE_CARDINALITIES
    table = Table.from_columns(
        {
            "X": rng.integers(0, x_card, n).tolist(),
            "Y": rng.integers(0, y_card, n).tolist(),
            "Z": rng.integers(0, z_card, n).tolist(),
        }
    )
    benchmark.group = "dataset_plane"
    grouped = table.grouped_contingencies("X", "Y", ("Z",))
    assert grouped is not None
    groups = contingencies_from_grouped(table, grouped, ("Z",))
    work = [group for group in groups if min(group.matrix.shape) >= 2]
    seeds = spawn_seeds(123, len(work))

    def measure():
        rows = []
        with ParallelEngine(jobs=DISPATCH_JOBS, min_tasks=1) as engine:
            marginal_tasks = [
                (g.matrix.sum(axis=1), g.matrix.sum(axis=0), REPLICATE_CHUNK, s, "plugin")
                for g, s in zip(work, seeds)
            ]
            handle = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
            if handle is None:
                import pytest

                pytest.skip("shared memory unavailable: no GroupedRef transport")
            try:
                ref_tasks = [
                    (handle, g.index, REPLICATE_CHUNK, s, "plugin")
                    for g, s in zip(work, seeds)
                ]
                # One pickled chunk is what actually crosses the pipe:
                # per-task bytes include the in-chunk sharing of the ref.
                marginal_bytes = len(pickle.dumps(marginal_tasks)) / len(work)
                ref_bytes = len(pickle.dumps(ref_tasks)) / len(work)
                engine.map(_null_replicate_chunk, ref_tasks)  # warm the pool
                start = time.perf_counter()
                marginal_partials = engine.map(_null_replicate_chunk, marginal_tasks)
                marginal_seconds = time.perf_counter() - start
                start = time.perf_counter()
                ref_partials = engine.map(_null_replicate_chunk, ref_tasks)
                ref_seconds = time.perf_counter() - start
            finally:
                engine.release_grouped(handle)
        assert all(
            np.array_equal(first, second)
            for first, second in zip(marginal_partials, ref_partials)
        ), "GroupedRef replicate statistics diverged from marginal-list tasks"
        # No "seconds" in the JSON rows: both arms spend their wall time
        # in identical Patefield sampling (the kernel rows already gate
        # compute), and a jobs=2 map on a loaded 1-core box swings far
        # beyond the gate tolerance.  The payload bytes are exact and are
        # asserted below; the timings go to the human-readable report.
        rows.append(
            {
                "engine": "replicate_marginals",
                "jobs": DISPATCH_JOBS,
                "bytes_per_task": marginal_bytes,
            }
        )
        rows.append(
            {
                "engine": "replicate_groupedref",
                "jobs": DISPATCH_JOBS,
                "bytes_per_task": ref_bytes,
            }
        )
        return rows, marginal_bytes / ref_bytes, (marginal_seconds, ref_seconds)

    rows, ratio, seconds = benchmark.pedantic(measure, rounds=1)
    for row, elapsed in zip(rows, seconds):
        report_sink(
            "dataset_plane",
            f"{row['engine']:<22s} jobs={row['jobs']}  {elapsed:8.3f}s  "
            f"{row['bytes_per_task']:>10.0f} B/task",
        )
    report_sink(
        "dataset_plane",
        f"replicate payload reduction: {ratio:.0f}x fewer bytes/task "
        f"({len(work)} groups, marginals {REPLICATE_CARDINALITIES[0]}x"
        f"{REPLICATE_CARDINALITIES[1]})",
    )
    assert ratio >= 10.0, (
        f"GroupedRef replicate payload only {ratio:.1f}x smaller than "
        f"marginal-list payload"
    )
    _merge_payload(rows)


def test_grouped_kernel(benchmark, report_sink):
    rng = np.random.default_rng(23)
    n = scaled(120000, minimum=30000)
    repeats = 12
    benchmark.group = "dataset_plane"

    def measure_all():
        rows = []
        speedups: dict[str, float] = {}
        for label, cardinalities in KERNEL_CASES:
            columns = {
                "X": rng.integers(0, 4, n).tolist(),
                "Y": rng.integers(0, 3, n).tolist(),
            }
            z = tuple(f"Z{index}" for index in range(len(cardinalities)))
            for name, cardinality in zip(z, cardinalities):
                columns[name] = rng.integers(0, cardinality, n).tolist()
            table = Table.from_columns(columns)
            n_groups = table.n_groups(z)

            def run(fn):
                result = None
                start = time.perf_counter()
                for _ in range(repeats):
                    result = fn(table, "X", "Y", z)
                return time.perf_counter() - start, result

            scan_seconds, scan_groups = run(_conditional_contingencies_scan)
            kernel_seconds, kernel_groups = run(conditional_contingencies)
            assert len(scan_groups) == len(kernel_groups) == n_groups
            assert all(
                np.array_equal(fast.matrix, reference.matrix)
                for fast, reference in zip(kernel_groups, scan_groups)
            )
            speedup = (
                scan_seconds / kernel_seconds if kernel_seconds > 0 else float("inf")
            )
            speedups[label] = speedup
            rows.append(
                {
                    "engine": f"kernel_scan_{label}",
                    "jobs": 1,
                    "seconds": scan_seconds,
                    "groups": n_groups,
                }
            )
            rows.append(
                {
                    "engine": f"kernel_grouped_{label}",
                    "jobs": 1,
                    "seconds": kernel_seconds,
                    "groups": n_groups,
                }
            )
            report_sink(
                "dataset_plane",
                f"{label:<6s} groups={n_groups:<6d} scan={scan_seconds:7.3f}s  "
                f"grouped={kernel_seconds:7.3f}s  speedup={speedup:.1f}x",
            )
        return rows, speedups

    rows, speedups = benchmark.pedantic(measure_all, rounds=1)

    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        wide = min(speedups["g1024"], speedups["g4096"])
        assert wide >= 3.0, (
            f"grouped kernel only {wide:.1f}x faster than the per-group scan "
            f"at >=1000 groups"
        )
    _merge_payload(rows)


# ----------------------------------------------------------------------


_ROWS: list[dict] = []


def _merge_payload(rows: list[dict]) -> None:
    """Accumulate rows from both tests into one BENCH_kernels.json."""
    _ROWS.extend(rows)
    payload = {
        "benchmark": "dataset_plane",
        "workload": {
            "dispatch_tasks": DISPATCH_TASKS,
            "kernel_cases": [label for label, _ in KERNEL_CASES],
            "replicate_cardinalities": list(REPLICATE_CARDINALITIES),
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "results": list(_ROWS),
    }
    write_bench_json("kernels", payload)
