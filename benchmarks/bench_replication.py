"""Hot-dataset read scaling with replication (BENCH_replication.json).

The workload every replication story is judged on: ONE hot dataset and a
duplicate-heavy read stream.  Without replication (``K=1``) every warm
read pins the single shard holding the dataset; with ``K=2`` the router
round-robins warm reads across both replicas, so sustained read RPS
should scale with the replica count.  Both topologies run the same two
shard processes -- only ``replicas`` differs, so the delta is the
replication tier, not the process count.

Correctness bars (always asserted, any core count):

* **replica byte identity** -- after the warm-up, each replica shard is
  queried *directly* for every spec and must return canonical result
  bytes identical to the other replica and to the routed K=1 answer;
  any replica divergence is a failed byte comparison (the black-box
  consistency check replication rides on);
* **replica fan-out** -- the K=2 catalog must report two live replicas
  holding the hot dataset, and both must have served sustained traffic.

Scaling bar (asserted only on >= 4 cores, otherwise ``pytest.skip`` --
skipped, not faked, on small runners): K=2 sustained RPS must reach
>= 1.5x the K=1 RPS.  Below 4 cores the replicas time-slice one core and
the ratio measures the scheduler, not the tier.

The emitted ``BENCH_replication.json`` follows the regression-gate
schema: rows are keyed by (engine, jobs) with ``jobs`` = the replica
count, so parallel (K=2) rows only gate against baselines recorded on a
matching ``cpu_count``.
"""

from __future__ import annotations

import os
import random
import threading
import time

import numpy as np
import pytest
from conftest import bench_scale, scaled, write_bench_json

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

#: Distinct read shapes on the single hot dataset.
SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
    "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region",
)
HOT_DATASET = "hot"
SHARDS = 2
CLIENT_THREADS = 4
#: K=2 sustained RPS must clear this factor over K=1 (on >= 4 cores).
MIN_SCALE_FACTOR = 1.5


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _columns(n_rows: int, seed: int) -> dict:
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _topology(replicas: int):
    """Two shards behind a router at the given K; returns (client, router,
    supervisor, shutdown)."""
    supervisor = ShardSupervisor(shards=SHARDS, start_timeout=120.0)
    router = ShardRouter(supervisor.start(), replicas=replicas)
    server = make_router_server(router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def shutdown() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        supervisor.close()

    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}"), router, supervisor, shutdown


def _sustained_pass(client: ServiceClient, specs: list, repeats: int):
    """Duplicate-heavy traffic from several threads; returns latencies + wall."""
    orders = []
    for index in range(CLIENT_THREADS):
        order = list(specs) * repeats
        random.Random(index).shuffle(order)  # deterministic mixed order
        orders.append(order)
    latency_lists: list[list[float]] = [[] for _ in range(CLIENT_THREADS)]
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            for sql in orders[index]:
                start = time.perf_counter()
                client.query(HOT_DATASET, sql)
                latency_lists[index].append(time.perf_counter() - start)
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    pool = [
        threading.Thread(target=worker, args=(i,)) for i in range(CLIENT_THREADS)
    ]
    wall_start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]
    latencies = sorted(lat for chunk in latency_lists for lat in chunk)
    return latencies, wall


def _percentile(latencies: list[float], fraction: float) -> float:
    return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]


def test_replication_read_scaling(benchmark, report_sink):
    n_rows = scaled(3000, minimum=600)
    repeats = scaled(8, minimum=4)
    columns = _columns(n_rows, seed=70)
    specs = list(SQL_VARIANTS)

    benchmark.group = "replication"
    rows = []
    routed_bytes: dict[int, dict[str, bytes]] = {}
    replica_bytes: dict[str, dict[str, bytes]] = {}

    def measure_all():
        for replicas in (1, 2):
            client, router, supervisor, shutdown = _topology(replicas)
            try:
                client.register(HOT_DATASET, columns=columns)
                placement = client.replicas(HOT_DATASET)
                if replicas == 2:
                    assert len(placement) == 2, (
                        f"K=2 register must fan out to 2 replicas, got {placement}"
                    )

                # Cold pass, then one untimed warm-up lap so every replica
                # holds every key before the timed sustained pass.
                payloads = {}
                for sql in specs:
                    response = client.query(HOT_DATASET, sql)
                    assert response["cached"] is False
                    payloads[sql] = canonical_json_bytes(response["result"])
                routed_bytes[replicas] = payloads
                for _ in range(2 * replicas):
                    for sql in specs:
                        client.query(HOT_DATASET, sql)

                served_before = {
                    shard: client.stats()["shards"][shard]["requests"]
                    for shard in placement
                }
                latencies, wall = _sustained_pass(client, specs, repeats)
                row = {
                    "engine": f"replicas-{replicas}",
                    "jobs": replicas,
                    "seconds": wall,
                    "rps": len(latencies) / wall,
                    "p50_ms": 1000 * _percentile(latencies, 0.50),
                    "p99_ms": 1000 * _percentile(latencies, 0.99),
                }
                if replicas == 2:
                    row["served_per_replica"] = {
                        shard: client.stats()["shards"][shard]["requests"]
                        - served_before[shard]
                        for shard in placement
                    }
                    # Replica byte identity, checked at the source: ask
                    # each replica shard directly, bypassing the router.
                    for shard in placement:
                        url = supervisor.backend(shard).url
                        direct = ServiceClient(url)
                        replica_bytes[shard] = {
                            sql: canonical_json_bytes(
                                direct.query(HOT_DATASET, sql)["result"]
                            )
                            for sql in specs
                        }
                rows.append(row)
            finally:
                shutdown()
        return rows

    benchmark.pedantic(measure_all, rounds=1)

    # -- replica byte identity: always asserted, any core count --
    assert routed_bytes[2] == routed_bytes[1], (
        "K=2 routed answers differ from K=1 routed answers"
    )
    for shard, payloads in replica_bytes.items():
        assert payloads == routed_bytes[1], (
            f"replica {shard} diverged from the K=1 answer bytes"
        )

    # -- fan-out: both replicas carried sustained traffic --
    (k2_row,) = [row for row in rows if row["engine"] == "replicas-2"]
    total_reads = CLIENT_THREADS * len(specs) * repeats
    for shard, served in k2_row["served_per_replica"].items():
        assert served >= total_reads // 4, (
            f"replica {shard} served only {served} of {total_reads} "
            f"sustained reads -- round-robin is not balancing"
        )

    by_engine = {row["engine"]: row for row in rows}
    scale_factor = by_engine["replicas-2"]["rps"] / by_engine["replicas-1"]["rps"]
    payload = {
        "benchmark": "replication",
        "workload": {
            "hot_datasets": 1,
            "n_rows": n_rows,
            "distinct_specs": len(specs),
            "repeats": repeats,
            "client_threads": CLIENT_THREADS,
            "shards": SHARDS,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "scale_factor_k2": scale_factor,
        "results": rows,
    }
    write_bench_json("replication", payload)

    for row in rows:
        report_sink(
            "replication",
            f"{row['engine']:<12s} {row['rps']:7.1f} req/s  "
            f"p50={row['p50_ms']:6.2f}ms  p99={row['p99_ms']:6.2f}ms",
        )
    report_sink(
        "replication",
        f"K=2 hot-dataset RPS = {scale_factor:.2f}x K=1 "
        f"(bar {MIN_SCALE_FACTOR:.1f}x on >= 4 cores)",
    )

    cores = os.cpu_count() or 1
    if cores >= 4:
        assert scale_factor >= MIN_SCALE_FACTOR, (
            f"K=2 must sustain >= {MIN_SCALE_FACTOR:.1f}x the K=1 hot-dataset "
            f"RPS on {cores} cores, got {scale_factor:.2f}x"
        )
    else:
        pytest.skip(
            f"RPS scaling bar needs >= 4 cores (found {cores}): replicas "
            f"time-slice one core, so the {scale_factor:.2f}x measured here "
            f"reflects the scheduler, not the tier -- skipped, not faked "
            f"(replica byte-identity and fan-out bars asserted above)"
        )
