"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md Sec. 3).  Conventions:

* every benchmark calls the ``benchmark`` fixture (so ``pytest benchmarks/
  --benchmark-only`` collects exactly these);
* heavyweight experiments run once via ``benchmark.pedantic(rounds=1)``;
* each experiment prints its paper-style rows *and* appends them to
  ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them;
* sizes default to laptop scale and grow with ``REPRO_BENCH_SCALE`` (a
  float multiplier, default 1.0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """The global size multiplier (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter."""
    return max(minimum, int(base * bench_scale()))


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Start every benchmark session with an empty results archive."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    yield


@pytest.fixture
def report_sink():
    """Returns a function that prints a line and archives it per-experiment.

    Archives append, so parametrized benchmark cases (one per table row /
    figure series) accumulate into a single per-experiment file.
    """
    handles: dict[str, list[str]] = {}

    def sink(experiment: str, line: str = "") -> None:
        handles.setdefault(experiment, []).append(line)
        print(line)

    yield sink

    for experiment, lines in handles.items():
        path = RESULTS_DIR / f"{experiment}.txt"
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
