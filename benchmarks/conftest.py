"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md Sec. 3).  Conventions:

* every benchmark calls the ``benchmark`` fixture (so ``pytest benchmarks/
  --benchmark-only`` collects exactly these);
* heavyweight experiments run once via ``benchmark.pedantic(rounds=1)``;
* each experiment prints its paper-style rows *and* appends them to
  ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them;
* sizes default to laptop scale and grow with ``REPRO_BENCH_SCALE`` (a
  float multiplier, default 1.0);
* machine-readable benchmarks write ``BENCH_<name>.json`` into
  ``benchmarks/results/`` via :func:`write_bench_json`; CI compares those
  against the committed baselines in ``benchmarks/baselines/`` with
  ``scripts/check_bench_regression.py``;
* the execution-engine worker count defaults to serial and grows with
  ``REPRO_BENCH_JOBS`` or ``pytest --jobs N`` (the ``bench_jobs``
  fixture).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_DIR = Path(__file__).parent / "baselines"


def bench_scale() -> float:
    """The global size multiplier (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter."""
    return max(minimum, int(base * bench_scale()))


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help="execution-engine worker count for benchmarks "
        "(default: env REPRO_BENCH_JOBS or 1)",
    )


@pytest.fixture(scope="session")
def bench_jobs(request: pytest.FixtureRequest) -> int:
    """Worker count for engine-aware benchmarks (``--jobs`` / env)."""
    option = request.config.getoption("--jobs")
    if option is not None:
        return max(1, option)
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def write_bench_json(name: str, payload: dict[str, Any]) -> Path:
    """Write one machine-readable benchmark result (``BENCH_<name>.json``).

    The payload should carry raw timings plus enough workload metadata
    (scale, sizes) for the regression gate to refuse apples-to-oranges
    comparisons.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Start every benchmark session with an empty results archive."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    for stale in RESULTS_DIR.glob("BENCH_*.json"):
        stale.unlink()
    yield


@pytest.fixture
def report_sink():
    """Returns a function that prints a line and archives it per-experiment.

    Archives append, so parametrized benchmark cases (one per table row /
    figure series) accumulate into a single per-experiment file.
    """
    handles: dict[str, list[str]] = {}

    def sink(experiment: str, line: str = "") -> None:
        handles.setdefault(experiment, []).append(line)
        print(line)

    yield sink

    for experiment, lines in handles.items():
        path = RESULTS_DIR / f"{experiment}.txt"
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
