"""Table 1: runtime of detection / explanation / resolution per dataset.

The paper reports seconds for the three HypDB phases on each of its five
evaluation datasets.  The same pipeline is timed here on the generators at
(scaled-down) paper sizes; the *ordering* -- FlightData and AdultData are
the expensive ones, Berkeley/Cancer/Staples near-instant -- is the shape
being reproduced.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.core.hypdb import HypDB
from repro.datasets import (
    adult_data,
    berkeley_data,
    cancer_data,
    flight_data,
    staples_data,
)

DATASETS = [
    # (name, build(), sql, paper columns/rows note)
    (
        "AdultData",
        lambda: adult_data(scaled(30000), seed=5),
        "SELECT Gender, avg(Income) FROM t GROUP BY Gender",
    ),
    (
        "StaplesData",
        lambda: staples_data(scaled(50000), seed=4),
        "SELECT Income, avg(Price) FROM t GROUP BY Income",
    ),
    (
        "BerkeleyData",
        lambda: berkeley_data(),
        "SELECT Gender, avg(Accepted) FROM t GROUP BY Gender",
    ),
    (
        "CancerData",
        lambda: cancer_data(scaled(2000), seed=3),
        "SELECT Lung_Cancer, avg(Car_Accident) FROM t GROUP BY Lung_Cancer",
    ),
    (
        "FlightData",
        lambda: flight_data(scaled(30000), seed=7),
        "SELECT Carrier, avg(Delayed) FROM t "
        "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
        "GROUP BY Carrier",
    ),
]


@pytest.mark.parametrize("name, build, sql", DATASETS, ids=[d[0] for d in DATASETS])
def test_table1_runtime(name, build, sql, benchmark, report_sink):
    table = build()
    db = HypDB(table, seed=1)

    report = benchmark.pedantic(lambda: db.analyze(sql), rounds=1, iterations=1)
    timings = report.timings
    report_sink(
        "table1_runtime",
        f"{name:<13s} cols={len(table.columns):>3d} rows={table.n_rows:>7d}  "
        f"Det={timings.detection:6.2f}s  Exp={timings.explanation:6.2f}s  "
        f"Res={timings.resolution:6.2f}s",
    )
    assert report.contexts, "analysis must produce at least one context"
