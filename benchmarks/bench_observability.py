"""Observability overhead: traced vs untraced warm path (BENCH_obs.json).

Stands up the analysis service in process, primes the result cache, and
measures the warm ``POST /query`` latency twice per round -- once with
tracing fully on (trace header sent, spans recorded, JSONL log written)
and once with the tracer disabled -- interleaved so machine drift hits
both sides equally.  Each side's cost is the **minimum over rounds** of
its per-round mean latency: the minimum is the noise-robust estimate of
what the path costs when the machine is quiet.

Acceptance bar: tracing may add at most ``MAX_OVERHEAD_FRACTION`` (5%)
to the warm request, with a small absolute floor per request so a
sub-millisecond warm path on a fast machine is not gated on scheduler
jitter.  A ``GET /metrics`` scrape latency is reported (not gated)
alongside.  The emitted ``BENCH_obs.json`` follows the regression-gate
schema: rows keyed by (engine, jobs), a calibration timing, and workload
metadata; both timing rows sit below the gate's 50 ms noise floor, so
they are reported rather than gated -- the overhead assertion here is
the real bar.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.request

import numpy as np
from conftest import bench_scale, scaled, write_bench_json

from repro.datasets import staples_data
from repro.obs.trace import TRACER
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
#: Tracing may add at most this fraction to the warm request latency...
MAX_OVERHEAD_FRACTION = 0.05
#: ...plus this many seconds per request (sub-millisecond jitter floor).
ABSOLUTE_FLOOR_SECONDS = 0.0005
#: Interleaved measurement rounds; each side's cost is the min over rounds.
ROUNDS = 5


def _calibration_seconds() -> float:
    """Time a fixed numpy workload to normalize cross-machine timings."""
    rng = np.random.default_rng(0)
    matrix = rng.random((400, 400))
    start = time.perf_counter()
    for _ in range(20):
        matrix = np.tanh(matrix @ matrix.T / 400.0)
    return time.perf_counter() - start


def _mean_warm_latency(client: ServiceClient, raw: bytes, requests: int,
                       traced: bool) -> float:
    """Mean warm /query latency over one batch, tracing on or off."""
    start = time.perf_counter()
    for _ in range(requests):
        handle = TRACER.begin() if traced else None
        try:
            status, _body = client.request_bytes("/query", raw)
        finally:
            TRACER.finish(handle)
        assert status == 200
    return (time.perf_counter() - start) / requests


def test_observability_overhead(benchmark, report_sink, tmp_path):
    table = staples_data(n_rows=scaled(4000, minimum=800), seed=31)
    requests_per_round = scaled(60, minimum=20)

    service = AnalysisService()
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://{host}:{port}")
    client.register(
        "obsbench", columns={name: table.column(name) for name in table.columns}
    )
    raw = b'{"dataset": "obsbench", "sql": "%s"}' % SQL.encode("utf-8")

    benchmark.group = "observability_overhead"
    traced_rounds: list[float] = []
    untraced_rounds: list[float] = []
    try:
        client.request_bytes("/query", raw)  # prime the result cache

        def run_rounds() -> None:
            for _round in range(ROUNDS):
                TRACER.configure(
                    enabled=True, log_dir=str(tmp_path / "traces"), scope="bench"
                )
                traced_rounds.append(
                    _mean_warm_latency(client, raw, requests_per_round, True)
                )
                TRACER.configure(enabled=False)
                untraced_rounds.append(
                    _mean_warm_latency(client, raw, requests_per_round, False)
                )

        benchmark.pedantic(run_rounds, rounds=1)

        metrics_start = time.perf_counter()
        with urllib.request.urlopen(
            client.base_url + "/metrics", timeout=30
        ) as response:
            assert response.status == 200
            exposition_bytes = len(response.read())
        metrics_seconds = time.perf_counter() - metrics_start
    finally:
        TRACER.close()
        TRACER.configure(enabled=True, scope="main")
        TRACER.clear()
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

    traced_seconds = min(traced_rounds)
    untraced_seconds = min(untraced_rounds)
    overhead = (
        (traced_seconds - untraced_seconds) / untraced_seconds
        if untraced_seconds > 0
        else 0.0
    )
    budget = untraced_seconds * (1.0 + MAX_OVERHEAD_FRACTION) + ABSOLUTE_FLOOR_SECONDS
    logs = list((tmp_path / "traces").glob("trace-bench-*.jsonl"))
    assert logs and all(log.stat().st_size > 0 for log in logs), (
        "the traced side never wrote its JSONL log -- it was not tracing"
    )

    rows = [
        {
            "engine": "service-warm-untraced",
            "jobs": 1,
            "seconds": untraced_seconds,
        },
        {
            "engine": "service-warm-traced",
            "jobs": 1,
            "seconds": traced_seconds,
            "overhead_fraction": overhead,
        },
        {
            "engine": "metrics-scrape",
            "jobs": 1,
            "seconds": metrics_seconds,
            "exposition_bytes": exposition_bytes,
        },
    ]
    payload = {
        "benchmark": "observability_overhead",
        "workload": {
            "dataset": "staples",
            "n_rows": table.n_rows,
            "sql": SQL,
            "requests_per_round": requests_per_round,
            "rounds": ROUNDS,
            "scale": bench_scale(),
        },
        "cpu_count": os.cpu_count(),
        "calibration_seconds": _calibration_seconds(),
        "results": rows,
    }
    write_bench_json("obs", payload)

    report_sink(
        "observability_overhead",
        f"warm /query untraced  {untraced_seconds * 1e3:8.3f} ms/req  "
        f"(min of {ROUNDS} rounds x {requests_per_round})",
    )
    report_sink(
        "observability_overhead",
        f"warm /query traced    {traced_seconds * 1e3:8.3f} ms/req  "
        f"({overhead:+.1%} overhead, header + spans + JSONL)",
    )
    report_sink(
        "observability_overhead",
        f"GET /metrics scrape   {metrics_seconds * 1e3:8.3f} ms  "
        f"({exposition_bytes} bytes of exposition)",
    )

    assert traced_seconds <= budget, (
        f"tracing overhead blew the bar: traced {traced_seconds * 1e3:.3f} ms/req "
        f"vs untraced {untraced_seconds * 1e3:.3f} ms/req "
        f"({overhead:+.1%}; allowed {MAX_OVERHEAD_FRACTION:.0%} "
        f"+ {ABSOLUTE_FLOOR_SECONDS * 1e3:.1f} ms floor)"
    )
