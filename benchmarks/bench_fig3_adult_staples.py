"""Figure 3: the fairness case studies -- AdultData (top) and StaplesData (bottom).

Regenerates both panels: SQL answer vs rewritten total / direct answers,
significance of each difference, and the coarse + fine explanations.  The
paper's findings being reproduced:

* AdultData -- a large naive gender/income gap; MaritalStatus carries most
  of the responsibility; the top fine-grained triple is the married-male /
  high-income pattern (the dataset-inconsistency insight); the *direct*
  effect of gender is statistically indistinguishable from zero.
* StaplesData -- low-income users see higher prices (significant, also as
  a total effect) but the direct effect vanishes: the discrimination is
  mediated entirely by distance to competitors' stores.
"""

from __future__ import annotations

from conftest import scaled

from repro.core.hypdb import HypDB
from repro.datasets import adult_data, staples_data

ALPHA = 0.01


def _emit_panel(emit, title, report):
    context = report.contexts[0]
    emit(f"=== {title} ===")
    emit(f"covariates Z: {list(report.covariates)}   mediators M: {list(report.mediators)}")
    emit(f"verdict: {'BIASED' if report.biased else 'unbiased'}")
    for estimate in (context.naive, context.total, context.direct):
        row = "  ".join(
            f"{value}: {estimate.average(value):.3f}"
            for value in estimate.treatment_values
        )
        emit(
            f"  {estimate.kind:<7s} {row}  diff={estimate.difference():+.4f}"
            f"  p={estimate.p_value():.4g}"
        )
    emit("  coarse explanations:")
    for item in context.coarse[:5]:
        emit(f"    {item.attribute:<15s} {item.responsibility:.2f}")
    for attribute, triples in context.fine.items():
        for rank, triple in enumerate(triples, start=1):
            emit(
                f"    fine[{attribute}] #{rank}: T={triple.treatment_value} "
                f"Y={triple.outcome_value} {attribute}={triple.attribute_value}"
            )
    emit("")


def test_fig3_adult(benchmark, report_sink):
    table = adult_data(n_rows=scaled(30000), seed=5)
    db = HypDB(table, seed=1)
    report = benchmark.pedantic(
        lambda: db.analyze("SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender"),
        rounds=1,
        iterations=1,
    )
    emit = lambda line="": report_sink("fig3_adult", line)  # noqa: E731
    _emit_panel(emit, "Fig. 3 (top): effect of gender on income, AdultData", report)

    context = report.contexts[0]
    assert report.biased
    assert context.naive.difference() > 0.1  # big naive gap (male - female)
    assert context.naive.p_value() < ALPHA
    assert abs(context.direct.difference()) < 0.03  # no direct disparity
    assert context.direct.p_value() >= ALPHA
    assert context.coarse[0].attribute == "MaritalStatus"
    top = context.fine["MaritalStatus"][0]
    assert (top.treatment_value, top.outcome_value, top.attribute_value) == (
        "Male", 1, "Married",
    )


def test_fig3_staples(benchmark, report_sink):
    table = staples_data(n_rows=scaled(50000), seed=4)
    db = HypDB(table, seed=1)
    report = benchmark.pedantic(
        lambda: db.analyze("SELECT Income, avg(Price) FROM StaplesData GROUP BY Income"),
        rounds=1,
        iterations=1,
    )
    emit = lambda line="": report_sink("fig3_staples", line)  # noqa: E731
    _emit_panel(emit, "Fig. 3 (bottom): effect of income on price, StaplesData", report)

    context = report.contexts[0]
    assert context.naive.average(0) > context.naive.average(1)  # low income pays more
    assert context.naive.p_value() < ALPHA
    assert context.total.p_value() < ALPHA  # total (indirect) effect is real
    assert abs(context.direct.difference()) < 0.005  # direct effect ~ 0
    assert context.direct.p_value() >= ALPHA
    assert context.coarse[0].attribute == "Distance"
