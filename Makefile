# Local entry points mirroring .github/workflows/ci.yml and nightly.yml.
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: ci test fast slow cov lint docstrings chaos bench gate regen-baseline serve serve-sharded

ci:
	bash scripts/ci.sh

test:
	python -m pytest -x -q

fast:
	python -m pytest -x -q -m "not slow"

slow:
	python -m pytest -q -m slow

# Coverage-gated fast lane (requires pytest-cov; floor mirrors CI).
cov:
	python -m pytest -x -q -m "not slow" \
		--cov=repro --cov-report=term-missing:skip-covered \
		--cov-fail-under=$(or $(REPRO_COV_FLOOR),90)

lint:
	ruff check src tests benchmarks scripts

# Public service/engine definitions must carry docstrings (stdlib gate).
docstrings:
	python scripts/check_docstrings.py

# Fault-injection lane: journal crash-resume, job failover, self-heal.
chaos:
	python -m pytest -q \
		tests/service/test_durable_jobs.py \
		tests/service/test_job_failover.py \
		tests/service/test_self_heal.py
	python examples/durable_client.py

bench:
	REPRO_BENCH_SCALE=$(or $(REPRO_BENCH_SCALE),0.25) \
		python -m pytest -q \
			benchmarks/bench_engine_scaling.py \
			benchmarks/bench_service_throughput.py \
			benchmarks/bench_dataset_plane.py \
			benchmarks/bench_shard_scaling.py \
			benchmarks/bench_replication.py \
			benchmarks/bench_durability.py

gate:
	python scripts/check_bench_regression.py

# Regenerate the regression-gate baselines on THIS machine (the gate
# records cpu_count; regenerate on the CI runner class -- or dispatch the
# nightly baseline-regen job -- to gate parallel rows in CI).
regen-baseline: bench
	cp benchmarks/results/BENCH_engine.json \
	   benchmarks/results/BENCH_service.json \
	   benchmarks/results/BENCH_kernels.json \
	   benchmarks/results/BENCH_shard.json \
	   benchmarks/results/BENCH_replication.json \
	   benchmarks/results/BENCH_durability.json \
	   benchmarks/baselines/
	@echo "baselines updated; commit benchmarks/baselines/*.json"

serve:
	python -m repro.cli serve --port 8000

# Sharded deployment: router + 4 shard worker processes on one box.
serve-sharded:
	python -m repro.cli serve --port 8000 --shards 4
