# Local entry points mirroring .github/workflows/ci.yml.
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: ci test fast slow lint bench gate

ci:
	bash scripts/ci.sh

test:
	python -m pytest -x -q

fast:
	python -m pytest -x -q -m "not slow"

slow:
	python -m pytest -q -m slow

lint:
	ruff check src tests benchmarks scripts

bench:
	REPRO_BENCH_SCALE=$(or $(REPRO_BENCH_SCALE),0.25) \
		python -m pytest benchmarks/bench_engine_scaling.py -q

gate:
	python scripts/check_bench_regression.py
